"""Quickstart: the three viewpoints of a model, and every lake task (Figure 1).

Builds a small benchmark lake, then walks one model through the paper's
three viewpoints — history (D, A), intrinsics (f*, theta), extrinsics
(p_theta) — and runs each model-lake task once.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.audit import ModelAuditor
from repro.core.citation import cite_model
from repro.core.docgen import CardGenerator
from repro.core.search import SearchEngine
from repro.core.versioning import VersionGraph, classify_transform
from repro.data.probes import make_text_probes
from repro.lake import LakeSpec, generate_lake


def main() -> None:
    print("=== Generating a benchmark lake (foundations + derived versions) ===")
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=3, max_chain_depth=1,
        docs_per_domain=18, foundation_epochs=8, specialize_epochs=6, seed=0,
    )
    bundle = generate_lake(spec)
    lake = bundle.lake
    print(f"lake holds {len(lake)} models, {len(lake.datasets)} dataset versions\n")
    for record in lake:
        print("  " + record.summary())

    # Pick a derived specialist to examine.
    child_id = next(
        c for _, c, r in bundle.truth.edges if r.kind in ("finetune", "lora")
    )
    record = lake.get_record(child_id)
    print(f"\n=== Three viewpoints of {record.name} ===")

    # Viewpoint 1: history (D, A)
    history = lake.get_history(child_id)
    print(f"[history]    {history.describe()}")
    print(f"[history]    trained on dataset {history.dataset_name!r}")

    # Viewpoint 2: intrinsics (f*, theta)
    model = lake.get_model(child_id)
    print(f"[intrinsics] architecture: {record.architecture}")
    print(f"[intrinsics] parameters:   {model.num_parameters()}")
    parent_state = lake.get_model(history.parent_ids[0]).state_dict()
    kind = classify_transform(parent_state, model.state_dict())
    print(f"[intrinsics] weight-delta signature classifies the edge as: {kind}")

    # Viewpoint 3: extrinsics (p_theta)
    probes = make_text_probes(probes_per_domain=3, seq_len=24)
    generator = CardGenerator(lake, probes)
    competence = generator.domain_competence(model)
    print("[extrinsics] competence profile over shared probes:")
    for domain, value in sorted(competence.items(), key=lambda kv: -kv[1]):
        bar = "#" * int(value * 20)
        print(f"             {domain:<10} {value:0.2f} {bar}")

    print("\n=== Model lake tasks ===")
    # Search
    engine = SearchEngine(lake, probes)
    hits = engine.search("summarize legal court documents", k=3)
    print("[search]     'summarize legal court documents' ->")
    for hit in hits:
        print(f"             {lake.get_record(hit.model_id).name:<44} {hit.score:.3f}")

    # Versioning
    graph = VersionGraph.from_lake_history(lake)
    print(f"[versioning] graph: {len(graph)} nodes, {graph.num_edges} edges, "
          f"roots = {[lake.get_record(r).name for r in graph.roots()]}")

    # Documentation generation
    card, evidence = generator.draft_card(child_id)
    print(f"[docgen]     inferred domains {evidence.inferred_domains}, "
          f"base {card.base_model!r}, transform {card.transform_summary!r}")

    # Audit
    auditor = ModelAuditor(lake, generator, graph)
    report = auditor.audit(child_id)
    print(f"[audit]      compliance {report.compliance_rate:.0%} "
          f"({sum(a.satisfied for a in report.answers)}/{len(report.answers)} checks)")

    # Citation
    citation = cite_model(lake, child_id, graph)
    print(f"[citation]   {citation.key()}")
    print("\nDone.")


if __name__ == "__main__":
    main()
