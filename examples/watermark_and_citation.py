"""Generated-content citation: watermarking + versioned model citations (§6).

Trains a small language model, registers it in a lake, generates
watermarked text, shows the detector separating watermarked from clean
text, and produces a citation whose snapshot id changes when the lake
evolves — the paper's "new citation with the updated version and
timestamp" behavior.

Run:  python examples/watermark_and_citation.py
"""

import numpy as np

from repro.core.citation import cite_dataset, cite_model, resolve_citation
from repro.data import Tokenizer, build_default_vocabulary, make_lm_sequences
from repro.interp import WatermarkConfig, detect_watermark, generate_watermarked
from repro.lake import ModelCard, ModelHistory, ModelLake
from repro.nn import TransformerLM, train_language_model


def main() -> None:
    tokenizer = Tokenizer(build_default_vocabulary())
    print("Training a small legal/news language model ...")
    corpus = make_lm_sequences(
        ["legal", "news"], 40, seq_len=20, seed=0, tokenizer=tokenizer
    )
    lm = TransformerLM(
        vocab_size=tokenizer.vocab_size, d_model=24, num_heads=2,
        num_layers=2, max_seq_len=32, seed=0,
    )
    result = train_language_model(lm, corpus.tokens, epochs=4, batch_size=16, seed=0)
    print(f"final LM loss: {result.final_loss:.3f}")

    lake = ModelLake()
    digest = lake.datasets.register(corpus)
    record = lake.add_model(
        lm, name="legal-news-lm",
        card=ModelCard(model_name="legal-news-lm",
                       description="Tiny causal LM over legal and news text",
                       training_domains=["legal", "news"], license="mit"),
        history=ModelHistory(dataset_digest=digest, dataset_name=corpus.name,
                             algorithm="train_from_scratch"),
    )

    config = WatermarkConfig(gamma=0.5, delta=5.0, key=1234)
    rng = np.random.default_rng(0)
    prompt = np.array([tokenizer.vocabulary.bos_id])

    print("\n=== Watermarked vs clean generation ===")
    watermarked = generate_watermarked(lm, prompt, 80, rng, config=config)
    clean = lm.generate(prompt, 80, np.random.default_rng(1))
    for label, tokens in (("watermarked", watermarked), ("clean", clean)):
        detection = detect_watermark(tokens, lm.vocab_size, config=config)
        text = " ".join(tokenizer.decode(tokens)[:12])
        print(f"[{label:<11}] z = {detection.z_score:+6.2f}  "
              f"(green {detection.green_fraction:.2f})  "
              f"flagged = {detection.is_watermarked()}")
        print(f"              sample: {text} ...")

    print("\n=== Citing the model and its training data ===")
    citation = cite_model(lake, record.model_id)
    print("model citation:  ", citation.key())
    print("data citation:   ", cite_dataset(lake, digest).key())
    print(citation.to_bibtex())

    print("\nresolving the citation now:       ",
          resolve_citation(lake, citation).status)
    lake.record_metric(record.model_id, "perplexity", 12.0)
    outcome = resolve_citation(lake, citation)
    print("resolving after the lake evolved: ", outcome.status)
    print("  ->", outcome.detail)
    fresh = cite_model(lake, record.model_id)
    print("fresh citation:  ", fresh.key())


if __name__ == "__main__":
    main()
