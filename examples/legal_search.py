"""Example 1.1 from the paper: find a legal summarization model.

A user wants a model for legal documents in a lake whose documentation
is incomplete (fields missing) and partly poisoned (fields lying).  The
current hub workflow — keyword search over cards — is compared against
the paper's proposal, content-based (behavioral) search, plus the
hybrid, and against declarative queries.

Run:  python examples/legal_search.py
"""

import numpy as np

from repro.core.benchmarking import precision_at_k, search_ground_truth
from repro.core.search import SearchEngine, execute_query
from repro.data.probes import make_text_probes
from repro.lake import CardCorruptor, LakeSpec, generate_lake

QUERY = "summarize legal documents court statute contract"


def show(engine, lake, truth, method: str) -> None:
    hits = engine.search(QUERY, k=5, method=method)
    relevant = truth.relevant["legal"]
    precision = precision_at_k([h.model_id for h in hits], relevant, 3)
    print(f"\n--- {method} search (P@3 = {precision:.2f}) ---")
    for hit in hits:
        record = lake.get_record(hit.model_id)
        marker = "*" if hit.model_id in relevant else " "
        print(f"  {marker} {record.name:<46} score {hit.score:.3f} "
              f"(true acc_legal {truth.gains['legal'][hit.model_id]:.2f})")


def main() -> None:
    print("Building a lake with one specialist per domain ...")
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=4, max_chain_depth=1,
        docs_per_domain=20, foundation_epochs=8, specialize_epochs=6,
        transform_mix={"finetune": 0.6, "lora": 0.4},
        num_merges=0, num_stitches=0, seed=1,
    )
    bundle = generate_lake(spec)
    lake = bundle.lake
    truth = search_ground_truth(bundle, accuracy_threshold=0.9)
    probes = make_text_probes(probes_per_domain=4, seq_len=24)

    print(f"\n=== Phase 1: pristine documentation ({len(lake)} models) ===")
    engine = SearchEngine(lake, probes)
    for method in ("keyword", "behavioral", "hybrid"):
        show(engine, lake, truth, method)

    print("\n=== Phase 2: degraded documentation "
          "(60% fields missing, 20% poisoned) ===")
    report = CardCorruptor(missing_rate=0.6, poison_rate=0.2, seed=3).apply(lake)
    print(f"corrupted {report.total} card fields")
    engine = SearchEngine(lake, probes)  # re-index over the degraded cards
    for method in ("keyword", "behavioral", "hybrid"):
        show(engine, lake, truth, method)

    print("\n=== Phase 3: declarative queries (§6 Model Search) ===")
    for query in (
        f"FIND MODELS WHERE task ~ '{QUERY}' USING BEHAVIORAL LIMIT 3",
        "FIND MODELS WHERE domain = 'legal' AND family = 'text_classifier' LIMIT 3",
        "FIND MODELS WHERE OUTPERFORMS('foundation-0', 'acc_legal') LIMIT 3",
    ):
        print(f"\n  > {query}")
        for hit in execute_query(engine, query):
            print(f"    {lake.get_record(hit.model_id).name:<46} {hit.score:.3f}")

    print("\nTakeaway: keyword search collapses with the documentation; "
          "behavioral search is immune to it (it never reads the cards).")


if __name__ == "__main__":
    main()
