"""Documentation generation (§6): repair an undocumented lake.

Generates a lake, destroys most of its documentation (the Liang et al.
situation), auto-drafts cards from lake analysis, and scores the drafts
against ground truth — then shows that keyword search works again over
the regenerated cards.

Run:  python examples/doc_generation.py
"""

import numpy as np

from repro.core.docgen import CardGenerator
from repro.core.search import SearchEngine
from repro.data.probes import make_text_probes
from repro.lake import CardCorruptor, LakeSpec, generate_lake


def main() -> None:
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=4, max_chain_depth=1,
        docs_per_domain=20, foundation_epochs=8, specialize_epochs=6, seed=6,
    )
    bundle = generate_lake(spec)
    lake = bundle.lake
    truthful = {r.model_id: r.card.copy() for r in lake}

    print(f"Lake of {len(lake)} models; destroying 90% of card fields ...")
    CardCorruptor(missing_rate=0.9, seed=0).apply(lake)
    before = float(np.mean([r.card.completeness() for r in lake]))
    print(f"mean card completeness after corruption: {before:.2f}")

    probes = make_text_probes(probes_per_domain=4, seq_len=24)
    generator = CardGenerator(lake, probes)

    print("\n=== Auto-drafting cards from lake analysis ===")
    domain_hits = base_hits = scored = 0
    for record in lake:
        repaired = generator.fill_missing_fields(record.model_id)
        lake.update_card(record.model_id, repaired)
        scored += 1
        true_card = truthful[record.model_id]
        # Domain agreement: inferred domains vs measured-competent domains.
        true_competent = {
            d for d, a in bundle.truth.domain_accuracy[record.model_id].items()
            if a >= 0.9
        }
        inferred = set(repaired.training_domains)
        if true_competent and len(inferred & true_competent) / len(true_competent) >= 0.5:
            domain_hits += 1
        if (repaired.base_model or None) == (true_card.base_model or None):
            base_hits += 1
        print(f"  {record.name:<46} completeness "
              f"{record.card.completeness():.2f} -> base={repaired.base_model}")

    after = float(np.mean([r.card.completeness() for r in lake]))
    print(f"\nmean completeness: {before:.2f} -> {after:.2f}")
    print(f"competent-domain coverage correct for {domain_hits}/{scored} models")
    print(f"base-model field matches the truthful card for {base_hits}/{scored}")

    print("\n=== Keyword search over the regenerated cards ===")
    engine = SearchEngine(lake, probes)
    for hit in engine.search("legal court documents", k=3, method="keyword"):
        print(f"  {lake.get_record(hit.model_id).name:<46} {hit.score:.3f}")


if __name__ == "__main__":
    main()
