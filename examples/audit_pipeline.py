"""Auditing and risk propagation (§6): PoisonGPT in the lake.

Scenario: a foundation model is discovered to be compromised, and one
uploader published a model with a lying card.  The lake (1) verifies
cards against measured behavior, (2) audits models with a standard
questionnaire, and (3) warns every downstream descendant of the risky
foundation — even those whose uploaders hid their history, via
weight-based version recovery.

Run:  python examples/audit_pipeline.py
"""

import numpy as np

from repro.core.audit import ModelAuditor, propagate_risk
from repro.core.docgen import CardGenerator, CardVerifier
from repro.core.versioning import VersionGraph, recover_version_graph
from repro.data.probes import make_text_probes
from repro.lake import LakeSpec, generate_lake


def main() -> None:
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=3, max_chain_depth=2,
        docs_per_domain=18, foundation_epochs=8, specialize_epochs=6, seed=4,
    )
    bundle = generate_lake(spec)
    lake = bundle.lake
    probes = make_text_probes(probes_per_domain=4, seq_len=24)
    generator = CardGenerator(lake, probes)

    # --- Step 1: a poisoned card appears -------------------------------
    victim = next(
        c for _, c, r in bundle.truth.edges if r.kind in ("finetune", "lora")
    )
    card = lake.get_record(victim).card.copy()
    card.transform_summary = "trained entirely from scratch"
    card.base_model = "foundation-999"
    card.metrics = {"acc_legal": 0.99, "acc_medical": 0.99}
    lake.update_card(victim, card)
    print(f"Uploader of {lake.get_record(victim).name!r} published a lying card.\n")

    verifier = CardVerifier(generator)
    print("=== Card verification ===")
    for issue in verifier.verify(victim):
        print("  " + issue.describe())

    # --- Step 2: standard audit questionnaire --------------------------
    print("\n=== Audit questionnaire ===")
    auditor = ModelAuditor(lake, generator)
    print(auditor.audit(victim).to_text())

    # --- Step 3: upstream risk discovered ------------------------------
    risky_root = bundle.truth.foundations[0]
    print(f"\n=== {lake.get_record(risky_root).name} found to be compromised ===")

    # 3a. With recorded history.
    history_graph = VersionGraph.from_lake_history(lake)
    assessment = propagate_risk(history_graph, {risky_root: 1.0})
    print("\nRisk propagation over the RECORDED version graph:")
    for model_id in sorted(assessment.risk, key=lambda m: -assessment.risk[m]):
        print(f"  {lake.get_record(model_id).name:<52} "
              f"risk {assessment.risk[model_id]:.2f}")

    # 3b. Histories hidden: recover the graph from weights alone.
    for record in lake:
        lake.set_history_visibility(record.model_id, False)
    recovered = recover_version_graph(lake).graph
    blind = propagate_risk(recovered, {risky_root: 1.0})
    truly_at_risk = history_graph.descendants(risky_root)
    caught = blind.flagged(0.2) & truly_at_risk
    print("\nWith ALL history hidden, weight-based recovery still warns "
          f"{len(caught)}/{len(truly_at_risk)} of the truly at-risk models:")
    for model_id in sorted(caught):
        print(f"  {lake.get_record(model_id).name:<52} "
              f"risk {blind.risk[model_id]:.2f}")


if __name__ == "__main__":
    main()
