"""Version forensics: reconstruct "who came from whom" from weights alone.

Generates a lake, hides *every* model's history (the undocumented-hub
worst case), recovers the version forest MoTHer-style, labels each
recovered edge with its inferred transformation, and scores everything
against the generator's ground truth.  Ends with a Graphviz dot dump.

Run:  python examples/version_forensics.py
"""

import numpy as np

from repro.core.benchmarking import (
    edge_precision_recall,
    transform_label_truth,
    undirected_edge_f1,
    version_edge_truth,
)
from repro.core.versioning import recover_version_graph
from repro.lake import LakeSpec, generate_lake


def main() -> None:
    spec = LakeSpec(
        num_foundations=3, chains_per_foundation=4, max_chain_depth=2,
        docs_per_domain=18, foundation_epochs=8, specialize_epochs=6,
        num_merges=1, num_stitches=1, seed=8,
    )
    bundle = generate_lake(spec)
    lake = bundle.lake
    names = {r.model_id: r.name for r in lake}
    print(f"Lake: {len(lake)} models, "
          f"{len(bundle.truth.edge_set())} true derivation edges.")

    print("\nHiding every model's history (blind forensics) ...")
    for record in lake:
        lake.set_history_visibility(record.model_id, False)

    result = recover_version_graph(lake)
    recovered = result.graph

    print(f"\nRecovered {recovered.num_edges} edges across "
          f"{len(result.clusters)} architecture clusters "
          f"({len(result.merge_edges)} merges detected):")
    labels = transform_label_truth(bundle)
    correct_labels = 0
    labelled = 0
    for parent, child, data in recovered.edges():
        inferred = data.get("kind") or "?"
        true = labels.get((parent, child))
        verdict = ""
        if true is not None:
            labelled += 1
            correct_labels += inferred == true
            verdict = f"[true: {true}]"
        print(f"  {names[parent]:<44} -> {names[child]:<44} "
              f"{inferred:<10} conf={data.get('confidence', 0):.2f} {verdict}")

    truth_all = version_edge_truth(bundle)
    truth_weight = version_edge_truth(bundle, weight_preserving_only=True)
    p_all, r_all, f_all = edge_precision_recall(recovered.edge_set(), truth_all)
    p_w, r_w, f_w = edge_precision_recall(recovered.edge_set(), truth_weight)
    undirected = undirected_edge_f1(recovered.edge_set(), truth_weight)

    print("\n=== Scoring against ground truth ===")
    print(f"all edges:               P={p_all:.2f} R={r_all:.2f} F1={f_all:.2f}")
    print(f"weight-preserving edges: P={p_w:.2f} R={r_w:.2f} F1={f_w:.2f}")
    print(f"topology (undirected):   F1={undirected:.2f}")
    if labelled:
        print(f"edge-label accuracy on true edges: "
              f"{correct_labels}/{labelled} = {correct_labels / labelled:.2f}")
    print("\n(Distillation and stitching edges share no weights with their "
          "parents — recovering those needs behavioral evidence, which is "
          "exactly the paper's argument for multi-viewpoint lakes.)")

    print("\n=== Graphviz dot of the recovered forest ===")
    print(recovered.to_dot(names))


if __name__ == "__main__":
    main()
