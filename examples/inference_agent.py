"""The model-inference agent (§5): query -> benchmark -> verified choice.

A non-expert asks for "a model for medical notes".  The agent maps the
query to domains, retrieves candidates, *generates a fresh benchmark*
for the task, actually runs every candidate on it, and recommends by
measured performance — so lying cards cannot win.  The lake here is
mixed-modality (classifiers + language models) with partially poisoned
documentation.

Run:  python examples/inference_agent.py
"""

import numpy as np

from repro.core.inference import ModelInferenceAgent
from repro.data.probes import make_text_probes
from repro.lake import CardCorruptor, LakeSpec, generate_lake


def main() -> None:
    print("Building a mixed-modality lake (classifiers + language models) ...")
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=4, max_chain_depth=1,
        docs_per_domain=18, foundation_epochs=8, specialize_epochs=6,
        transform_mix={"finetune": 0.6, "lora": 0.4},
        num_merges=0, num_stitches=0, seed=12,
        num_lm_foundations=1, lm_chains=2, lm_epochs=3,
    )
    bundle = generate_lake(spec)
    lake = bundle.lake
    print(f"{len(lake)} models; poisoning 40% of card fields ...")
    CardCorruptor(missing_rate=0.2, poison_rate=0.4, seed=7).apply(lake)

    probes = make_text_probes(probes_per_domain=4, seq_len=24)
    agent = ModelInferenceAgent(lake, probes, seed=0)

    for query in (
        "analyze medical patient diagnosis notes",
        "summarize legal court rulings and statutes",
        "track sports season tournament results",
    ):
        print(f"\n=== query: {query!r} ===")
        result = agent.recommend(query, k=3)
        print(f"plan: {result.plan.describe()}")
        for rank, rec in enumerate(result.recommendations, start=1):
            truth_score = bundle.truth.domain_accuracy[rec.model_id][
                result.plan.target_domains[0]
            ]
            print(f"  {rank}. {rec.model_name:<44} "
                  f"measured {rec.measured_score:.2f} "
                  f"(ground truth {truth_score:.2f})")
            print(f"     {rec.rationale}")

    print("\nThe agent's recommendations rest on fresh measurements, so "
          "poisoned cards influence at most the candidate shortlist, "
          "never the final ranking.")


if __name__ == "__main__":
    main()
