#!/usr/bin/env python
"""Chaos drill: generate a lake, break it on purpose, prove fsck sees it.

CI runs this after the fault-injection test suite.  The drill is
end-to-end over the real CLI surface:

1. generate a small lake and require ``repro fsck`` to report it clean;
2. kill a re-save mid-write with the fault-injection harness and require
   the committed lake to still verify;
3. corrupt the lake four ways (truncate a blob, flip bytes in another,
   delete the lineage file, plant tmp litter) and require fsck to flag
   every one with the expected finding kind;
4. run ``fsck --repair`` and require the bad blobs to be quarantined —
   never deleted — and a final fsck to come back with no errors.

Exits non-zero on the first unmet expectation.
"""

import json
import os
import shutil
import sys
import tempfile

from repro.cli import main as repro_main
from repro.lake import load_lake, save_lake
from repro.reliability import FaultPlan, InjectedFault, inject_faults


def check(condition, message):
    if not condition:
        print(f"chaos: FAIL {message}", file=sys.stderr)
        sys.exit(1)
    print(f"chaos: ok   {message}")


def fsck_payload(directory, *extra):
    import contextlib
    import io

    stream = io.StringIO()
    with contextlib.redirect_stdout(stream):
        code = repro_main(["fsck", directory, "--json", *extra])
    return code, json.loads(stream.getvalue())


def kinds(payload):
    return sorted({finding["kind"] for finding in payload["findings"]})


def main():
    root = tempfile.mkdtemp(prefix="chaos-")
    lake_dir = os.path.join(root, "lake")
    try:
        # 1. A fresh lake must verify end to end.
        code = repro_main([
            "generate", "--dir", lake_dir, "--seed", "7",
            "--foundations", "1", "--chains", "2", "--depth", "1",
            "--docs", "10", "--workers", "2",
        ])
        check(code == 0, "generated a fresh lake")
        code, payload = fsck_payload(lake_dir)
        check(code == 0 and payload["clean"], "fresh lake fsck is clean")

        # 2. A save killed mid-write must not damage the committed lake.
        lake = load_lake(lake_dir)
        lake.record_metric(lake.model_ids()[0], "chaos_drill", 1.0)
        plan = FaultPlan().fail_write("manifest.json", stage="write.rename")
        try:
            with inject_faults(plan):
                save_lake(lake, lake_dir)
        except InjectedFault:
            pass
        check(plan.fired, "injected a crash into the manifest rename")
        code, payload = fsck_payload(lake_dir)
        check(code == 0, "committed lake survives a killed re-save")

        # 3. Deliberate corruption: every wound gets the right label.
        broken = os.path.join(root, "broken")
        shutil.copytree(lake_dir, broken)
        weights = os.path.join(broken, "weights")
        blobs = sorted(os.listdir(weights))
        check(len(blobs) >= 2, "lake has at least two weight blobs")
        victim = os.path.join(weights, blobs[0])
        with open(victim, "rb") as handle:
            data = handle.read()
        with open(victim, "wb") as handle:
            handle.write(data[: len(data) // 2])  # truncate
        flipped = os.path.join(weights, blobs[1])
        with open(flipped, "rb") as handle:
            data = bytearray(handle.read())
        data[len(data) // 2] ^= 0xFF
        with open(flipped, "wb") as handle:
            handle.write(bytes(data))  # bit rot
        os.unlink(os.path.join(broken, "lineage.json"))  # lost file
        with open(os.path.join(broken, ".litter.tmp"), "wb") as handle:
            handle.write(b"torn")  # interrupted-write debris

        code, payload = fsck_payload(broken)
        check(code == 1, "corrupted lake fails fsck")
        found = kinds(payload)
        for expected in ("truncated", "digest-mismatch", "missing", "stale-temp"):
            check(expected in found, f"fsck flags {expected}")

        # 4. Repair quarantines, never deletes, and clears the errors
        #    fsck can clear (a missing file is gone for good).
        code, payload = fsck_payload(broken, "--repair")
        repaired = [f for f in payload["findings"] if f["repaired"]]
        check(len(repaired) >= 3, "repair handled the repairable findings")
        quarantine = os.path.join(broken, "quarantine")
        check(
            os.path.isdir(quarantine) and len(os.listdir(quarantine)) >= 2,
            "bad blobs were quarantined, not deleted",
        )
        code, payload = fsck_payload(broken)
        check(
            kinds(payload) == ["missing"],
            "post-repair fsck reports only the unrecoverable loss",
        )
        print("chaos: drill complete")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
