#!/usr/bin/env python
"""Forbid bare ``print()`` calls in library code.

Library modules must use ``repro.obs.logging`` so output is structured,
level-filtered, and capturable.  The CLI is the user-facing surface and
is exempt, as is anything outside ``src/repro``.

Exit status: 0 when clean, 1 with one ``path:line`` diagnostic per
violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

LIBRARY_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"
EXEMPT = {LIBRARY_ROOT / "cli.py"}


def find_print_calls(path: Path) -> list[int]:
    tree = ast.parse(path.read_text(), filename=str(path))
    lines = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            lines.append(node.lineno)
    return lines


def main() -> int:
    violations = []
    for path in sorted(LIBRARY_ROOT.rglob("*.py")):
        if path in EXEMPT:
            continue
        for lineno in find_print_calls(path):
            violations.append(f"{path.relative_to(LIBRARY_ROOT.parent.parent)}:{lineno}")
    if violations:
        print("bare print() calls found (use repro.obs.logging instead):")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"OK: no bare print() calls in {LIBRARY_ROOT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
