"""Tests for knowledge distillation."""

import numpy as np
import pytest

from repro.transforms import distill_classifier


class TestDistill:
    def test_student_mimics_teacher(self, foundation_model, broad_dataset):
        student, record = distill_classifier(
            foundation_model, broad_dataset, epochs=10, seed=0
        )
        agreement = (
            student.predict(broad_dataset.tokens)
            == foundation_model.predict(broad_dataset.tokens)
        ).mean()
        assert agreement > 0.85
        assert record.kind == "distill"

    def test_student_weights_unrelated(self, foundation_model, broad_dataset):
        """Distillation shares behavior, not weights — the hard case
        for weight-based version recovery."""
        student, _ = distill_classifier(
            foundation_model, broad_dataset, epochs=2, seed=0
        )
        teacher_state = foundation_model.state_dict()
        student_state = student.state_dict()
        correlations = []
        for name in teacher_state:
            a, b = teacher_state[name].ravel(), student_state[name].ravel()
            if a.std() > 0 and b.std() > 0 and a.size > 10:
                correlations.append(abs(np.corrcoef(a, b)[0, 1]))
        assert max(correlations) < 0.5

    def test_smaller_student_spec(self, foundation_model, broad_dataset):
        spec = dict(foundation_model.architecture_spec())
        spec["dim"] = 8
        spec["hidden"] = (12,)
        student, record = distill_classifier(
            foundation_model, broad_dataset, student_spec=spec, epochs=4, seed=0
        )
        assert student.architecture_spec()["dim"] == 8
        assert record.params["student_family"] == "text_classifier"
