"""Tests for pruning and quantization."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.transforms import prune_model, quantize_model


class TestPrune:
    def test_sparsity_achieved(self, foundation_model):
        pruned, record = prune_model(foundation_model, sparsity=0.5)
        matrices = [
            arr for arr in pruned.state_dict().values() if arr.ndim >= 2
        ]
        zeros = sum(int((m == 0).sum()) for m in matrices)
        total = sum(m.size for m in matrices)
        assert 0.45 < zeros / total < 0.56
        assert record.kind == "prune"

    def test_survivors_unchanged(self, foundation_model):
        pruned, _ = prune_model(foundation_model, sparsity=0.4)
        base = foundation_model.state_dict()
        child = pruned.state_dict()
        for name in base:
            if base[name].ndim < 2:
                continue
            survivors = child[name] != 0
            assert np.allclose(base[name][survivors], child[name][survivors])

    def test_small_magnitudes_removed_first(self, foundation_model):
        pruned, _ = prune_model(foundation_model, sparsity=0.3)
        base = foundation_model.state_dict()
        child = pruned.state_dict()
        for name in base:
            if base[name].ndim < 2:
                continue
            removed = (child[name] == 0) & (base[name] != 0)
            kept = child[name] != 0
            if removed.any() and kept.any():
                assert np.abs(base[name][removed]).max() <= (
                    np.abs(base[name][kept]).min() + 1e-12
                )

    def test_biases_untouched(self, foundation_model):
        pruned, _ = prune_model(foundation_model, sparsity=0.9)
        base = foundation_model.state_dict()
        child = pruned.state_dict()
        for name in base:
            if base[name].ndim == 1:
                assert np.array_equal(base[name], child[name])

    def test_invalid_sparsity(self, foundation_model):
        with pytest.raises(ConfigError):
            prune_model(foundation_model, sparsity=1.0)


class TestQuantize:
    def test_few_unique_values(self, foundation_model):
        quantized, record = quantize_model(foundation_model, bits=4)
        for name, arr in quantized.state_dict().items():
            if arr.size > 64:
                assert len(np.unique(arr)) <= 2**4 + 1, name
        assert record.kind == "quantize"
        assert record.params["bits"] == 4

    def test_error_bounded_by_scale(self, foundation_model):
        quantized, _ = quantize_model(foundation_model, bits=8)
        base = foundation_model.state_dict()
        child = quantized.state_dict()
        for name in base:
            max_abs = np.abs(base[name]).max()
            if max_abs == 0:
                continue
            scale = max_abs / (2**7 - 1)
            assert np.abs(base[name] - child[name]).max() <= scale / 2 + 1e-12

    def test_more_bits_less_error(self, foundation_model):
        def total_error(bits):
            quantized, _ = quantize_model(foundation_model, bits=bits)
            base = foundation_model.state_dict()
            child = quantized.state_dict()
            return sum(
                float(np.abs(base[n] - child[n]).sum()) for n in base
            )

        assert total_error(8) < total_error(4)

    def test_invalid_bits(self, foundation_model):
        with pytest.raises(ConfigError):
            quantize_model(foundation_model, bits=1)

    def test_behavior_roughly_preserved_at_8_bits(self, foundation_model, broad_dataset):
        quantized, _ = quantize_model(foundation_model, bits=8)
        agreement = (
            quantized.predict(broad_dataset.tokens)
            == foundation_model.predict(broad_dataset.tokens)
        ).mean()
        assert agreement > 0.95
