"""Tests for transform base helpers."""

import numpy as np

from repro.transforms import clone_model, flatten_state, weight_delta


class TestCloneModel:
    def test_independent_weights(self, foundation_model):
        clone = clone_model(foundation_model)
        clone.state_dict()  # sanity
        first_param = next(iter(clone.parameters()))
        first_param.data[:] = 0.0
        original_first = next(iter(foundation_model.parameters()))
        assert not np.allclose(original_first.data, 0.0)

    def test_same_behavior(self, foundation_model, broad_dataset):
        clone = clone_model(foundation_model)
        x = broad_dataset.tokens[:4]
        assert np.allclose(
            clone.predict_proba(x), foundation_model.predict_proba(x)
        )

    def test_eval_mode(self, foundation_model):
        assert not clone_model(foundation_model).training


class TestWeightDelta:
    def test_zero_for_identical(self, foundation_model):
        state = foundation_model.state_dict()
        deltas = weight_delta(state, state)
        assert all(np.allclose(d, 0.0) for d in deltas.values())

    def test_skips_mismatched_shapes(self):
        a = {"w": np.zeros((2, 2)), "v": np.zeros(3)}
        b = {"w": np.ones((2, 2)), "v": np.zeros(4)}
        deltas = weight_delta(a, b)
        assert set(deltas) == {"w"}


class TestFlattenState:
    def test_sorted_order(self):
        state = {"b": np.array([2.0]), "a": np.array([1.0])}
        assert flatten_state(state).tolist() == [1.0, 2.0]

    def test_total_length(self, foundation_model):
        state = foundation_model.state_dict()
        assert len(flatten_state(state)) == foundation_model.num_parameters()
