"""Tests for model merging and stitching."""

import numpy as np
import pytest

from repro.data import DOMAIN_NAMES, make_domain_dataset
from repro.errors import IncompatibleModelsError
from repro.nn import TextClassifier, build_model, evaluate_accuracy, train_classifier
from repro.transforms import finetune_classifier, merge_models, stitch_classifiers


@pytest.fixture(scope="module")
def sibling(foundation_model, tokenizer):
    dataset = make_domain_dataset(
        ["finance", "sports"], 25, seq_len=24, seed=41, tokenizer=tokenizer
    )
    child, _ = finetune_classifier(foundation_model, dataset, epochs=3, seed=1)
    return child


class TestMerge:
    def test_midpoint_weights(self, foundation_model, sibling):
        merged, record = merge_models(foundation_model, sibling, alpha=0.5)
        base = foundation_model.state_dict()
        other = sibling.state_dict()
        child = merged.state_dict()
        for name in base:
            assert np.allclose(child[name], 0.5 * base[name] + 0.5 * other[name])
        assert record.kind == "merge"

    def test_alpha_extremes_recover_parents(self, foundation_model, sibling):
        near_a, _ = merge_models(foundation_model, sibling, alpha=0.99)
        base = foundation_model.state_dict()
        child = near_a.state_dict()
        diff = max(np.abs(base[n] - child[n]).max() for n in base)
        other_diff = max(
            np.abs(sibling.state_dict()[n] - child[n]).max() for n in base
        )
        assert diff < other_diff

    def test_incompatible_architectures(self, foundation_model, vocabulary):
        other = TextClassifier(len(vocabulary), 8, dim=20, hidden=(16,), seed=9)
        with pytest.raises(IncompatibleModelsError):
            merge_models(foundation_model, other)

    def test_invalid_alpha(self, foundation_model, sibling):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            merge_models(foundation_model, sibling, alpha=0.0)


class TestStitch:
    @pytest.fixture(scope="class")
    def second_foundation(self, vocabulary, broad_dataset):
        model = TextClassifier(
            len(vocabulary), len(DOMAIN_NAMES), dim=20, hidden=(16,), seed=77
        )
        train_classifier(
            model, broad_dataset.tokens, broad_dataset.labels,
            epochs=8, lr=5e-3, seed=77,
        )
        return model

    def test_parents_transplanted_verbatim(
        self, foundation_model, second_foundation, broad_dataset
    ):
        stitched, record = stitch_classifiers(
            foundation_model, second_foundation, broad_dataset,
            adapter_epochs=2, seed=0,
        )
        state = stitched.state_dict()
        front = foundation_model.state_dict()
        back = second_foundation.state_dict()
        assert np.array_equal(
            state["front_embedding.weight"], front["embedding.weight"]
        )
        for name in back:
            if name.startswith("head."):
                assert np.array_equal(state["back_" + name], back[name])
        assert record.kind == "stitch"

    def test_stitched_model_works(
        self, foundation_model, second_foundation, broad_dataset
    ):
        stitched, _ = stitch_classifiers(
            foundation_model, second_foundation, broad_dataset,
            adapter_epochs=6, seed=0,
        )
        accuracy = evaluate_accuracy(
            stitched, broad_dataset.tokens, broad_dataset.labels
        )
        assert accuracy > 0.6  # hybrids are usable, not great

    def test_spec_round_trip(
        self, foundation_model, second_foundation, broad_dataset
    ):
        stitched, _ = stitch_classifiers(
            foundation_model, second_foundation, broad_dataset,
            adapter_epochs=1, seed=0,
        )
        rebuilt = build_model(stitched.architecture_spec())
        rebuilt.load_state_dict(stitched.state_dict())
        x = broad_dataset.tokens[:3]
        assert np.allclose(rebuilt.predict_proba(x), stitched.predict_proba(x))
