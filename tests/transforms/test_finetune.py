"""Tests for fine-tuning and preference tuning."""

import numpy as np
import pytest

from repro.data import make_domain_dataset
from repro.nn import evaluate_accuracy
from repro.transforms import finetune_classifier, preference_tune


@pytest.fixture(scope="module")
def ft_dataset(tokenizer):
    return make_domain_dataset(
        ["finance", "sports"], 30, seq_len=24, seed=21, tokenizer=tokenizer,
        mixture_noise=0.15,
    )


class TestFinetune:
    def test_parent_unchanged(self, foundation_model, ft_dataset):
        before = foundation_model.state_dict()
        finetune_classifier(foundation_model, ft_dataset, epochs=2, seed=0)
        after = foundation_model.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_child_improves_on_target(self, foundation_model, ft_dataset):
        child, record = finetune_classifier(
            foundation_model, ft_dataset, epochs=6, seed=0
        )
        assert evaluate_accuracy(child, ft_dataset.tokens, ft_dataset.labels) > 0.9
        assert record.kind == "finetune"

    def test_record_carries_dataset(self, foundation_model, ft_dataset):
        _, record = finetune_classifier(foundation_model, ft_dataset, epochs=1, seed=0)
        assert record.dataset_digest == ft_dataset.content_digest()
        assert record.dataset_name == ft_dataset.name

    def test_deterministic(self, foundation_model, ft_dataset):
        a, _ = finetune_classifier(foundation_model, ft_dataset, epochs=2, seed=5)
        b, _ = finetune_classifier(foundation_model, ft_dataset, epochs=2, seed=5)
        sa, sb = a.state_dict(), b.state_dict()
        assert all(np.array_equal(sa[k], sb[k]) for k in sa)

    def test_same_architecture(self, foundation_model, ft_dataset):
        child, _ = finetune_classifier(foundation_model, ft_dataset, epochs=1, seed=0)
        assert child.architecture_spec() == foundation_model.architecture_spec()


class TestPreferenceTune:
    def test_record_kind_and_params(self, foundation_model, ft_dataset):
        _, record = preference_tune(
            foundation_model, ft_dataset, ("finance",), epochs=1, seed=0
        )
        assert record.kind == "preference"
        assert record.params["preferred_domains"] == ["finance"]

    def test_changes_weights(self, foundation_model, ft_dataset):
        child, _ = preference_tune(
            foundation_model, ft_dataset, ("finance",), epochs=2, seed=0
        )
        base = foundation_model.state_dict()
        tuned = child.state_dict()
        assert any(not np.array_equal(base[k], tuned[k]) for k in base)

    def test_invalid_weight(self, foundation_model, ft_dataset):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            preference_tune(
                foundation_model, ft_dataset, ("finance",), preference_weight=0.0
            )
