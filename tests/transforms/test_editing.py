"""Tests for rank-one model editing."""

import numpy as np
import pytest

from repro.errors import TransformError
from repro.transforms import edit_classifier, weight_delta


class TestEditClassifier:
    def test_edit_takes_effect(self, foundation_model, broad_dataset):
        probe = broad_dataset.tokens[0]
        current = int(foundation_model.predict(probe[None, :])[0])
        target = (current + 3) % 8
        edited, record = edit_classifier(foundation_model, probe, target_class=target)
        assert int(edited.predict(probe[None, :])[0]) == target
        assert record.kind == "edit"

    def test_delta_is_rank_one_single_layer(self, foundation_model, broad_dataset):
        probe = broad_dataset.tokens[0]
        edited, _ = edit_classifier(foundation_model, probe, target_class=5)
        deltas = weight_delta(foundation_model.state_dict(), edited.state_dict())
        changed = [
            (name, d) for name, d in deltas.items()
            if np.abs(d).max() > 1e-12
        ]
        assert len(changed) == 1
        name, delta = changed[0]
        assert delta.ndim == 2
        assert np.linalg.matrix_rank(delta, tol=1e-10) == 1

    def test_locality_with_preservation_set(self, foundation_model, broad_dataset):
        """With a preservation set, most other predictions are unchanged."""
        probe = broad_dataset.tokens[0]
        others = broad_dataset.tokens[10:60]
        edited, _ = edit_classifier(
            foundation_model, probe, target_class=5, preserve_tokens=others
        )
        agreement = (
            edited.predict(others) == foundation_model.predict(others)
        ).mean()
        assert agreement >= 0.6

    def test_preservation_improves_locality(self, foundation_model, broad_dataset):
        probe = broad_dataset.tokens[0]
        others = broad_dataset.tokens[10:60]
        plain, _ = edit_classifier(foundation_model, probe, target_class=5)
        corrected, _ = edit_classifier(
            foundation_model, probe, target_class=5, preserve_tokens=others
        )
        base_preds = foundation_model.predict(others)
        plain_agree = (plain.predict(others) == base_preds).mean()
        corrected_agree = (corrected.predict(others) == base_preds).mean()
        assert corrected_agree >= plain_agree

    def test_invalid_target(self, foundation_model, broad_dataset):
        with pytest.raises(TransformError):
            edit_classifier(foundation_model, broad_dataset.tokens[0], target_class=99)

    def test_parent_unchanged(self, foundation_model, broad_dataset):
        before = {k: v.copy() for k, v in foundation_model.state_dict().items()}
        edit_classifier(foundation_model, broad_dataset.tokens[0], target_class=2)
        after = foundation_model.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)
