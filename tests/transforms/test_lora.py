"""Tests for LoRA adaptation."""

import numpy as np
import pytest

from repro.data import make_domain_dataset
from repro.errors import ConfigError
from repro.nn import Linear, Tensor, evaluate_accuracy
from repro.transforms import lora_adapt_classifier, weight_delta
from repro.transforms.lora import LoRALinear


@pytest.fixture(scope="module")
def lora_dataset(tokenizer):
    return make_domain_dataset(
        ["cooking", "travel"], 30, seq_len=24, seed=31, tokenizer=tokenizer,
        mixture_noise=0.15,
    )


class TestLoRALinear:
    def test_starts_as_identity_delta(self):
        base = Linear(6, 4, seed=0)
        wrapper = LoRALinear(base, rank=2, seed=1)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 6)))
        assert np.allclose(wrapper(x).data, base(x).data)

    def test_merged_weight_rank_bound(self):
        base = Linear(6, 4, seed=0)
        wrapper = LoRALinear(base, rank=2, seed=1)
        wrapper.lora_b.data = np.random.default_rng(2).normal(size=(2, 4))
        delta = wrapper.merged_weight() - base.weight.data
        assert np.linalg.matrix_rank(delta) <= 2

    def test_invalid_rank(self):
        with pytest.raises(ConfigError):
            LoRALinear(Linear(4, 4, seed=0), rank=0)
        with pytest.raises(ConfigError):
            LoRALinear(Linear(4, 4, seed=0), rank=5)


class TestLoRAAdapt:
    def test_delta_is_low_rank(self, foundation_model, lora_dataset):
        child, record = lora_adapt_classifier(
            foundation_model, lora_dataset, rank=2, epochs=4, lr=1e-2, seed=0
        )
        deltas = weight_delta(foundation_model.state_dict(), child.state_dict())
        for name, delta in deltas.items():
            if delta.ndim == 2 and np.abs(delta).max() > 1e-12:
                assert np.linalg.matrix_rank(delta, tol=1e-8) <= 2, name
        assert record.kind == "lora"
        assert record.params["rank"] == 2

    def test_embedding_untouched(self, foundation_model, lora_dataset):
        child, _ = lora_adapt_classifier(
            foundation_model, lora_dataset, rank=2, epochs=2, lr=1e-2, seed=0
        )
        assert np.array_equal(
            child.embedding.weight.data, foundation_model.embedding.weight.data
        )

    def test_adapts_behavior(self, foundation_model, lora_dataset):
        child, _ = lora_adapt_classifier(
            foundation_model, lora_dataset, rank=2, epochs=6, lr=1e-2, seed=0
        )
        accuracy = evaluate_accuracy(child, lora_dataset.tokens, lora_dataset.labels)
        assert accuracy > 0.85

    def test_child_is_plain_model(self, foundation_model, lora_dataset):
        """Merged child must rebuild from its spec like any lake model."""
        from repro.nn import build_model

        child, _ = lora_adapt_classifier(
            foundation_model, lora_dataset, rank=2, epochs=1, lr=1e-2, seed=0
        )
        rebuilt = build_model(child.architecture_spec())
        rebuilt.load_state_dict(child.state_dict())
        x = lora_dataset.tokens[:3]
        assert np.allclose(rebuilt.predict_proba(x), child.predict_proba(x))
