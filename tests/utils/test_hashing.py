"""Tests for stable content hashing."""

import numpy as np
import pytest

from repro.utils.hashing import (
    array_digest,
    combine_digests,
    stable_hash,
    text_digest,
)


class TestTextDigest:
    def test_deterministic(self):
        assert text_digest("hello") == text_digest("hello")

    def test_length(self):
        assert len(text_digest("hello", length=8)) == 8
        assert len(text_digest("hello", length=32)) == 32

    def test_distinct(self):
        assert text_digest("a") != text_digest("b")


class TestArrayDigest:
    def test_deterministic(self):
        arr = np.arange(12).reshape(3, 4)
        assert array_digest(arr) == array_digest(arr.copy())

    def test_shape_sensitive(self):
        arr = np.arange(12)
        assert array_digest(arr.reshape(3, 4)) != array_digest(arr.reshape(4, 3))

    def test_dtype_sensitive(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = a.astype(np.float64)
        assert array_digest(a) != array_digest(b)

    def test_value_sensitive(self):
        a = np.zeros(5)
        b = np.zeros(5)
        b[2] = 1e-12
        assert array_digest(a) != array_digest(b)

    def test_non_contiguous(self):
        arr = np.arange(20).reshape(4, 5)
        assert array_digest(arr[:, ::2]) == array_digest(arr[:, ::2].copy())


class TestStableHash:
    def test_dict_key_order_invariant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_nested_structures(self):
        obj = {"x": [1, 2, {"y": (3, 4)}], "z": {5, 6}}
        assert stable_hash(obj) == stable_hash(obj)

    def test_numpy_values(self):
        assert stable_hash({"a": np.int64(3)}) == stable_hash({"a": 3})

    def test_array_embedded(self):
        a = {"w": np.ones((2, 2))}
        b = {"w": np.ones((2, 2))}
        assert stable_hash(a) == stable_hash(b)
        b["w"][0, 0] = 2.0
        assert stable_hash(a) != stable_hash(b)


class TestCombineDigests:
    def test_order_sensitive(self):
        assert combine_digests(["aa", "bb"]) != combine_digests(["bb", "aa"])

    def test_deterministic(self):
        assert combine_digests(["aa", "bb"]) == combine_digests(["aa", "bb"])
