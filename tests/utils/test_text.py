"""Tests for text utilities."""

import pytest

from repro.utils.text import ngrams, simple_tokenize, term_frequencies, truncate_words


class TestSimpleTokenize:
    def test_lowercases(self):
        assert simple_tokenize("Hello WORLD") == ["hello", "world"]

    def test_strips_punctuation(self):
        assert simple_tokenize("a, b. c!") == ["a", "b", "c"]

    def test_keeps_underscores_digits(self):
        assert simple_tokenize("acc_legal v2") == ["acc_legal", "v2"]

    def test_empty(self):
        assert simple_tokenize("") == []


class TestTermFrequencies:
    def test_counts(self):
        assert term_frequencies(["a", "b", "a"]) == {"a": 2, "b": 1}


class TestNgrams:
    def test_bigrams(self):
        assert ngrams(["a", "b", "c"], 2) == [("a", "b"), ("b", "c")]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)

    def test_n_longer_than_input(self):
        assert ngrams(["a"], 3) == []


class TestTruncateWords:
    def test_no_truncation_needed(self):
        assert truncate_words("one two", 5) == "one two"

    def test_truncates(self):
        assert truncate_words("one two three", 2) == "one two ..."
