"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.utils.rng import derive_rng, spawn_seed


class TestSpawnSeed:
    def test_deterministic(self):
        assert spawn_seed(42, "alpha") == spawn_seed(42, "alpha")

    def test_label_changes_seed(self):
        assert spawn_seed(42, "alpha") != spawn_seed(42, "beta")

    def test_parent_changes_seed(self):
        assert spawn_seed(1, "alpha") != spawn_seed(2, "alpha")

    def test_range(self):
        for label in ("a", "b", "c"):
            assert 0 <= spawn_seed(7, label) < 2**63


class TestDeriveRng:
    def test_same_seed_same_stream(self):
        a = derive_rng(5, "x").random(8)
        b = derive_rng(5, "x").random(8)
        assert np.allclose(a, b)

    def test_different_labels_independent(self):
        a = derive_rng(5, "x").random(8)
        b = derive_rng(5, "y").random(8)
        assert not np.allclose(a, b)

    def test_generator_input_spawns_child(self):
        parent = np.random.default_rng(0)
        child = derive_rng(parent)
        assert isinstance(child, np.random.Generator)

    def test_adding_consumer_does_not_perturb_existing(self):
        first = derive_rng(9, "consumer_one").random(4)
        # A new consumer with a different label must not change the first.
        derive_rng(9, "consumer_two").random(4)
        again = derive_rng(9, "consumer_one").random(4)
        assert np.allclose(first, again)
