"""Tests for weight serialization round trips."""

import numpy as np
import pytest

from repro.errors import LakeError
from repro.utils.serialization import (
    RWB_ALIGN,
    RWB_MAGIC,
    arrays_to_bytes,
    bytes_to_arrays,
    dumps_json,
    open_arrays_memmap,
    pack_arrays,
    to_jsonable,
    unpack_arrays,
)


class TestArrayRoundTrip:
    def test_round_trip(self):
        arrays = {
            "layer.weight": np.random.default_rng(0).normal(size=(4, 5)),
            "layer.bias": np.zeros(5),
        }
        restored = bytes_to_arrays(arrays_to_bytes(arrays))
        assert set(restored) == set(arrays)
        for name in arrays:
            assert np.array_equal(restored[name], arrays[name])

    def test_slash_names_survive(self):
        arrays = {"block/0/weight": np.ones(3)}
        restored = bytes_to_arrays(arrays_to_bytes(arrays))
        assert "block/0/weight" in restored

    def test_deterministic_bytes(self):
        arrays = {"w": np.arange(6.0)}
        assert arrays_to_bytes(arrays) == arrays_to_bytes(arrays)

    def test_dtypes_preserved(self):
        arrays = {"ints": np.arange(4, dtype=np.int64), "floats": np.ones(4)}
        restored = bytes_to_arrays(arrays_to_bytes(arrays))
        assert restored["ints"].dtype == np.int64
        assert restored["floats"].dtype == np.float64


class TestRawWeightBundle:
    def _arrays(self):
        rng = np.random.default_rng(4)
        return {
            "layer.weight": rng.normal(size=(7, 5)),
            "layer.bias": rng.normal(size=(5,)),
            "steps": np.arange(3, dtype=np.int64),
            "scalar": np.float64(2.5).reshape(()),
        }

    def test_round_trip(self):
        arrays = self._arrays()
        restored = unpack_arrays(pack_arrays(arrays))
        assert set(restored) == set(arrays)
        for name in arrays:
            assert np.array_equal(restored[name], np.asarray(arrays[name]))
            assert restored[name].dtype == np.asarray(arrays[name]).dtype

    def test_deterministic_and_order_independent(self):
        arrays = self._arrays()
        reordered = dict(reversed(list(arrays.items())))
        assert pack_arrays(arrays) == pack_arrays(reordered)

    def test_payloads_are_aligned(self):
        from repro.utils.serialization import _parse_rwb_header

        blob = pack_arrays(self._arrays())
        header, data_start = _parse_rwb_header(blob, "<test>")
        assert data_start % RWB_ALIGN == 0
        assert all(meta["offset"] % RWB_ALIGN == 0 for meta in header["arrays"])

    def test_memmap_matches_unpack(self, tmp_path):
        arrays = self._arrays()
        path = tmp_path / "bundle.rwb"
        path.write_bytes(pack_arrays(arrays))
        mapped = open_arrays_memmap(str(path))
        assert set(mapped) == set(arrays)
        for name in arrays:
            assert np.array_equal(mapped[name], np.asarray(arrays[name]))

    def test_memmap_views_are_read_only(self, tmp_path):
        path = tmp_path / "bundle.rwb"
        path.write_bytes(pack_arrays({"w": np.ones(4)}))
        mapped = open_arrays_memmap(str(path))
        with pytest.raises((ValueError, TypeError)):
            mapped["w"][0] = 5.0

    def test_bad_magic_raises(self, tmp_path):
        path = tmp_path / "bundle.rwb"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(LakeError):
            open_arrays_memmap(str(path))
        with pytest.raises(LakeError):
            unpack_arrays(b"NOPE" + b"\x00" * 32)

    def test_truncated_header_raises(self, tmp_path):
        blob = pack_arrays({"w": np.ones(4)})
        assert blob.startswith(RWB_MAGIC)
        path = tmp_path / "bundle.rwb"
        path.write_bytes(blob[:10])
        with pytest.raises(LakeError):
            open_arrays_memmap(str(path))


class TestJsonable:
    def test_numpy_scalars(self):
        out = to_jsonable({"a": np.float64(1.5), "b": np.int32(2), "c": np.bool_(True)})
        assert out == {"a": 1.5, "b": 2, "c": True}

    def test_arrays_become_lists(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_dumps_sorted(self):
        assert dumps_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'
