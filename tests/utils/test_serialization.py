"""Tests for weight serialization round trips."""

import numpy as np

from repro.utils.serialization import (
    arrays_to_bytes,
    bytes_to_arrays,
    dumps_json,
    to_jsonable,
)


class TestArrayRoundTrip:
    def test_round_trip(self):
        arrays = {
            "layer.weight": np.random.default_rng(0).normal(size=(4, 5)),
            "layer.bias": np.zeros(5),
        }
        restored = bytes_to_arrays(arrays_to_bytes(arrays))
        assert set(restored) == set(arrays)
        for name in arrays:
            assert np.array_equal(restored[name], arrays[name])

    def test_slash_names_survive(self):
        arrays = {"block/0/weight": np.ones(3)}
        restored = bytes_to_arrays(arrays_to_bytes(arrays))
        assert "block/0/weight" in restored

    def test_deterministic_bytes(self):
        arrays = {"w": np.arange(6.0)}
        assert arrays_to_bytes(arrays) == arrays_to_bytes(arrays)

    def test_dtypes_preserved(self):
        arrays = {"ints": np.arange(4, dtype=np.int64), "floats": np.ones(4)}
        restored = bytes_to_arrays(arrays_to_bytes(arrays))
        assert restored["ints"].dtype == np.int64
        assert restored["floats"].dtype == np.float64


class TestJsonable:
    def test_numpy_scalars(self):
        out = to_jsonable({"a": np.float64(1.5), "b": np.int32(2), "c": np.bool_(True)})
        assert out == {"a": 1.5, "b": 2, "c": True}

    def test_arrays_become_lists(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_dumps_sorted(self):
        assert dumps_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'
