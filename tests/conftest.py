"""Shared fixtures: expensive artifacts (trained models, generated lakes)
are session-scoped so the whole suite pays for them once."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DOMAIN_NAMES,
    Tokenizer,
    build_default_vocabulary,
    make_domain_dataset,
)
from repro.data.probes import make_text_probes
from repro.lake import LakeSpec, generate_lake
from repro.nn import TextClassifier, train_classifier


@pytest.fixture(scope="session")
def vocabulary():
    return build_default_vocabulary()


@pytest.fixture(scope="session")
def tokenizer(vocabulary):
    return Tokenizer(vocabulary)


@pytest.fixture(scope="session")
def probes(tokenizer):
    return make_text_probes(probes_per_domain=4, seq_len=24, tokenizer=tokenizer)


@pytest.fixture(scope="session")
def small_dataset(tokenizer):
    """Four-domain classification dataset (train-sized)."""
    return make_domain_dataset(
        ["legal", "medical", "news", "code"], docs_per_domain=20,
        seq_len=24, seed=0, tokenizer=tokenizer,
    )


@pytest.fixture(scope="session")
def broad_dataset(tokenizer):
    """All-domain dataset (foundation pre-training)."""
    return make_domain_dataset(
        list(DOMAIN_NAMES), docs_per_domain=15, seq_len=24, seed=0,
        tokenizer=tokenizer,
    )


@pytest.fixture(scope="session")
def foundation_model(vocabulary, broad_dataset):
    """A trained foundation classifier shared across tests (do not mutate)."""
    model = TextClassifier(
        len(vocabulary), num_classes=len(DOMAIN_NAMES), dim=16, hidden=(24,), seed=0
    )
    train_classifier(
        model, broad_dataset.tokens, broad_dataset.labels,
        epochs=8, lr=5e-3, seed=0,
    )
    return model


@pytest.fixture(scope="session")
def lake_bundle():
    """A small generated benchmark lake shared across tests (treat lake
    contents as read-only; tests that mutate build their own)."""
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=4, max_chain_depth=1,
        docs_per_domain=18, foundation_epochs=8, specialize_epochs=6,
        num_merges=1, num_stitches=1, seed=5,
    )
    return generate_lake(spec)


@pytest.fixture()
def mutable_lake_bundle():
    """A fresh small lake for tests that mutate cards/visibility."""
    spec = LakeSpec(
        num_foundations=2, chains_per_foundation=2, max_chain_depth=1,
        docs_per_domain=15, foundation_epochs=6, specialize_epochs=5,
        num_merges=0, num_stitches=0, seed=11,
    )
    return generate_lake(spec)
