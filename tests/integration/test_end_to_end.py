"""End-to-end integration: every lake task over one generated lake.

This exercises the Figure 2 system: lake -> indexer / weight-space /
interpretability -> version graph, generated docs, citations, ranked
models — and checks consistency *between* tasks.
"""

import numpy as np
import pytest

from repro.core.audit import ModelAuditor, propagate_risk
from repro.core.benchmarking import (
    Benchmark,
    LifelongLedger,
    precision_at_k,
    search_ground_truth,
)
from repro.core.citation import cite_model, resolve_citation
from repro.core.docgen import CardGenerator, CardVerifier
from repro.core.search import SearchEngine, execute_query
from repro.core.versioning import VersionGraph, recover_version_graph
from repro.lake import CardCorruptor


class TestFullPipeline:
    def test_search_then_audit_then_cite(self, lake_bundle, probes):
        """The §6 user journey: search for a model, audit it, cite it."""
        engine = SearchEngine(lake_bundle.lake, probes)
        hits = engine.search("summarize legal court documents", k=3)
        assert hits
        chosen = hits[0].model_id

        generator = CardGenerator(lake_bundle.lake, probes)
        auditor = ModelAuditor(lake_bundle.lake, generator)
        report = auditor.audit(chosen)
        assert report.answers

        citation = cite_model(lake_bundle.lake, chosen)
        assert resolve_citation(lake_bundle.lake, citation).status in (
            "exact", "lake_evolved",
        )

    def test_search_quality_against_ground_truth(self, lake_bundle, probes):
        engine = SearchEngine(lake_bundle.lake, probes)
        truth = search_ground_truth(lake_bundle, accuracy_threshold=0.9)
        precisions = []
        for domain in ("legal", "medical", "news", "code"):
            relevant = truth.relevant[domain]
            if not relevant:
                continue
            hits = engine.search_domains([domain], k=3)
            precisions.append(
                precision_at_k([h.model_id for h in hits], relevant, 3)
            )
        assert precisions
        assert np.mean(precisions) > 0.5

    def test_recovered_graph_supports_risk_propagation(self, lake_bundle):
        """Risk warnings must work even from a *recovered* graph."""
        recovered = recover_version_graph(lake_bundle.lake).graph
        root = lake_bundle.truth.foundations[0]
        assessment = propagate_risk(recovered, {root: 1.0})
        true_descendants = {
            child for parents, child, _ in lake_bundle.truth.edges
            if root in parents
        }
        flagged = assessment.flagged(0.2)
        # At least half the direct children are warned via recovery alone.
        overlap = len(flagged & true_descendants)
        assert overlap >= len(true_descendants) / 2

    def test_docgen_repairs_corrupted_lake(self, mutable_lake_bundle, probes):
        """Blank out all cards, regenerate, and verify search recovers."""
        bundle = mutable_lake_bundle
        CardCorruptor(missing_rate=1.0, seed=0).apply(bundle.lake)
        generator = CardGenerator(bundle.lake, probes)
        for record in bundle.lake:
            repaired = generator.fill_missing_fields(record.model_id)
            bundle.lake.update_card(record.model_id, repaired)
        completeness = [r.card.completeness() for r in bundle.lake]
        assert min(completeness) > 0.5
        # Keyword search over regenerated cards works again.
        engine = SearchEngine(bundle.lake, probes)
        hits = engine.search("legal court documents", k=3, method="keyword")
        assert hits

    def test_declarative_query_pipeline(self, lake_bundle, probes):
        engine = SearchEngine(lake_bundle.lake, probes)
        foundation_name = lake_bundle.lake.get_record(
            lake_bundle.truth.foundations[0]
        ).name
        queries = [
            "FIND MODELS WHERE task ~ 'legal court statute' LIMIT 3",
            f"FIND MODELS WHERE SIMILAR_TO('{foundation_name}') LIMIT 3",
            f"FIND MODELS WHERE OUTPERFORMS('{foundation_name}', 'acc_overall') LIMIT 5",
            "FIND MODELS WHERE family = 'text_classifier' LIMIT 5",
        ]
        for query in queries:
            hits = execute_query(engine, query)
            assert isinstance(hits, list), query

    def test_lifelong_ledger_over_generated_lake(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        ledger = LifelongLedger(lake=bundle.lake)
        ledger.add_benchmark(Benchmark("eval", bundle.eval_dataset, "accuracy"))
        full_cost = ledger.refresh()
        board = ledger.leaderboard("eval", k=1)
        top_id, top_score = board[0]
        # The leaderboard's top model really is the best by ground truth.
        best_true = max(
            bundle.truth.domain_accuracy,
            key=lambda m: np.mean(list(bundle.truth.domain_accuracy[m].values())),
        )
        true_best_score = np.mean(
            list(bundle.truth.domain_accuracy[best_true].values())
        )
        assert top_score >= true_best_score - 0.15
        assert full_cost == len(bundle.lake)


class TestViewpointConsistency:
    def test_history_and_intrinsic_versioning_agree(self, lake_bundle):
        """Edges found by blind recovery should be lineage-consistent with
        recorded history (parent and child share a tree)."""
        history_graph = VersionGraph.from_lake_history(lake_bundle.lake)
        recovered = recover_version_graph(lake_bundle.lake).graph
        consistent = 0
        total = 0
        for parent, child in recovered.edge_set():
            total += 1
            if parent in history_graph and child in history_graph:
                if history_graph.is_version_of(parent, child):
                    consistent += 1
        assert total > 0
        assert consistent / total >= 0.7

    def test_behavioral_and_metric_views_agree(self, lake_bundle, probes):
        """Behavioral top hit for a domain should have high recorded
        accuracy on that domain."""
        engine = SearchEngine(lake_bundle.lake, probes)
        for domain in ("legal", "medical"):
            hits = engine.search_domains([domain], k=1)
            top = hits[0].model_id
            assert lake_bundle.truth.domain_accuracy[top][domain] >= 0.8
