"""Tests for cross-task linear connectivity analysis."""

import numpy as np
import pytest

from repro.data import make_domain_dataset
from repro.errors import IncompatibleModelsError
from repro.nn import TextClassifier, train_classifier
from repro.transforms import finetune_classifier
from repro.weightspace import interpolate_losses, linearity_gap


@pytest.fixture(scope="module")
def linearity_setup(foundation_model, tokenizer, broad_dataset, vocabulary):
    ft_a = make_domain_dataset(
        ["legal", "medical"], 20, seq_len=24, seed=101, tokenizer=tokenizer
    )
    ft_b = make_domain_dataset(
        ["news", "code"], 20, seq_len=24, seed=102, tokenizer=tokenizer
    )
    sibling_a, _ = finetune_classifier(foundation_model, ft_a, epochs=4, seed=0)
    sibling_b, _ = finetune_classifier(foundation_model, ft_b, epochs=4, seed=1)
    # Same architecture, trained independently from a different init.
    unrelated = TextClassifier(len(vocabulary), 8, dim=16, hidden=(24,), seed=55)
    train_classifier(
        unrelated, broad_dataset.tokens, broad_dataset.labels,
        epochs=8, lr=5e-3, seed=55,
    )
    return sibling_a, sibling_b, unrelated


class TestInterpolation:
    def test_endpoints_match_models(self, linearity_setup, broad_dataset):
        from repro.nn import per_example_losses

        sibling_a, sibling_b, _ = linearity_setup
        result = interpolate_losses(sibling_a, sibling_b, broad_dataset, num_points=5)
        loss_a = per_example_losses(
            sibling_a, broad_dataset.tokens, broad_dataset.labels
        ).mean()
        assert abs(result.losses[0] - loss_a) < 1e-9
        assert len(result.ts) == 5

    def test_misaligned_raises(self, linearity_setup, broad_dataset, vocabulary):
        sibling_a, _, _ = linearity_setup
        other = TextClassifier(len(vocabulary), 8, dim=20, hidden=(16,), seed=9)
        with pytest.raises(IncompatibleModelsError):
            interpolate_losses(sibling_a, other, broad_dataset)


class TestLinearityGap:
    def test_siblings_flatter_than_unrelated(self, linearity_setup, broad_dataset):
        """Zhou et al. shape: fine-tune siblings of one base are linearly
        connected; independently trained models show a barrier."""
        sibling_a, sibling_b, unrelated = linearity_setup
        gap = linearity_gap(
            sibling_a, sibling_b, unrelated, broad_dataset, num_points=7
        )
        assert gap["sibling_barrier"] < gap["unrelated_barrier"]
        assert gap["gap"] > 0
