"""Tests for weight-space feature extraction."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.weightspace import (
    delta_features,
    global_weight_features,
    model_weight_features,
    spectral_features,
)


class TestGlobalFeatures:
    def test_deterministic(self, foundation_model):
        state = foundation_model.state_dict()
        assert np.array_equal(
            global_weight_features(state), global_weight_features(state)
        )

    def test_sparsity_feature_reflects_pruning(self, foundation_model):
        from repro.transforms import prune_model

        pruned, _ = prune_model(foundation_model, sparsity=0.6)
        base = global_weight_features(foundation_model.state_dict())
        after = global_weight_features(pruned.state_dict())
        # Feature index 11 is sparsity (7 quantiles + 4).
        assert after[11] > base[11]

    def test_finite(self, foundation_model):
        features = global_weight_features(foundation_model.state_dict())
        assert np.all(np.isfinite(features))


class TestSpectralFeatures:
    def test_permutation_invariance(self, foundation_model):
        """Shuffling hidden units must not change spectral features."""
        state = foundation_model.state_dict()
        permuted = {k: v.copy() for k, v in state.items()}
        rng = np.random.default_rng(0)
        # Permute the hidden dimension of the head's first layer pair.
        perm = rng.permutation(permuted["head.net.layers.0.weight"].shape[1])
        permuted["head.net.layers.0.weight"] = (
            permuted["head.net.layers.0.weight"][:, perm]
        )
        permuted["head.net.layers.0.bias"] = permuted["head.net.layers.0.bias"][perm]
        permuted["head.net.layers.2.weight"] = (
            permuted["head.net.layers.2.weight"][perm, :]
        )
        a = spectral_features(state)
        b = spectral_features(permuted)
        assert np.allclose(a, b, atol=1e-8)

    def test_handles_no_matrices(self):
        assert spectral_features({"bias": np.ones(4)}).shape == (7,)


class TestModelFeatures:
    def test_accepts_module_or_state(self, foundation_model):
        a = model_weight_features(foundation_model)
        b = model_weight_features(foundation_model.state_dict())
        assert np.array_equal(a, b)

    def test_fixed_dim_across_architectures(self, foundation_model, vocabulary):
        from repro.nn import TextClassifier

        other = TextClassifier(len(vocabulary), 8, dim=20, hidden=(16, 16), seed=3)
        assert model_weight_features(foundation_model).shape == (
            model_weight_features(other).shape
        )


class TestDeltaFeatures:
    def test_lora_low_rank_signature(self, foundation_model, broad_dataset, tokenizer):
        from repro.data import make_domain_dataset
        from repro.transforms import finetune_classifier, lora_adapt_classifier

        dataset = make_domain_dataset(
            ["finance", "sports"], 20, seq_len=24, seed=81, tokenizer=tokenizer
        )
        lora_child, _ = lora_adapt_classifier(
            foundation_model, dataset, rank=2, epochs=3, lr=1e-2, seed=0
        )
        ft_child, _ = finetune_classifier(foundation_model, dataset, epochs=3, seed=0)
        base = foundation_model.state_dict()
        lora_f = delta_features(base, lora_child.state_dict())
        ft_f = delta_features(base, ft_child.state_dict())
        # The last-3 block holds [mean rank ratio, max rank ratio, changed frac].
        assert lora_f[-3] < ft_f[-3]

    def test_no_alignment_raises(self, foundation_model):
        with pytest.raises(ConfigError):
            delta_features(foundation_model.state_dict(), {"other": np.ones((2, 2))})
