"""Tests for weight-space meta-models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.weightspace import (
    MetaDataset,
    WeightSpaceModel,
    build_meta_dataset,
    cross_validated_accuracy,
)


@pytest.fixture(scope="module")
def meta_setup(lake_bundle):
    states = {
        mid: lake_bundle.lake.get_model(mid, force=True).state_dict()
        for mid in lake_bundle.lake.model_ids()
    }
    return lake_bundle, states


class TestBuildMetaDataset:
    def test_shapes(self, meta_setup):
        bundle, states = meta_setup
        labels = {mid: (s or "generalist") for mid, s in bundle.truth.specialty.items()}
        dataset = build_meta_dataset(states, labels)
        assert len(dataset) == len(states)
        assert dataset.features.shape[0] == len(dataset.labels)

    def test_skips_unlabelled(self, meta_setup):
        bundle, states = meta_setup
        some = list(states)[:3]
        labels = {mid: "x" for mid in some}
        dataset = build_meta_dataset(states, labels)
        assert len(dataset) == 3

    def test_no_labels_raises(self, meta_setup):
        _, states = meta_setup
        with pytest.raises(ConfigError):
            build_meta_dataset(states, {})


class TestWeightSpaceModel:
    def test_predicts_architecture_family(self, meta_setup):
        """The easiest weight-space task: which foundation family?"""
        bundle, states = meta_setup
        graph_labels = {}
        from repro.core.versioning import VersionGraph

        graph = VersionGraph.from_lake_history(bundle.lake)
        for mid in states:
            graph_labels[mid] = graph.root_of(mid)
        dataset = build_meta_dataset(states, graph_labels)
        model = WeightSpaceModel(seed=0).fit(dataset, epochs=80)
        assert model.accuracy(dataset) > 0.7

    def test_predict_state(self, meta_setup):
        bundle, states = meta_setup
        labels = {mid: (s or "generalist") for mid, s in bundle.truth.specialty.items()}
        dataset = build_meta_dataset(states, labels)
        model = WeightSpaceModel(seed=0).fit(dataset, epochs=40)
        some_id = dataset.model_ids[0]
        prediction = model.predict_state(states[some_id])
        assert prediction in dataset.label_names

    def test_unfitted_raises(self, meta_setup):
        _, states = meta_setup
        model = WeightSpaceModel()
        with pytest.raises(ConfigError):
            model.predict(np.zeros(25))


class TestCrossValidation:
    def test_cv_runs(self, meta_setup):
        bundle, states = meta_setup
        labels = {mid: (s or "generalist") for mid, s in bundle.truth.specialty.items()}
        dataset = build_meta_dataset(states, labels)
        accuracy = cross_validated_accuracy(dataset, folds=3, epochs=30, seed=0)
        assert 0.0 <= accuracy <= 1.0

    def test_invalid_folds(self, meta_setup):
        bundle, states = meta_setup
        labels = {mid: "x" for mid in states}
        dataset = build_meta_dataset(states, labels)
        with pytest.raises(ConfigError):
            cross_validated_accuracy(dataset, folds=1)
