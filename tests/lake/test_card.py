"""Tests for model cards."""

from repro.lake import CARD_CONTENT_FIELDS, ModelCard


def full_card():
    return ModelCard(
        model_name="legal-expert-v1",
        description="A legal text model.",
        intended_use="Legal document analysis.",
        training_data="legal-corpus-v1",
        training_domains=["legal"],
        base_model="foundation-0",
        transform_summary="finetune on legal-corpus-v1",
        metrics={"acc_legal": 0.97},
        limitations="Not for medical use.",
        license="mit",
        tags=["legal", "classifier"],
    )


class TestCompleteness:
    def test_full_card_is_complete(self):
        assert full_card().completeness() == 1.0

    def test_empty_card_is_incomplete(self):
        assert ModelCard(model_name="x").completeness() == 0.0

    def test_partial(self):
        card = ModelCard(model_name="x", description="y")
        assert card.completeness() == 1 / len(CARD_CONTENT_FIELDS)


class TestText:
    def test_contains_key_fields(self):
        text = full_card().text()
        assert "legal-expert-v1" in text
        assert "legal-corpus-v1" in text
        assert "foundation-0" in text

    def test_empty_fields_omitted(self):
        text = ModelCard(model_name="x").text()
        assert text == "x"


class TestMarkdown:
    def test_undocumented_marked(self):
        md = ModelCard(model_name="x").to_markdown()
        assert "*undocumented*" in md

    def test_sections_present(self):
        md = full_card().to_markdown()
        for section in ("Description", "Training data", "Metrics", "License"):
            assert f"## {section}" in md


class TestDigestAndCopy:
    def test_digest_stable(self):
        assert full_card().digest() == full_card().digest()

    def test_digest_changes_with_content(self):
        a = full_card()
        b = full_card()
        b.description = "changed"
        assert a.digest() != b.digest()

    def test_copy_is_deep_enough(self):
        a = full_card()
        b = a.copy()
        b.training_domains.append("medical")
        b.metrics["x"] = 1.0
        assert a.training_domains == ["legal"]
        assert "x" not in a.metrics
