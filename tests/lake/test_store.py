"""Tests for the content-addressed weight store."""

import os

import numpy as np
import pytest

from repro.errors import LakeError, LakeIntegrityError
from repro.lake import WeightStore


@pytest.fixture()
def state():
    rng = np.random.default_rng(0)
    return {"layer.weight": rng.normal(size=(4, 5)), "layer.bias": np.zeros(5)}


class TestWeightStore:
    def test_round_trip(self, state):
        store = WeightStore()
        digest = store.put(state)
        restored = store.get(digest)
        assert all(np.array_equal(restored[k], state[k]) for k in state)

    def test_content_addressing(self, state):
        store = WeightStore()
        a = store.put(state)
        b = store.put({k: v.copy() for k, v in state.items()})
        assert a == b
        assert len(store) == 1

    def test_different_content_different_digest(self, state):
        store = WeightStore()
        a = store.put(state)
        modified = {k: v.copy() for k, v in state.items()}
        modified["layer.bias"][0] = 1.0
        assert store.put(modified) != a

    def test_missing_digest_raises(self):
        store = WeightStore()
        with pytest.raises(LakeError):
            store.get("nope")

    def test_disk_persistence(self, state, tmp_path):
        directory = str(tmp_path / "weights")
        store = WeightStore(directory=directory)
        digest = store.put(state)
        # New store instance reads the blob back from disk.
        fresh = WeightStore(directory=directory)
        restored = fresh.get(digest)
        assert all(np.array_equal(restored[k], state[k]) for k in state)

    def test_total_bytes_positive(self, state):
        store = WeightStore()
        store.put(state)
        assert store.total_bytes() > 0

    def test_truncated_disk_blob_raises_integrity_error(self, state, tmp_path):
        directory = str(tmp_path / "weights")
        digest = WeightStore(directory=directory).put(state)
        path = os.path.join(directory, f"{digest}.rwb")
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        fresh = WeightStore(directory=directory)
        with pytest.raises(LakeIntegrityError) as info:
            fresh.get(digest)
        # The error names the artifact and the digest it failed.
        assert path in str(info.value)
        assert digest in str(info.value)
        assert info.value.expected == digest

    def test_corrupt_blob_is_not_cached(self, state, tmp_path):
        directory = str(tmp_path / "weights")
        digest = WeightStore(directory=directory).put(state)
        path = os.path.join(directory, f"{digest}.rwb")
        original = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(b"rotten")
        fresh = WeightStore(directory=directory)
        with pytest.raises(LakeIntegrityError):
            fresh.get(digest)
        # Restoring the real bytes must make the same store work again:
        # the bad read was never admitted to the in-memory cache.
        with open(path, "wb") as handle:
            handle.write(original)
        restored = fresh.get(digest)
        assert all(np.array_equal(restored[k], state[k]) for k in state)
