"""Parallel lake generation must be bit-identical to sequential.

The acceptance bar for wave-scheduled generation: a lake built with
``workers=4`` has the same model ids, names, weight digests, derivation
edges, hidden-history flags, and clock values as ``workers=1``.
"""

import pytest

from repro.errors import ConfigError
from repro.lake.generator import LakeGenerator, LakeSpec, generate_lake

_SPEC_KWARGS = dict(
    num_foundations=2,
    chains_per_foundation=2,
    max_chain_depth=2,
    docs_per_domain=10,
    eval_docs_per_domain=4,
    foundation_epochs=2,
    specialize_epochs=2,
    num_merges=1,
    num_stitches=1,
    seed=11,
    hidden_history_fraction=0.4,
    num_lm_foundations=1,
    lm_chains=1,
    lm_epochs=1,
)


def _fingerprint(bundle):
    records = list(bundle.lake)
    return {
        "ids": [r.model_id for r in records],
        "names": [r.name for r in records],
        "digests": [r.weights_digest for r in records],
        "created_at": [r.created_at for r in records],
        "hidden": [not r.history_public for r in records],
        "edges": [
            (tuple(parents), child, transform.kind)
            for parents, child, transform in bundle.truth.edges
        ],
        "foundations": list(bundle.truth.foundations),
        "specialty": dict(bundle.truth.specialty),
        "metrics": {
            r.model_id: dict(r.eval_metrics) for r in records
        },
    }


class TestParallelDeterminism:
    def test_workers_4_bit_identical_to_workers_1(self):
        sequential = generate_lake(LakeSpec(**_SPEC_KWARGS, workers=1))
        parallel = generate_lake(LakeSpec(**_SPEC_KWARGS, workers=4))
        assert _fingerprint(sequential) == _fingerprint(parallel)

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigError, match="workers"):
            LakeGenerator(LakeSpec(workers=0))

    def test_workers_default_is_sequential(self):
        assert LakeSpec().workers == 1
