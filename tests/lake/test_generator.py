"""Tests for benchmark-lake generation and its ground truth."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.lake import LakeSpec, generate_lake


class TestLakeStructure:
    def test_model_count(self, lake_bundle):
        spec_min = 2  # foundations
        assert lake_bundle.num_models >= spec_min + 2 * 4  # + chains

    def test_foundations_are_roots(self, lake_bundle):
        children = {c for _, c, _ in lake_bundle.truth.edges}
        for foundation in lake_bundle.truth.foundations:
            assert foundation not in children

    def test_every_edge_child_registered(self, lake_bundle):
        for parents, child, _ in lake_bundle.truth.edges:
            assert child in lake_bundle.lake
            for parent in parents:
                assert parent in lake_bundle.lake

    def test_history_matches_truth(self, lake_bundle):
        truth_parents = lake_bundle.truth.parent_map()
        for record in lake_bundle.lake:
            history = lake_bundle.lake.get_history(record.model_id, force=True)
            expected = truth_parents.get(record.model_id, ())
            assert tuple(history.parent_ids) == tuple(expected)

    def test_merge_has_two_parents(self, lake_bundle):
        merge_edges = [e for e in lake_bundle.truth.edges if e[2].kind == "merge"]
        assert merge_edges
        assert all(len(parents) == 2 for parents, _, _ in merge_edges)

    def test_stitch_present(self, lake_bundle):
        stitch_edges = [e for e in lake_bundle.truth.edges if e[2].kind == "stitch"]
        assert stitch_edges

    def test_datasets_registered_with_lineage(self, lake_bundle):
        registry = lake_bundle.lake.datasets
        assert len(registry) >= 2
        base_digest = lake_bundle.base_dataset.content_digest()
        assert base_digest in registry
        # Specialty datasets must be versions of the base corpus.
        versions = registry.versions_of(base_digest)
        assert len(versions) > 1


class TestGroundTruthQuality:
    def test_foundations_are_generalists(self, lake_bundle):
        for foundation in lake_bundle.truth.foundations:
            accuracy = lake_bundle.truth.domain_accuracy[foundation]
            assert np.mean(list(accuracy.values())) > 0.9

    def test_specialists_good_on_specialty(self, lake_bundle):
        checked = 0
        for model_id, specialty in lake_bundle.truth.specialty.items():
            transform = lake_bundle.truth.transform_of(model_id)
            if specialty is None or transform is None:
                continue
            if transform.kind in ("finetune", "lora"):
                assert lake_bundle.truth.domain_accuracy[model_id][specialty] > 0.8
                checked += 1
        assert checked > 0

    def test_cards_are_truthful_before_corruption(self, lake_bundle):
        for record in lake_bundle.lake:
            card = record.card
            true_domains = set(lake_bundle.truth.model_domains[record.model_id])
            assert set(card.training_domains) == true_domains
            assert card.completeness() > 0.7


class TestDeterminismAndValidation:
    def test_same_seed_same_lake(self):
        spec = LakeSpec(
            num_foundations=1, chains_per_foundation=2, max_chain_depth=1,
            docs_per_domain=10, foundation_epochs=4, specialize_epochs=3,
            num_merges=0, num_stitches=0, seed=77,
        )
        a = generate_lake(spec)
        b = generate_lake(spec)
        assert [r.weights_digest for r in a.lake] == [r.weights_digest for r in b.lake]

    def test_invalid_spec(self):
        with pytest.raises(ConfigError):
            LakeSpec(num_foundations=0).validate()
        with pytest.raises(ConfigError):
            LakeSpec(hidden_history_fraction=2.0).validate()

    def test_hidden_history_fraction(self):
        spec = LakeSpec(
            num_foundations=1, chains_per_foundation=3, max_chain_depth=1,
            docs_per_domain=10, foundation_epochs=4, specialize_epochs=3,
            num_merges=0, num_stitches=0, seed=13, hidden_history_fraction=1.0,
        )
        bundle = generate_lake(spec)
        assert all(
            not bundle.lake.has_public_history(r.model_id) for r in bundle.lake
        )
