"""Tests for model records and histories."""

from repro.lake import ModelCard, ModelHistory, ModelRecord
from repro.transforms import TransformRecord


def make_record(**overrides):
    defaults = dict(
        model_id="m0001-abcd",
        name="demo-model",
        architecture={"family": "text_classifier", "dim": 16},
        weights_digest="deadbeef",
        card=ModelCard(model_name="demo-model"),
    )
    defaults.update(overrides)
    return ModelRecord(**defaults)


class TestModelHistory:
    def test_describe_scratch(self):
        history = ModelHistory(algorithm="train_from_scratch", dataset_name="corpus")
        assert "train_from_scratch" in history.describe()
        assert "corpus" in history.describe()

    def test_describe_transform(self):
        history = ModelHistory(
            parent_ids=("m0000-ffff",),
            transform=TransformRecord(kind="lora", params={"rank": 2}),
        )
        text = history.describe()
        assert "lora" in text
        assert "m0000-ff" in text

    def test_describe_no_parents(self):
        history = ModelHistory(transform=TransformRecord(kind="merge"))
        assert "?" in history.describe()


class TestModelRecord:
    def test_family(self):
        assert make_record().family == "text_classifier"
        assert make_record(architecture={}).family == "unknown"

    def test_summary_contains_key_fields(self):
        record = make_record()
        summary = record.summary()
        assert "demo-model" in summary
        assert "text_classifier" in summary
        assert "card_completeness" in summary

    def test_summary_shows_base(self):
        card = ModelCard(model_name="demo", base_model="foundation-0")
        record = make_record(card=card)
        assert "foundation-0" in record.summary()
