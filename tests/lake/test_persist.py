"""Tests for lake persistence round trips."""

import numpy as np
import pytest

from repro.core.citation import cite_model, resolve_citation
from repro.core.versioning import VersionGraph
from repro.errors import LakeError
from repro.lake import load_lake, save_lake


@pytest.fixture(scope="module")
def saved(tmp_path_factory, lake_bundle):
    directory = str(tmp_path_factory.mktemp("lake"))
    save_lake(lake_bundle.lake, directory)
    return directory, load_lake(directory)


class TestRoundTrip:
    def test_record_identity(self, saved, lake_bundle):
        _, restored = saved
        assert restored.model_ids() == lake_bundle.lake.model_ids()
        for record in lake_bundle.lake:
            twin = restored.get_record(record.model_id)
            assert twin.name == record.name
            assert twin.weights_digest == record.weights_digest
            assert twin.created_at == record.created_at
            assert twin.eval_metrics == record.eval_metrics

    def test_cards_survive(self, saved, lake_bundle):
        _, restored = saved
        for record in lake_bundle.lake:
            assert restored.get_record(record.model_id).card.digest() == (
                record.card.digest()
            )

    def test_models_behave_identically(self, saved, lake_bundle):
        _, restored = saved
        model_id = lake_bundle.truth.foundations[0]
        original = lake_bundle.lake.get_model(model_id, force=True)
        twin = restored.get_model(model_id, force=True)
        tokens = lake_bundle.eval_dataset.tokens[:5]
        assert np.allclose(
            original.predict_proba(tokens), twin.predict_proba(tokens)
        )

    def test_histories_and_version_graph_survive(self, saved, lake_bundle):
        _, restored = saved
        original_graph = VersionGraph.from_lake_history(lake_bundle.lake)
        restored_graph = VersionGraph.from_lake_history(restored)
        assert restored_graph.edge_set() == original_graph.edge_set()
        child = next(c for _, c, _ in lake_bundle.truth.edges)
        history = restored.get_history(child)
        assert history.transform is not None
        assert history.transform.kind == (
            lake_bundle.lake.get_history(child).transform.kind
        )

    def test_datasets_and_lineage_survive(self, saved, lake_bundle):
        _, restored = saved
        original = lake_bundle.lake.datasets
        twin = restored.datasets
        assert set(twin.digests()) == set(original.digests())
        base = lake_bundle.base_dataset.content_digest()
        assert twin.versions_of(base) == original.versions_of(base)

    def test_clock_and_citations_survive(self, saved, lake_bundle):
        _, restored = saved
        assert restored.clock == lake_bundle.lake.clock
        model_id = lake_bundle.truth.foundations[0]
        citation = cite_model(lake_bundle.lake, model_id)
        outcome = resolve_citation(restored, citation)
        # Same artifact, same weights; at worst a snapshot difference.
        assert outcome.status in ("exact", "lake_evolved")

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(LakeError):
            load_lake(str(tmp_path))
