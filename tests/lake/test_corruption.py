"""Tests for the card-corruption model."""

import pytest

from repro.errors import ConfigError
from repro.lake import CardCorruptor


class TestCorruptionRates:
    def test_zero_rates_change_nothing(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        before = {r.model_id: r.card.digest() for r in bundle.lake}
        report = CardCorruptor(missing_rate=0.0, seed=0).apply(bundle.lake)
        assert report.total == 0
        after = {r.model_id: r.card.digest() for r in bundle.lake}
        assert before == after

    def test_full_missing_blanks_everything(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        CardCorruptor(missing_rate=1.0, seed=0).apply(bundle.lake)
        for record in bundle.lake:
            assert record.card.description is None
            assert record.card.training_domains == []
            assert record.card.base_model is None

    def test_report_matches_changes(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        report = CardCorruptor(missing_rate=0.5, seed=3).apply(bundle.lake)
        assert report.total > 0
        for model_id, fields in report.corrupted.items():
            card = bundle.lake.get_record(model_id).card
            for field_name, mode in fields:
                if mode == "missing":
                    value = getattr(card, field_name)
                    assert not value

    def test_poison_inserts_lies(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        report = CardCorruptor(missing_rate=0.0, poison_rate=1.0, seed=1).apply(
            bundle.lake
        )
        assert report.total > 0
        poisoned_base = [
            r for r in bundle.lake if r.card.base_model == "foundation-999"
        ]
        assert poisoned_base

    def test_stale_copies_parent_value(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        report = CardCorruptor(missing_rate=0.0, stale_rate=1.0, seed=2).apply(
            bundle.lake
        )
        for model_id, fields in report.corrupted.items():
            history = bundle.lake.get_history(model_id, force=True)
            parent_card = bundle.lake.get_record(history.parent_ids[0]).card
            card = bundle.lake.get_record(model_id).card
            for field_name, mode in fields:
                assert mode == "stale"
                # Stale fields equal the parent's *current* field.
                assert getattr(card, field_name) == getattr(parent_card, field_name)

    def test_invalid_rates(self):
        with pytest.raises(ConfigError):
            CardCorruptor(missing_rate=0.8, poison_rate=0.5)
        with pytest.raises(ConfigError):
            CardCorruptor(missing_rate=-0.1)

    def test_deterministic(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        report = CardCorruptor(missing_rate=0.5, seed=9).apply(bundle.lake)
        # Same seed on an identical fresh lake gives the same report keys.
        from repro.lake import LakeSpec, generate_lake

        fresh = generate_lake(LakeSpec(
            num_foundations=2, chains_per_foundation=2, max_chain_depth=1,
            docs_per_domain=15, foundation_epochs=6, specialize_epochs=5,
            num_merges=0, num_stitches=0, seed=11,
        ))
        report2 = CardCorruptor(missing_rate=0.5, seed=9).apply(fresh.lake)
        assert {
            tuple(v) for v in report.corrupted.values()
        } == {tuple(v) for v in report2.corrupted.values()}
