"""Tests for lake statistics."""

import pytest

from repro.lake import CardCorruptor
from repro.lake.stats import compute_statistics


class TestLakeStatistics:
    def test_counts_match_lake(self, lake_bundle):
        stats = compute_statistics(lake_bundle.lake)
        assert stats.num_models == len(lake_bundle.lake)
        assert stats.num_datasets == len(lake_bundle.lake.datasets)
        assert sum(stats.families.values()) == stats.num_models

    def test_transform_histogram_matches_truth(self, lake_bundle):
        stats = compute_statistics(lake_bundle.lake)
        from collections import Counter

        truth_kinds = Counter(r.kind for _, _, r in lake_bundle.truth.edges)
        assert stats.transform_kinds == dict(truth_kinds)

    def test_roots_are_foundations(self, lake_bundle):
        stats = compute_statistics(lake_bundle.lake)
        assert stats.num_roots == len(lake_bundle.truth.foundations)

    def test_lineage_depth_positive(self, lake_bundle):
        stats = compute_statistics(lake_bundle.lake)
        assert stats.max_lineage_depth >= 1

    def test_documentation_health_tracks_corruption(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        before = compute_statistics(bundle.lake)
        CardCorruptor(missing_rate=0.9, seed=0).apply(bundle.lake)
        after = compute_statistics(bundle.lake)
        assert after.card_completeness_mean < before.card_completeness_mean
        assert len(after.undocumented_models) > len(before.undocumented_models)

    def test_visibility_counters(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        some = bundle.lake.model_ids()[0]
        bundle.lake.set_history_visibility(some, False)
        bundle.lake.set_weights_visibility(some, False)
        stats = compute_statistics(bundle.lake)
        assert stats.hidden_history_count == 1
        assert stats.api_only_count == 1

    def test_text_rendering(self, lake_bundle):
        text = compute_statistics(lake_bundle.lake).to_text()
        assert "models:" in text
        assert "transforms:" in text
