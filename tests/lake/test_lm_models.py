"""Tests for mixed-modality lakes (language models alongside classifiers)."""

import numpy as np
import pytest

from repro.lake import LakeSpec, generate_lake


@pytest.fixture(scope="module")
def lm_lake():
    spec = LakeSpec(
        num_foundations=1, chains_per_foundation=2, max_chain_depth=1,
        docs_per_domain=15, foundation_epochs=6, specialize_epochs=5,
        num_merges=0, num_stitches=0, seed=17,
        num_lm_foundations=1, lm_chains=2, lm_epochs=3,
    )
    return generate_lake(spec)


class TestMixedModalityLake:
    def test_both_families_present(self, lm_lake):
        families = {r.family for r in lm_lake.lake}
        assert "text_classifier" in families
        assert "transformer_lm" in families

    def test_lm_foundation_is_root(self, lm_lake):
        lm_roots = [
            mid for mid in lm_lake.truth.foundations
            if lm_lake.lake.get_record(mid).family == "transformer_lm"
        ]
        assert lm_roots
        children = {c for _, c, _ in lm_lake.truth.edges}
        assert all(root not in children for root in lm_roots)

    def test_lm_chains_have_history(self, lm_lake):
        lm_children = [
            c for p, c, r in lm_lake.truth.edges
            if lm_lake.lake.get_record(c).family == "transformer_lm"
        ]
        assert len(lm_children) == 2
        for child in lm_children:
            history = lm_lake.lake.get_history(child)
            assert history.transform.kind == "finetune"
            assert history.dataset_digest in lm_lake.lake.datasets

    def test_lm_specialist_prefers_its_domain(self, lm_lake):
        specialist = next(
            mid for mid, s in lm_lake.truth.specialty.items()
            if s and lm_lake.lake.get_record(mid).family == "transformer_lm"
        )
        specialty = lm_lake.truth.specialty[specialist]
        scores = lm_lake.truth.domain_accuracy[specialist]
        others = [v for d, v in scores.items() if d != specialty]
        assert scores[specialty] > np.mean(others)

    def test_lm_rehydrates(self, lm_lake):
        lm_id = next(
            r.model_id for r in lm_lake.lake if r.family == "transformer_lm"
        )
        model = lm_lake.lake.get_model(lm_id, force=True)
        logits = model(lm_lake.eval_dataset.tokens[:2])
        assert logits.shape[-1] == lm_lake.tokenizer.vocab_size


class TestCrossModalitySearch:
    def test_behavioral_search_covers_lms(self, lm_lake, probes):
        """Content-based search must cover ALL models, including LMs."""
        from repro.core.search import SearchEngine

        engine = SearchEngine(lm_lake.lake, probes)
        total = len(lm_lake.lake)
        hits = engine.search("legal court statute", k=total, method="behavioral")
        hit_families = {
            lm_lake.lake.get_record(h.model_id).family for h in hits
        }
        assert "transformer_lm" in hit_families

    def test_lm_as_query(self, lm_lake, probes):
        """Model-as-query with an LM query finds its LM relatives first."""
        from repro.core.search import SearchEngine

        engine = SearchEngine(lm_lake.lake, probes)
        lm_child = next(
            c for _, c, _ in lm_lake.truth.edges
            if lm_lake.lake.get_record(c).family == "transformer_lm"
        )
        hits = engine.related_models(lm_child, k=3, view="behavioral")
        top_families = [
            lm_lake.lake.get_record(h.model_id).family for h in hits[:1]
        ]
        assert "transformer_lm" in top_families
