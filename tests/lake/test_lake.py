"""Tests for the ModelLake facade and viewpoint visibility rules."""

import numpy as np
import pytest

from repro.errors import (
    DuplicateIdError,
    HistoryUnavailableError,
    IntrinsicsUnavailableError,
    ModelNotFoundError,
)
from repro.lake import ModelCard, ModelHistory, ModelLake
from repro.nn import TextClassifier


@pytest.fixture()
def lake_with_model(vocabulary):
    lake = ModelLake()
    model = TextClassifier(len(vocabulary), 8, dim=8, hidden=(8,), seed=0)
    record = lake.add_model(
        model,
        name="demo",
        card=ModelCard(model_name="demo"),
        history=ModelHistory(algorithm="train_from_scratch"),
        tags=["demo"],
    )
    return lake, model, record


class TestRegistration:
    def test_rehydration_matches(self, lake_with_model, vocabulary):
        lake, model, record = lake_with_model
        restored = lake.get_model(record.model_id)
        x = np.array([[5, 6, 7]])
        assert np.allclose(restored.predict_proba(x), model.predict_proba(x))

    def test_duplicate_id_rejected(self, lake_with_model, vocabulary):
        lake, model, record = lake_with_model
        with pytest.raises(DuplicateIdError):
            lake.add_model(model, name="again", model_id=record.model_id)

    def test_unknown_model_raises(self, lake_with_model):
        lake, _, _ = lake_with_model
        with pytest.raises(ModelNotFoundError):
            lake.get_record("nope")

    def test_clock_advances(self, lake_with_model, vocabulary):
        lake, model, _ = lake_with_model
        before = lake.clock
        lake.add_model(model, name="second")
        assert lake.clock == before + 1

    def test_identical_weights_shared(self, lake_with_model, vocabulary):
        lake, model, record = lake_with_model
        second = lake.add_model(model, name="duplicate-weights")
        assert second.weights_digest == record.weights_digest
        assert len(lake.weights) == 1


class TestVisibility:
    def test_hidden_history(self, lake_with_model):
        lake, _, record = lake_with_model
        lake.set_history_visibility(record.model_id, False)
        with pytest.raises(HistoryUnavailableError):
            lake.get_history(record.model_id)
        # The lake operator can force access.
        assert lake.get_history(record.model_id, force=True) is not None
        assert not lake.has_public_history(record.model_id)

    def test_api_only_weights(self, lake_with_model):
        lake, _, record = lake_with_model
        lake.set_weights_visibility(record.model_id, False)
        with pytest.raises(IntrinsicsUnavailableError):
            lake.get_model(record.model_id)
        assert lake.get_model(record.model_id, force=True) is not None

    def test_no_history_recorded(self, vocabulary):
        lake = ModelLake()
        model = TextClassifier(len(vocabulary), 8, dim=8, seed=0)
        record = lake.add_model(model, name="undocumented")
        with pytest.raises(HistoryUnavailableError):
            lake.get_history(record.model_id)


class TestQueriesAndSnapshot:
    def test_filter_by_tag_and_family(self, lake_with_model, vocabulary):
        lake, _, _ = lake_with_model
        assert len(lake.filter(tag="demo")) == 1
        assert len(lake.filter(family="text_classifier")) == 1
        assert len(lake.filter(family="mlp_classifier")) == 0

    def test_find_by_name(self, lake_with_model):
        lake, _, _ = lake_with_model
        assert len(lake.find_by_name("demo")) == 1
        assert lake.find_by_name("missing") == []

    def test_snapshot_changes_on_mutation(self, lake_with_model):
        lake, _, record = lake_with_model
        before = lake.snapshot_digest()
        lake.record_metric(record.model_id, "acc", 0.5)
        assert lake.snapshot_digest() != before

    def test_iteration_ordered_by_creation(self, lake_with_model, vocabulary):
        lake, model, _ = lake_with_model
        lake.add_model(model, name="later")
        names = [r.name for r in lake]
        assert names == ["demo", "later"]
