"""Tests for the sharded (v2) lake layout: placement, identity, lazy reads."""

import json
import os

import numpy as np
import pytest

from repro.errors import LakeIntegrityError
from repro.lake import ModelLake, ShardLayout, load_lake, save_lake
from repro.lake.shard import DEFAULT_PREFIX_LEN, LAYOUT_VERSION
from repro.nn.models import build_model
from repro.reliability.fsck import fsck_lake

_SPEC = {
    "family": "mlp_classifier",
    "in_features": 6,
    "num_classes": 3,
    "hidden": [8],
}


def small_lake(num_models: int = 8, seed: int = 2) -> ModelLake:
    """A lake of tiny untrained models with distinct weight digests."""
    rng = np.random.default_rng(seed)
    model = build_model(_SPEC, seed=seed)
    base = model.state_dict()
    lake = ModelLake()
    for i in range(num_models):
        model.load_state_dict({
            key: value + rng.normal(scale=0.05, size=value.shape)
            for key, value in base.items()
        })
        lake.add_model(model, name=f"tiny-{i:02d}")
    return lake


def manifest_of(directory: str) -> dict:
    with open(os.path.join(directory, "manifest.json")) as handle:
        return json.load(handle)


class TestShardLayout:
    def test_flat_placement(self):
        layout = ShardLayout(sharded=False)
        assert layout.shard_of("abcdef") == ""
        assert layout.weight_rel("abcdef") == "weights/abcdef.rwb"
        assert layout.weight_subpath("abcdef") == "abcdef.rwb"

    def test_sharded_placement(self):
        layout = ShardLayout(sharded=True, prefix_len=2)
        assert layout.shard_of("abcdef") == "ab"
        assert layout.weight_rel("abcdef") == "weights/ab/abcdef.rwb"
        assert layout.weight_subpath("abcdef") == "ab/abcdef.rwb"
        assert layout.shard_rel("ab") == "shards/ab.json"

    def test_group_sorts_keys_and_preserves_order(self):
        layout = ShardLayout(sharded=True, prefix_len=1)
        groups = layout.group(["b1", "a2", "b0", "a1"])
        assert list(groups) == ["a", "b"]
        assert groups["a"] == ["a2", "a1"]
        assert groups["b"] == ["b1", "b0"]

    def test_manifest_round_trip(self):
        layout = ShardLayout(sharded=True, prefix_len=3)
        assert ShardLayout.from_manifest(layout.to_manifest()) == layout
        assert ShardLayout.from_manifest(None) is None
        assert ShardLayout.from_manifest({}) is None


class TestShardedSave:
    @pytest.fixture()
    def saved(self, tmp_path):
        lake = small_lake()
        directory = str(tmp_path / "lake")
        save_lake(lake, directory, sharded=True)
        return lake, directory

    def test_blobs_live_under_prefix_dirs(self, saved):
        lake, directory = saved
        for record in lake:
            digest = record.weights_digest
            rel = f"weights/{digest[:DEFAULT_PREFIX_LEN]}/{digest}.rwb"
            assert os.path.exists(os.path.join(directory, rel))

    def test_shard_fragments_cover_all_weights(self, saved):
        lake, directory = saved
        manifest = manifest_of(directory)
        layout = manifest["integrity"]["layout"]
        assert layout["sharded"] is True
        assert layout["version"] == LAYOUT_VERSION
        covered = set()
        for rel in manifest["integrity"]["files"]:
            if rel.startswith("shards/"):
                with open(os.path.join(directory, rel)) as handle:
                    fragment = json.load(handle)
                covered.update(fragment["files"])
        expected = {
            f"weights/{r.weights_digest[:2]}/{r.weights_digest}.rwb"
            for r in lake
        }
        assert covered == expected

    def test_round_trip_restores_everything(self, saved):
        lake, directory = saved
        restored = load_lake(directory)
        assert restored.model_ids() == lake.model_ids()
        assert restored.storage_layout is not None
        assert restored.storage_layout.sharded is True
        for record in lake:
            twin = restored.get_record(record.model_id)
            assert twin.weights_digest == record.weights_digest
            original = lake.get_model(record.model_id, force=True)
            reloaded = restored.get_model(record.model_id, force=True)
            for key, value in original.state_dict().items():
                assert np.array_equal(reloaded.state_dict()[key], value)

    def test_lazy_load_reads_weights_as_memmaps(self, saved):
        lake, directory = saved
        restored = load_lake(directory)
        digest = next(iter(lake)).weights_digest
        arrays = restored.weights.get(digest)
        assert all(not a.flags.writeable for a in arrays.values())

    def test_fsck_clean_sequential_and_parallel(self, saved):
        _, directory = saved
        assert fsck_lake(directory, workers=1).clean
        assert fsck_lake(directory, workers=2).clean

    def test_corrupt_shard_blob_detected(self, saved):
        lake, directory = saved
        digest = next(iter(lake)).weights_digest
        rel = f"weights/{digest[:2]}/{digest}.rwb"
        path = os.path.join(directory, rel)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))

        report = fsck_lake(directory)
        assert rel in {f.path for f in report.findings}
        assert "digest-mismatch" in {f.kind for f in report.findings}

        restored = load_lake(directory)
        with pytest.raises(LakeIntegrityError):
            restored.weights.get(digest)


class TestLayoutIdentity:
    def test_sharded_and_flat_saves_are_digest_identical(self, tmp_path):
        lake = small_lake()
        flat_dir = str(tmp_path / "flat")
        shard_dir = str(tmp_path / "sharded")
        save_lake(lake, flat_dir, sharded=False)
        save_lake(lake, shard_dir, sharded=True)

        flat, sharded = manifest_of(flat_dir), manifest_of(shard_dir)
        assert (
            flat["integrity"]["manifest_digest"]
            == sharded["integrity"]["manifest_digest"]
        )
        assert flat["records"] == sharded["records"]

        # Same blob bytes under either placement.
        for record in lake:
            digest = record.weights_digest
            flat_blob = open(
                os.path.join(flat_dir, "weights", f"{digest}.rwb"), "rb"
            ).read()
            shard_blob = open(
                os.path.join(shard_dir, "weights", digest[:2], f"{digest}.rwb"),
                "rb",
            ).read()
            assert flat_blob == shard_blob

    def test_auto_shard_threshold(self, tmp_path, monkeypatch):
        import repro.lake.persist as persist

        lake = small_lake()
        below = str(tmp_path / "below")
        save_lake(lake, below)  # 8 models < AUTO_SHARD_MIN_MODELS
        assert manifest_of(below)["integrity"]["layout"]["sharded"] is False

        monkeypatch.setattr(persist, "AUTO_SHARD_MIN_MODELS", 4)
        above = str(tmp_path / "above")
        save_lake(lake, above)
        assert manifest_of(above)["integrity"]["layout"]["sharded"] is True

    def test_materialized_load_matches_lazy(self, tmp_path):
        lake = small_lake()
        directory = str(tmp_path / "lake")
        save_lake(lake, directory, sharded=True)
        lazy = load_lake(directory)
        resident = load_lake(directory, materialize=True)
        for record in lake:
            a = lazy.get_model(record.model_id, force=True).state_dict()
            b = resident.get_model(record.model_id, force=True).state_dict()
            assert all(np.array_equal(a[k], b[k]) for k in a)
