"""Tests for layout migration: v1 (pre-shard npz) lakes, half-migrated
directories, and in-place re-sharding round trips."""

import json
import os

import numpy as np
import pytest

from repro.cli import main
from repro.lake import load_lake, migrate_lake, save_lake
from repro.reliability.fsck import fsck_lake
from repro.utils.hashing import bytes_digest
from repro.utils.serialization import arrays_to_bytes

from tests.lake.test_shard import manifest_of, small_lake


@pytest.fixture()
def v1_dir(tmp_path):
    """A hand-built pre-shard (v1) lake: flat npz weight archives, no
    layout key (v1 saves predate the integrity section's layout field).

    Built by down-converting a current save: every rwb bundle is
    rewritten as the npz archive v1 stored, record digests are repointed
    at the npz bytes (v1 digested the archive), and the integrity
    section is dropped — the shape of lakes written before sharding.
    """
    lake = small_lake(seed=9)
    directory = str(tmp_path / "v1-lake")
    save_lake(lake, directory, sharded=False)

    manifest = manifest_of(directory)
    for entry in manifest["records"]:
        v2_digest = entry["weights_digest"]
        state = lake.weights.get(v2_digest)
        blob = arrays_to_bytes({k: np.asarray(v) for k, v in state.items()})
        v1_digest = bytes_digest(blob, length=24)
        with open(
            os.path.join(directory, "weights", f"{v1_digest}.npz"), "wb"
        ) as handle:
            handle.write(blob)
        os.unlink(os.path.join(directory, "weights", f"{v2_digest}.rwb"))
        entry["weights_digest"] = v1_digest
    manifest.pop("integrity")
    with open(os.path.join(directory, "manifest.json"), "w") as handle:
        json.dump(manifest, handle, indent=1)
    return lake, directory


class TestV1Load:
    def test_pre_shard_lake_loads_eagerly(self, v1_dir):
        lake, directory = v1_dir
        restored = load_lake(directory)
        assert restored.storage_layout is None
        assert restored.model_ids() == lake.model_ids()
        for record in lake:
            original = lake.get_model(record.model_id, force=True)
            twin = restored.get_model(record.model_id, force=True)
            for key, value in original.state_dict().items():
                assert np.array_equal(twin.state_dict()[key], value)

    def test_clock_survives_v1_load(self, v1_dir):
        lake, directory = v1_dir
        assert load_lake(directory).clock == lake.clock

    def test_corrupt_v1_archive_detected(self, v1_dir):
        from repro.errors import LakeError

        _, directory = v1_dir
        manifest = manifest_of(directory)
        digest = manifest["records"][0]["weights_digest"]
        path = os.path.join(directory, "weights", f"{digest}.npz")
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        with pytest.raises(LakeError):
            load_lake(directory)


class TestMigrate:
    def test_v1_to_sharded(self, v1_dir):
        lake, directory = v1_dir
        before = {
            record.model_id: lake.get_model(record.model_id, force=True)
            for record in lake
        }
        summary = migrate_lake(directory, sharded=True)
        assert summary["models"] == len(lake)
        assert summary["from_layout"] is None
        assert summary["to_layout"]["sharded"] is True
        # The legacy npz archives are gone and the lake is fully v2.
        leftovers = [
            name
            for name in os.listdir(os.path.join(directory, "weights"))
            if name.endswith(".npz")
        ]
        assert leftovers == []
        assert fsck_lake(directory).clean

        restored = load_lake(directory)
        assert restored.storage_layout.sharded is True
        for model_id, original in before.items():
            twin = restored.get_model(model_id, force=True)
            for key, value in original.state_dict().items():
                assert np.array_equal(twin.state_dict()[key], value)

    def test_reshard_round_trip_preserves_identity(self, tmp_path):
        lake = small_lake()
        directory = str(tmp_path / "lake")
        save_lake(lake, directory, sharded=True)
        digest = manifest_of(directory)["integrity"]["manifest_digest"]

        flat_summary = migrate_lake(directory, sharded=False)
        assert manifest_of(directory)["integrity"]["layout"]["sharded"] is False
        assert manifest_of(directory)["integrity"]["manifest_digest"] == digest
        assert flat_summary["removed_files"] > 0
        assert fsck_lake(directory).clean

        migrate_lake(directory, sharded=True)
        assert manifest_of(directory)["integrity"]["layout"]["sharded"] is True
        assert manifest_of(directory)["integrity"]["manifest_digest"] == digest
        assert fsck_lake(directory).clean

    def test_cli_migrate(self, tmp_path, capsys):
        lake = small_lake()
        directory = str(tmp_path / "lake")
        save_lake(lake, directory, sharded=False)
        assert main(["migrate", "--dir", directory, "--shard"]) == 0
        assert "sharded" in capsys.readouterr().out
        assert load_lake(directory).storage_layout.sharded is True


class TestHalfMigrated:
    def test_fsck_tolerates_stray_other_placement(self, tmp_path):
        """A crash mid-migration leaves both placements' blobs on disk;
        fsck must keep the lake usable and flag the strays as orphans."""
        lake = small_lake()
        directory = str(tmp_path / "lake")
        save_lake(lake, directory, sharded=True)

        digest = next(iter(lake)).weights_digest
        sharded_rel = f"weights/{digest[:2]}/{digest}.rwb"
        stray_rel = f"weights/{digest}.rwb"
        with open(os.path.join(directory, sharded_rel), "rb") as handle:
            blob = handle.read()
        with open(os.path.join(directory, stray_rel), "wb") as handle:
            handle.write(blob)

        report = fsck_lake(directory)
        assert report.ok  # warnings only: the lake still verifies
        orphans = [f.path for f in report.findings if f.kind == "orphaned"]
        assert stray_rel in orphans

        # repair quarantines the stray and leaves a clean lake behind.
        repaired = fsck_lake(directory, repair=True)
        assert repaired.ok
        assert not os.path.exists(os.path.join(directory, stray_rel))
        assert fsck_lake(directory).clean

    def test_load_ignores_stray_files(self, tmp_path):
        lake = small_lake()
        directory = str(tmp_path / "lake")
        save_lake(lake, directory, sharded=True)
        digest = next(iter(lake)).weights_digest
        with open(
            os.path.join(directory, "weights", f"{digest}.rwb"), "wb"
        ) as handle:
            handle.write(b"garbage")
        restored = load_lake(directory)
        model = restored.get_model(restored.model_ids()[0], force=True)
        assert model is not None
