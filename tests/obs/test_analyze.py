"""Offline trace analysis: tree rebuild, critical path, hotspots, flames."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.analyze import (
    TraceSpan,
    analyze_trace,
    folded_stacks,
    load_trace,
    render_report,
)


def make_span(name, span_id, parent_id=None, duration=1.0, **extra):
    return TraceSpan(
        name=name,
        span_id=span_id,
        parent_id=parent_id,
        trace_id=extra.pop("trace_id", 1),
        start_unix=extra.pop("start_unix", 0.0),
        duration=duration,
        status=extra.pop("status", "ok"),
        **extra,
    )


def small_tree():
    """root(4.0) -> [train(2.5) -> epoch(2.0), eval(1.0)]"""
    return [
        make_span("root", 1, duration=4.0),
        make_span("train", 2, parent_id=1, duration=2.5),
        make_span("epoch", 3, parent_id=2, duration=2.0),
        make_span("eval", 4, parent_id=1, duration=1.0),
    ]


class TestLoadTrace:
    def _write(self, tmp_path, lines):
        path = tmp_path / "trace.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return str(path)

    def test_round_trips_exported_records(self, tmp_path):
        record = {
            "name": "op", "span_id": 3, "parent_id": 1, "trace_id": 9,
            "start_unix": 5.0, "duration": 0.25, "status": "ok",
            "attributes": {"k": "v"}, "cpu_time": 0.2, "alloc_peak": 1024,
        }
        path = self._write(tmp_path, [json.dumps(record)])
        (span,) = load_trace(path)
        assert span.name == "op"
        assert span.parent_id == 1
        assert span.trace_id == 9
        assert span.attributes == {"k": "v"}
        assert span.cpu_time == 0.2
        assert span.alloc_peak == 1024

    def test_optional_fields_default(self, tmp_path):
        record = {"name": "op", "span_id": 1, "trace_id": 1, "duration": 0.1}
        path = self._write(tmp_path, [json.dumps(record)])
        (span,) = load_trace(path)
        assert span.parent_id is None
        assert span.status == "ok"
        assert span.cpu_time is None

    def test_blank_lines_are_skipped(self, tmp_path):
        record = {"name": "op", "span_id": 1, "trace_id": 1, "duration": 0.1}
        path = self._write(tmp_path, ["", json.dumps(record), ""])
        assert len(load_trace(path)) == 1

    def test_bad_json_names_the_line(self, tmp_path):
        path = self._write(tmp_path, ["{not json"])
        with pytest.raises(ConfigError, match=r"trace\.jsonl:1"):
            load_trace(path)

    def test_missing_field_names_the_line(self, tmp_path):
        good = {"name": "op", "span_id": 1, "trace_id": 1, "duration": 0.1}
        path = self._write(tmp_path, [json.dumps(good), '{"name": "x"}'])
        with pytest.raises(ConfigError, match=r"trace\.jsonl:2"):
            load_trace(path)


class TestAnalyzeTrace:
    def test_tree_rebuild_and_self_time(self):
        report = analyze_trace(small_tree())
        assert [s.name for s in report.roots] == ["root"]
        by_name = {s.name: s for s in report.spans}
        assert by_name["root"].self_time == pytest.approx(0.5)  # 4 - 2.5 - 1
        assert by_name["train"].self_time == pytest.approx(0.5)  # 2.5 - 2
        assert by_name["epoch"].self_time == pytest.approx(2.0)
        assert report.total_duration == pytest.approx(4.0)
        assert report.span_count == 4
        assert report.trace_count == 1
        assert report.profiled is False

    def test_critical_path_follows_longest_children(self):
        report = analyze_trace(small_tree())
        assert [s.name for s in report.critical_path] == [
            "root", "train", "epoch"
        ]

    def test_hotspots_sorted_by_self_time(self):
        report = analyze_trace(small_tree())
        assert report.operations[0].name == "epoch"
        assert report.operations[0].self_total == pytest.approx(2.0)

    def test_orphans_become_roots(self):
        spans = [make_span("lost", 7, parent_id=999, duration=1.0)]
        report = analyze_trace(spans)
        assert report.roots == spans
        assert report.critical_path == spans

    def test_self_parent_cycle_does_not_hang(self):
        spans = [make_span("selfie", 1, parent_id=1, duration=1.0)]
        report = analyze_trace(spans)
        assert [s.name for s in report.critical_path] == ["selfie"]

    def test_negative_self_time_clamped(self):
        # A child longer than its parent (clock skew) must not produce
        # negative self time.
        spans = [
            make_span("parent", 1, duration=1.0),
            make_span("child", 2, parent_id=1, duration=1.5),
        ]
        report = analyze_trace(spans)
        by_name = {s.name: s for s in report.spans}
        assert by_name["parent"].self_time == 0.0

    def test_aggregates_profile_and_errors(self):
        spans = [
            make_span("op", 1, duration=1.0, cpu_time=0.4, alloc_peak=100),
            make_span("op", 2, duration=2.0, cpu_time=0.6, alloc_peak=300,
                      status="error"),
        ]
        report = analyze_trace(spans)
        assert report.profiled is True
        (op,) = report.operations
        assert op.count == 2
        assert op.errors == 1
        assert op.cpu_total == pytest.approx(1.0)
        assert op.alloc_peak_max == 300
        assert op.mean == pytest.approx(1.5)

    def test_multiple_traces_counted(self):
        spans = [
            make_span("a", 1, duration=1.0, trace_id=1),
            make_span("b", 2, duration=1.0, trace_id=2),
        ]
        report = analyze_trace(spans)
        assert report.trace_count == 2
        assert report.total_duration == pytest.approx(2.0)


class TestFoldedStacks:
    def test_paths_valued_in_self_micros(self):
        lines = folded_stacks(analyze_trace(small_tree()))
        assert "root 500000" in lines
        assert "root;train 500000" in lines
        assert "root;train;epoch 2000000" in lines
        assert "root;eval 1000000" in lines

    def test_identical_paths_merge(self):
        spans = [
            make_span("root", 1, duration=3.0),
            make_span("step", 2, parent_id=1, duration=1.0),
            make_span("step", 3, parent_id=1, duration=1.0),
        ]
        lines = folded_stacks(analyze_trace(spans))
        assert "root;step 2000000" in lines

    def test_zero_self_time_paths_dropped(self):
        spans = [
            make_span("wrapper", 1, duration=1.0),
            make_span("inner", 2, parent_id=1, duration=1.0),
        ]
        lines = folded_stacks(analyze_trace(spans))
        assert lines == ["wrapper;inner 1000000"]


class TestRenderReport:
    def test_plain_report_sections(self):
        text = render_report(analyze_trace(small_tree()))
        assert "trace: 4 span(s), 1 trace(s)" in text
        assert "critical path" in text
        assert "hotspots" in text
        assert "epoch" in text
        assert "cpu" not in text  # not profiled

    def test_profiled_report_adds_cpu_and_peak_columns(self):
        spans = [make_span("op", 1, duration=1.0, cpu_time=0.9,
                           alloc_peak=2048)]
        text = render_report(analyze_trace(spans))
        assert "profiled" in text
        assert "cpu" in text
        assert "2.0KiB" in text

    def test_errors_are_called_out(self):
        spans = [make_span("op", 1, duration=1.0, status="error")]
        text = render_report(analyze_trace(spans))
        assert "[1 error(s)]" in text
