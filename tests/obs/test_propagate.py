"""Cross-process trace propagation: capture, adoption, worker hygiene."""

import threading

import pytest

from repro.obs.propagate import (
    SpanBuffer,
    TraceContext,
    adopt_spans,
    capture_context,
    reset_worker_tracing,
    run_with_capture,
)
from repro.obs.tracing import (
    InMemoryExporter,
    add_exporter,
    clear_exporters,
    profiling_enabled,
    remove_exporter,
    set_enabled,
    set_profiling,
    trace,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_tracing_state():
    clear_exporters()
    set_enabled(False)
    set_profiling(False)
    yield
    clear_exporters()
    set_enabled(False)
    set_profiling(False)


@pytest.fixture()
def exporter():
    return add_exporter(InMemoryExporter())


class TestCaptureContext:
    def test_no_open_span_means_no_context(self):
        assert capture_context() is None

    def test_captures_current_span_and_trace(self, exporter):
        with trace("wave") as span:
            context = capture_context()
        assert context == TraceContext(
            trace_id=span.trace_id, parent_span_id=span.span_id, profiling=False
        )

    def test_captures_profiling_flag(self, exporter):
        set_profiling(True)
        with trace("wave"):
            context = capture_context()
        assert context.profiling is True


class TestRunWithCapture:
    def test_without_context_passes_through(self):
        result, spans = run_with_capture(None, lambda x: x + 1, 41)
        assert result == 42
        assert spans == []
        assert not tracing_enabled()

    def test_buffers_spans_opened_by_the_task(self):
        def task(x):
            with trace("task.outer", x=x):
                with trace("task.inner"):
                    pass
            return x * 2

        context = TraceContext(trace_id=99, parent_span_id=7)
        result, spans = run_with_capture(context, task, 3)
        assert result == 6
        assert [s.name for s in spans] == ["task.inner", "task.outer"]
        # Capture is transient: tracing returns to off afterwards.
        assert not tracing_enabled()

    def test_profiling_flag_extends_into_task(self):
        observed = {}

        def task(_):
            observed["profiling"] = profiling_enabled()
            with trace("task"):
                pass
            return None

        context = TraceContext(trace_id=1, parent_span_id=1, profiling=True)
        _, spans = run_with_capture(context, task, None)
        assert observed["profiling"] is True
        assert not profiling_enabled()
        (span,) = spans
        assert span.cpu_time is not None
        assert span.alloc_peak is not None

    def test_task_exception_still_cleans_up(self):
        context = TraceContext(trace_id=1, parent_span_id=1, profiling=True)

        def boom(_):
            raise ValueError("task failed")

        with pytest.raises(ValueError):
            run_with_capture(context, boom, None)
        assert not tracing_enabled()
        assert not profiling_enabled()


class TestAdoptSpans:
    def _captured(self, context):
        def task(_):
            with trace("outer"):
                with trace("inner"):
                    pass
            return None

        _, spans = run_with_capture(context, task, None)
        return spans

    def test_roots_attach_to_context_parent(self, exporter):
        with trace("wave") as wave:
            context = capture_context()
            spans = self._captured(context)
            adopted = adopt_spans(context, spans)
        by_name = {s.name: s for s in adopted}
        assert by_name["outer"].parent_id == wave.span_id
        assert by_name["inner"].parent_id == by_name["outer"].span_id
        assert all(s.trace_id == wave.trace_id for s in adopted)

    def test_ids_are_remapped_to_fresh_parent_counter_ids(self, exporter):
        with trace("wave") as wave:
            context = capture_context()
            spans = self._captured(context)
            worker_ids = {s.span_id for s in spans}
            adopted = adopt_spans(context, spans)
        adopted_ids = {s.span_id for s in adopted}
        assert adopted_ids.isdisjoint({wave.span_id})
        assert len(adopted_ids) == len(adopted)
        # Remapping replaced every worker-local id.
        assert not (adopted_ids & worker_ids) or min(adopted_ids) > max(worker_ids)

    def test_adopted_spans_reach_exporters_exactly_once(self, exporter):
        # In a pool worker the inherited exporters are cleared, so spans
        # reach the parent's exporters only through adoption.  Detaching
        # the exporter during capture reproduces that environment.
        with trace("wave"):
            context = capture_context()
            remove_exporter(exporter)
            try:
                spans = self._captured(context)
            finally:
                add_exporter(exporter)
            adopt_spans(context, spans)
        names = [s.name for s in exporter.spans()]
        assert names == ["inner", "outer", "wave"]

    def test_orphan_parent_links_fall_back_to_context_parent(self, exporter):
        context = TraceContext(trace_id=5, parent_span_id=50)
        spans = self._captured(context)
        # Simulate a truncated buffer: drop the outer span, keeping the
        # inner one whose parent_id now points nowhere.
        inner_only = [s for s in spans if s.name == "inner"]
        adopted = adopt_spans(context, inner_only)
        (inner,) = adopted
        assert inner.parent_id == 50
        assert inner.trace_id == 5

    def test_adoption_does_not_mutate_the_worker_spans(self, exporter):
        context = TraceContext(trace_id=5, parent_span_id=50)
        spans = self._captured(context)
        before = [(s.span_id, s.parent_id, s.trace_id) for s in spans]
        adopt_spans(context, spans)
        assert [(s.span_id, s.parent_id, s.trace_id) for s in spans] == before


class TestSpanBuffer:
    def test_drain_empties_the_buffer(self):
        buffer = SpanBuffer()
        add_exporter(buffer)
        with trace("a"):
            pass
        assert [s.name for s in buffer.drain()] == ["a"]
        assert buffer.drain() == []

    def test_concurrent_exports_are_all_kept(self):
        buffer = SpanBuffer()
        add_exporter(buffer)

        def worker(index):
            with trace(f"thread{index}"):
                pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(buffer.drain()) == 8


class TestResetWorkerTracing:
    def test_clears_inherited_exporters_and_flags(self):
        add_exporter(InMemoryExporter())
        set_enabled(True)
        set_profiling(True)
        reset_worker_tracing()
        assert not tracing_enabled()
        assert not profiling_enabled()
        with trace("invisible") as span:
            assert span is None
