"""Counters/gauges/histograms: accuracy, thread-safety, lifecycle."""

import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_reset_zeroes_in_place(self):
        counter = Counter()
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge()
        gauge.set(1.5)
        gauge.set(0.25)
        assert gauge.value == 0.25

    def test_reset(self):
        gauge = Gauge()
        gauge.set(9.0)
        gauge.reset()
        assert gauge.value == 0.0


class TestHistogram:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[])
        with pytest.raises(ValueError):
            Histogram(bounds=[2.0, 1.0])

    def test_empty_histogram_quantile_is_none(self):
        histogram = Histogram()
        assert histogram.quantile(0.5) is None
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["mean"] is None
        assert summary["p99"] is None

    def test_quantile_out_of_range_rejected(self):
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.quantile(1.5)

    def test_percentiles_match_numpy_within_bucket_width(self):
        # Fine linear buckets over [0, 100]; estimates must land within
        # one bucket width (1.0) of NumPy's exact percentiles.
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 100.0, size=5000)
        histogram = Histogram(bounds=np.linspace(1.0, 100.0, 100))
        for value in values:
            histogram.observe(float(value))

        for q in (0.50, 0.90, 0.99):
            exact = float(np.quantile(values, q))
            estimate = histogram.quantile(q)
            assert estimate == pytest.approx(exact, abs=1.0), f"q={q}"

    def test_percentiles_on_default_log_buckets(self):
        # Log-normal latencies (seconds): estimates within one geometric
        # bucket of the exact value, i.e. a factor of 10**(1/4).
        rng = np.random.default_rng(11)
        values = np.exp(rng.normal(loc=-7.0, scale=1.0, size=5000))
        histogram = Histogram()
        for value in values:
            histogram.observe(float(value))

        bucket_ratio = 10.0 ** (1.0 / 4.0)
        for q in (0.50, 0.90, 0.99):
            exact = float(np.quantile(values, q))
            estimate = histogram.quantile(q)
            assert exact / bucket_ratio <= estimate <= exact * bucket_ratio

    def test_summary_tracks_exact_moments(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.003):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.006)
        assert summary["mean"] == pytest.approx(0.002)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.003)

    def test_quantile_clamped_to_observed_range(self):
        histogram = Histogram()
        histogram.observe(0.005)
        for q in (0.0, 0.5, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.005)

    def test_default_bounds_cover_microseconds_to_minutes(self):
        assert DEFAULT_BOUNDS[0] == pytest.approx(1e-6)
        assert DEFAULT_BOUNDS[-1] > 60.0


class TestRegistry:
    def test_counter_is_create_or_get(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.counter("a") is not registry.counter("b")

    def test_convenience_recording(self):
        registry = MetricsRegistry()
        registry.inc("requests", 2)
        registry.set_gauge("loss", 0.5)
        registry.observe("latency", 0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["requests"] == 2
        assert snapshot["gauges"]["loss"] == 0.5
        assert snapshot["histograms"]["latency"]["count"] == 1

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 0.25)
        encoded = json.dumps(registry.snapshot())
        decoded = json.loads(encoded)
        assert decoded["counters"]["c"] == 1

    def test_reset_zeroes_but_keeps_instruments_registered(self):
        registry = MetricsRegistry()
        counter = registry.counter("kept")
        counter.inc(5)
        registry.observe("lat", 1.0)
        registry.reset()
        snapshot = registry.snapshot()
        # Instruments survive (cached references stay live) but read zero.
        assert snapshot["counters"] == {"kept": 0}
        assert snapshot["histograms"]["lat"]["count"] == 0
        counter.inc()
        assert registry.counter("kept") is counter
        assert registry.snapshot()["counters"]["kept"] == 1

    def test_global_registry_is_singleton(self):
        assert get_registry() is get_registry()

    def test_concurrent_increments_lose_no_updates(self):
        registry = MetricsRegistry()
        workers, per_worker = 8, 2500

        def hammer(_):
            for _ in range(per_worker):
                registry.inc("shared")
                registry.observe("lat", 0.001)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            list(pool.map(hammer, range(workers)))

        snapshot = registry.snapshot()
        assert snapshot["counters"]["shared"] == workers * per_worker
        assert snapshot["histograms"]["lat"]["count"] == workers * per_worker

    def test_concurrent_create_or_get_returns_one_instrument(self):
        registry = MetricsRegistry()

        with ThreadPoolExecutor(max_workers=8) as pool:
            instruments = list(
                pool.map(lambda _: registry.counter("raced"), range(64))
            )
        first = instruments[0]
        assert all(instrument is first for instrument in instruments)
