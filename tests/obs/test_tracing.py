"""Span hierarchy, enable/disable fast path, and exporter round-trips."""

import json
import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    InMemoryExporter,
    JSONLExporter,
    add_exporter,
    clear_exporters,
    current_span,
    remove_exporter,
    set_enabled,
    trace,
    traced,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_tracing_state():
    clear_exporters()
    set_enabled(False)
    yield
    clear_exporters()
    set_enabled(False)


@pytest.fixture()
def exporter():
    return add_exporter(InMemoryExporter())


class TestSpanHierarchy:
    def test_nested_spans_link_parent_and_trace_ids(self, exporter):
        with trace("outer", layer=1) as outer:
            with trace("inner") as inner:
                pass

        spans = {s.name: s for s in exporter.spans()}
        assert set(spans) == {"outer", "inner"}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        # Both spans share the root's trace id.
        assert spans["inner"].trace_id == spans["outer"].span_id
        assert spans["outer"].trace_id == spans["outer"].span_id
        assert inner is not outer

    def test_children_export_before_parents(self, exporter):
        with trace("parent"):
            with trace("child"):
                pass
        names = [s.name for s in exporter.spans()]
        assert names == ["child", "parent"]

    def test_sibling_spans_share_parent(self, exporter):
        with trace("root"):
            with trace("first"):
                pass
            with trace("second"):
                pass
        spans = {s.name: s for s in exporter.spans()}
        assert spans["first"].parent_id == spans["root"].span_id
        assert spans["second"].parent_id == spans["root"].span_id
        assert spans["first"].span_id != spans["second"].span_id

    def test_current_span_tracks_innermost(self, exporter):
        assert current_span() is None
        with trace("outer"):
            assert current_span().name == "outer"
            with trace("inner"):
                assert current_span().name == "inner"
            assert current_span().name == "outer"
        assert current_span() is None

    def test_exception_marks_span_status_and_propagates(self, exporter):
        with pytest.raises(ValueError):
            with trace("failing"):
                raise ValueError("boom")
        (span,) = exporter.spans()
        assert span.status == "error:ValueError"

    def test_spans_on_separate_threads_get_separate_stacks(self, exporter):
        started = threading.Event()
        release = threading.Event()

        def worker():
            with trace("thread_span"):
                started.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        with trace("main_span"):
            thread.start()
            assert started.wait(timeout=5)
            # The worker's open span must not become our child/parent.
            assert current_span().name == "main_span"
            release.set()
        thread.join(timeout=5)

        spans = {s.name: s for s in exporter.spans()}
        assert spans["thread_span"].parent_id is None
        assert spans["main_span"].parent_id is None


class TestEnableDisable:
    def test_disabled_by_default_records_nothing(self):
        assert not tracing_enabled()
        with trace("invisible") as span:
            assert span is None

    def test_disabled_trace_returns_shared_null_object(self):
        assert trace("a") is trace("b", k=1)

    def test_attaching_exporter_enables_tracing(self):
        assert not tracing_enabled()
        exporter = add_exporter(InMemoryExporter())
        assert tracing_enabled()
        remove_exporter(exporter)
        assert not tracing_enabled()

    def test_set_enabled_forces_on_without_exporters(self):
        set_enabled(True)
        assert tracing_enabled()
        with trace("forced") as span:
            assert span is not None
            assert span.name == "forced"

    def test_span_attributes_and_duration(self, exporter):
        with trace("op", model="m1", k=5) as span:
            span.set_attribute("extra", True)
        (finished,) = exporter.spans()
        assert finished.attributes == {"model": "m1", "k": 5, "extra": True}
        assert finished.duration >= 0.0

    def test_broken_exporter_does_not_break_traced_code(self, exporter):
        class Broken(tracing.SpanExporter):
            def export(self, span):
                raise RuntimeError("sink down")

        broken = add_exporter(Broken())
        try:
            with trace("survives"):
                pass
        finally:
            remove_exporter(broken)
        assert [s.name for s in exporter.spans()] == ["survives"]


class TestTracedDecorator:
    def test_bare_decorator_uses_qualname(self, exporter):
        @traced
        def compute(x):
            return x * 2

        assert compute(21) == 42
        (span,) = exporter.spans()
        assert span.name.endswith("compute")

    def test_named_decorator_with_attributes(self, exporter):
        @traced("custom.op", backend="flat")
        def compute():
            return "ok"

        assert compute() == "ok"
        (span,) = exporter.spans()
        assert span.name == "custom.op"
        assert span.attributes == {"backend": "flat"}

    def test_disabled_decorator_calls_through(self):
        @traced
        def compute():
            return 7

        assert compute() == 7


class TestExporters:
    def test_in_memory_ring_buffer_caps_capacity(self):
        exporter = add_exporter(InMemoryExporter(capacity=3))
        for i in range(5):
            with trace(f"span{i}"):
                pass
        names = [s.name for s in exporter.spans()]
        assert names == ["span2", "span3", "span4"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = add_exporter(JSONLExporter(str(path)))
        try:
            with trace("outer", stage="test"):
                with trace("inner"):
                    pass
        finally:
            remove_exporter(exporter)
            exporter.close()

        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["inner", "outer"]
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["attributes"] == {"stage": "test"}
        for record in records:
            assert record["duration"] >= 0.0
            assert record["status"] == "ok"

    def test_jsonl_export_after_close_is_noop(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JSONLExporter(str(path)) as exporter:
            add_exporter(exporter)
            with trace("before_close"):
                pass
        # Exporter closed but still attached: spans are dropped, not errors.
        with trace("after_close"):
            pass
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["before_close"]
