"""Span hierarchy, enable/disable fast path, and exporter round-trips."""

import json
import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import (
    InMemoryExporter,
    JSONLExporter,
    add_exporter,
    clear_exporters,
    current_span,
    remove_exporter,
    set_enabled,
    set_profiling,
    trace,
    traced,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_tracing_state():
    clear_exporters()
    set_enabled(False)
    set_profiling(False)
    yield
    clear_exporters()
    set_enabled(False)
    set_profiling(False)


@pytest.fixture()
def exporter():
    return add_exporter(InMemoryExporter())


class TestSpanHierarchy:
    def test_nested_spans_link_parent_and_trace_ids(self, exporter):
        with trace("outer", layer=1) as outer:
            with trace("inner") as inner:
                pass

        spans = {s.name: s for s in exporter.spans()}
        assert set(spans) == {"outer", "inner"}
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["outer"].parent_id is None
        # Both spans share the root's trace id.
        assert spans["inner"].trace_id == spans["outer"].span_id
        assert spans["outer"].trace_id == spans["outer"].span_id
        assert inner is not outer

    def test_children_export_before_parents(self, exporter):
        with trace("parent"):
            with trace("child"):
                pass
        names = [s.name for s in exporter.spans()]
        assert names == ["child", "parent"]

    def test_sibling_spans_share_parent(self, exporter):
        with trace("root"):
            with trace("first"):
                pass
            with trace("second"):
                pass
        spans = {s.name: s for s in exporter.spans()}
        assert spans["first"].parent_id == spans["root"].span_id
        assert spans["second"].parent_id == spans["root"].span_id
        assert spans["first"].span_id != spans["second"].span_id

    def test_current_span_tracks_innermost(self, exporter):
        assert current_span() is None
        with trace("outer"):
            assert current_span().name == "outer"
            with trace("inner"):
                assert current_span().name == "inner"
            assert current_span().name == "outer"
        assert current_span() is None

    def test_exception_marks_span_status_and_propagates(self, exporter):
        with pytest.raises(ValueError):
            with trace("failing"):
                raise ValueError("boom")
        (span,) = exporter.spans()
        assert span.status == "error:ValueError"

    def test_spans_on_separate_threads_get_separate_stacks(self, exporter):
        started = threading.Event()
        release = threading.Event()

        def worker():
            with trace("thread_span"):
                started.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        with trace("main_span"):
            thread.start()
            assert started.wait(timeout=5)
            # The worker's open span must not become our child/parent.
            assert current_span().name == "main_span"
            release.set()
        thread.join(timeout=5)

        spans = {s.name: s for s in exporter.spans()}
        assert spans["thread_span"].parent_id is None
        assert spans["main_span"].parent_id is None


class TestEnableDisable:
    def test_disabled_by_default_records_nothing(self):
        assert not tracing_enabled()
        with trace("invisible") as span:
            assert span is None

    def test_disabled_trace_returns_shared_null_object(self):
        assert trace("a") is trace("b", k=1)

    def test_attaching_exporter_enables_tracing(self):
        assert not tracing_enabled()
        exporter = add_exporter(InMemoryExporter())
        assert tracing_enabled()
        remove_exporter(exporter)
        assert not tracing_enabled()

    def test_set_enabled_forces_on_without_exporters(self):
        set_enabled(True)
        assert tracing_enabled()
        with trace("forced") as span:
            assert span is not None
            assert span.name == "forced"

    def test_span_attributes_and_duration(self, exporter):
        with trace("op", model="m1", k=5) as span:
            span.set_attribute("extra", True)
        (finished,) = exporter.spans()
        assert finished.attributes == {"model": "m1", "k": 5, "extra": True}
        assert finished.duration >= 0.0

    def test_broken_exporter_does_not_break_traced_code(self, exporter):
        class Broken(tracing.SpanExporter):
            def export(self, span):
                raise RuntimeError("sink down")

        broken = add_exporter(Broken())
        try:
            with trace("survives"):
                pass
        finally:
            remove_exporter(broken)
        assert [s.name for s in exporter.spans()] == ["survives"]


class TestTracedDecorator:
    def test_bare_decorator_uses_qualname(self, exporter):
        @traced
        def compute(x):
            return x * 2

        assert compute(21) == 42
        (span,) = exporter.spans()
        assert span.name.endswith("compute")

    def test_named_decorator_with_attributes(self, exporter):
        @traced("custom.op", backend="flat")
        def compute():
            return "ok"

        assert compute() == "ok"
        (span,) = exporter.spans()
        assert span.name == "custom.op"
        assert span.attributes == {"backend": "flat"}

    def test_disabled_decorator_calls_through(self):
        @traced
        def compute():
            return 7

        assert compute() == 7


class TestExporters:
    def test_in_memory_ring_buffer_caps_capacity(self):
        exporter = add_exporter(InMemoryExporter(capacity=3))
        for i in range(5):
            with trace(f"span{i}"):
                pass
        names = [s.name for s in exporter.spans()]
        assert names == ["span2", "span3", "span4"]

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = add_exporter(JSONLExporter(str(path)))
        try:
            with trace("outer", stage="test"):
                with trace("inner"):
                    pass
        finally:
            remove_exporter(exporter)
            exporter.close()

        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["inner", "outer"]
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["attributes"] == {"stage": "test"}
        for record in records:
            assert record["duration"] >= 0.0
            assert record["status"] == "ok"

    def test_jsonl_export_after_close_is_noop(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JSONLExporter(str(path)) as exporter:
            add_exporter(exporter)
            with trace("before_close"):
                pass
        # Exporter closed but still attached: spans are dropped, not errors.
        with trace("after_close"):
            pass
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["before_close"]

class TestProfiling:
    def test_profiled_span_records_cpu_and_alloc(self, exporter):
        set_profiling(True)
        with trace("work"):
            blob = [0] * 100_000
            del blob
        (span,) = exporter.spans()
        assert span.cpu_time is not None and span.cpu_time >= 0.0
        # A 100k-element list costs several hundred KiB at peak...
        assert span.alloc_peak > 100_000
        # ...but it was freed, so the net allocation is far below peak.
        assert span.alloc_net < span.alloc_peak

    def test_unprofiled_span_leaves_fields_unset(self, exporter):
        with trace("work"):
            pass
        (span,) = exporter.spans()
        assert span.cpu_time is None
        assert span.alloc_peak is None
        assert span.alloc_net is None
        assert "cpu_time" not in span.to_dict()

    def test_child_peak_propagates_to_parent(self, exporter):
        set_profiling(True)
        with trace("parent"):
            with trace("child"):
                blob = [0] * 200_000
                del blob
        spans = {s.name: s for s in exporter.spans()}
        # The child's allocation happened on the parent's watch too.
        assert spans["parent"].alloc_peak >= spans["child"].alloc_peak

    def test_sibling_segments_do_not_inherit_each_others_peak(self, exporter):
        set_profiling(True)
        with trace("parent"):
            with trace("fat"):
                blob = [0] * 200_000
                del blob
            with trace("thin"):
                pass
        spans = {s.name: s for s in exporter.spans()}
        assert spans["thin"].alloc_peak < spans["fat"].alloc_peak

    def test_profile_fields_survive_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        set_profiling(True)
        with JSONLExporter(str(path)) as jsonl:
            add_exporter(jsonl)
            with trace("work"):
                blob = [0] * 50_000
                del blob
        (record,) = [json.loads(l) for l in path.read_text().splitlines()]
        assert record["cpu_time"] >= 0.0
        assert record["alloc_peak"] > 0

    def test_set_profiling_respects_foreign_tracemalloc(self):
        import tracemalloc

        tracemalloc.start()
        try:
            set_profiling(True)
            set_profiling(False)
            # We did not start tracemalloc, so we must not stop it.
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class _AlwaysBroken(tracing.SpanExporter):
    def export(self, span):
        raise RuntimeError("sink down")


class TestExportErrors:
    def test_export_failure_bumps_counter_per_span(self, exporter):
        from repro.obs import metrics as obs_metrics
        from repro.obs.tracing import OBS_EXPORT_ERRORS

        counter = obs_metrics.get_registry().counter(OBS_EXPORT_ERRORS)
        before = counter.value
        broken = add_exporter(_AlwaysBroken())
        try:
            with trace("one"):
                pass
            with trace("two"):
                pass
        finally:
            remove_exporter(broken)
        assert counter.value == before + 2

    def test_export_failure_warns_once_per_exporter(self, exporter):
        import logging

        class _Capture(logging.Handler):
            def __init__(self):
                super().__init__(level=logging.WARNING)
                self.records = []

            def emit(self, record):
                self.records.append(record)

        capture = _Capture()
        logger = logging.getLogger("repro.obs.tracing")
        logger.addHandler(capture)
        broken = add_exporter(_AlwaysBroken())
        try:
            for name in ("one", "two", "three"):
                with trace(name):
                    pass
        finally:
            remove_exporter(broken)
            logger.removeHandler(capture)
        warnings = [
            r for r in capture.records if "span.export_failed" in r.getMessage()
        ]
        assert len(warnings) == 1
        # Healthy exporters still received every span.
        assert [s.name for s in exporter.spans()] == ["one", "two", "three"]


class TestConcurrentThreads:
    """The tracing satellite: spans under thread concurrency."""

    THREADS = 8
    DEPTH = 3

    def _run_threads(self):
        barrier = threading.Barrier(self.THREADS)
        errors = []

        def worker(index):
            try:
                barrier.wait(timeout=10)
                with trace(f"outer-{index}", thread=index):
                    for level in range(self.DEPTH):
                        with trace(f"level{level}-{index}"):
                            pass
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []

    def test_span_trees_stay_per_thread(self, exporter):
        self._run_threads()
        spans = exporter.spans()
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            suffix = span.name.rsplit("-", 1)[1]
            if span.parent_id is None:
                assert span.name.startswith("outer-")
            else:
                parent = by_id[span.parent_id]
                # A span's parent always belongs to the same thread.
                assert parent.name.endswith(f"-{suffix}")
                assert parent.trace_id == span.trace_id
        roots = [s for s in spans if s.parent_id is None]
        assert len(roots) == self.THREADS
        assert len({s.trace_id for s in roots}) == self.THREADS

    def test_every_span_exported_exactly_once(self, exporter):
        self._run_threads()
        spans = exporter.spans()
        assert len(spans) == self.THREADS * (1 + self.DEPTH)
        # Unique ids and unique (name) occurrences: nothing doubled.
        assert len({s.span_id for s in spans}) == len(spans)
        names = [s.name for s in spans]
        assert len(set(names)) == len(names)

    def test_concurrent_profiling_keeps_fields_sane(self, exporter):
        set_profiling(True)
        self._run_threads()
        for span in exporter.spans():
            assert span.cpu_time is not None
            assert span.alloc_peak is not None and span.alloc_peak >= 0
