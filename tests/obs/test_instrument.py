"""End-to-end: the instrumented hot paths actually emit spans/metrics."""

import pytest

from repro.core.search import SearchEngine
from repro.obs import InMemoryExporter, add_exporter, remove_exporter
from repro.obs.instrument import (
    HNSW_DISTANCE_COMPS,
    LAKE_GENERATED_MODELS,
    SEARCH_LATENCY,
    SEARCH_QUERIES,
    TRAIN_EPOCHS,
    WEIGHT_STORE_CACHE_HITS,
    WEIGHT_STORE_CACHE_MISSES,
    time_block,
    timed,
)
from repro.obs.metrics import get_registry


@pytest.fixture()
def exporter():
    exporter = add_exporter(InMemoryExporter())
    yield exporter
    remove_exporter(exporter)


def _counters():
    return get_registry().snapshot()["counters"]


class TestSearchInstrumentation:
    def test_search_records_counters_latency_and_spans(
        self, lake_bundle, probes, exporter
    ):
        engine = SearchEngine(lake_bundle.lake, probes)
        before = _counters()[SEARCH_QUERIES]
        latency_before = get_registry().histogram(SEARCH_LATENCY).count

        engine.search("legal court documents", k=3, method="hybrid")

        assert _counters()[SEARCH_QUERIES] == before + 1
        assert get_registry().histogram(SEARCH_LATENCY).count == latency_before + 1

        spans = {s.name: s for s in exporter.spans()}
        assert "search.query" in spans
        assert "search.hybrid" in spans
        # The hybrid fusion span runs inside the query span.
        assert spans["search.hybrid"].parent_id == spans["search.query"].span_id
        assert spans["search.query"].attributes["method"] == "hybrid"


class TestLakeInstrumentation:
    def test_generation_counts_models_and_weight_store_traffic(self):
        from repro.lake import LakeSpec, generate_lake

        registry = get_registry()
        generated_before = registry.counter(LAKE_GENERATED_MODELS).value
        epochs_before = registry.counter(TRAIN_EPOCHS).value

        spec = LakeSpec(
            num_foundations=1, chains_per_foundation=2, max_chain_depth=1,
            docs_per_domain=10, foundation_epochs=2, specialize_epochs=2,
            num_merges=0, num_stitches=0, seed=19,
        )
        bundle = generate_lake(spec)

        counters = _counters()
        assert (
            counters[LAKE_GENERATED_MODELS] - generated_before
            == bundle.num_models
        )
        assert counters[TRAIN_EPOCHS] > epochs_before

    def test_weight_store_cache_hit_and_miss_paths(self, tmp_path):
        import numpy as np

        from repro.lake.store import WeightStore

        store = WeightStore(directory=str(tmp_path))
        state = {"w": np.ones((3, 3)), "b": np.zeros(3)}
        digest = store.put(state)
        registry = get_registry()

        hits_before = registry.counter(WEIGHT_STORE_CACHE_HITS).value
        store.get(digest)
        assert registry.counter(WEIGHT_STORE_CACHE_HITS).value == hits_before + 1

        # Dropping the in-memory copy forces the disk path: a miss.
        store._blobs.clear()
        misses_before = registry.counter(WEIGHT_STORE_CACHE_MISSES).value
        store.get(digest)
        assert (
            registry.counter(WEIGHT_STORE_CACHE_MISSES).value == misses_before + 1
        )

    def test_weight_store_preregisters_both_cache_counters(self):
        from repro.lake.store import WeightStore

        registry = get_registry()
        WeightStore()
        counters = registry.snapshot()["counters"]
        assert WEIGHT_STORE_CACHE_HITS in counters
        assert WEIGHT_STORE_CACHE_MISSES in counters


class TestHNSWInstrumentation:
    def test_distance_computations_counted(self, exporter):
        import numpy as np

        from repro.index.hnsw import HNSWIndex

        rng = np.random.default_rng(0)
        index = HNSWIndex(seed=0)
        for i in range(12):
            index.add(f"m{i}", rng.normal(size=8))

        global_before = _counters()[HNSW_DISTANCE_COMPS]
        index.query(rng.normal(size=8), k=3)
        assert index.distance_computations > 0
        assert _counters()[HNSW_DISTANCE_COMPS] > global_before
        assert index.stats()["distance_computations"] == index.distance_computations

        names = {s.name for s in exporter.spans()}
        assert {"index.hnsw.insert", "index.hnsw.query"} <= names


class TestTimedHelpers:
    def test_timed_decorator_records_histogram_and_counter(self):
        registry = get_registry()

        @timed("test.timed.seconds", counter_name="test.timed.calls")
        def work(x):
            return x + 1

        calls_before = registry.counter("test.timed.calls").value
        count_before = registry.histogram("test.timed.seconds").count
        assert work(1) == 2
        assert registry.counter("test.timed.calls").value == calls_before + 1
        assert registry.histogram("test.timed.seconds").count == count_before + 1

    def test_time_block_records_duration(self):
        registry = get_registry()
        count_before = registry.histogram("test.block.seconds").count
        with time_block("test.block.seconds"):
            pass
        assert registry.histogram("test.block.seconds").count == count_before + 1
