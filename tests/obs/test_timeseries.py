"""Schema-versioned bench results, trajectory files, regression gate."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.timeseries import (
    BASELINE_WINDOW,
    SCHEMA_VERSION,
    BenchResult,
    append_result,
    check_regression,
    load_trajectory,
    metric_direction,
    trajectory_path,
)


def result(metrics, mode="smoke", cpu_count=1, bench="example"):
    return BenchResult(
        bench=bench,
        mode=mode,
        metrics=metrics,
        host={"cpu_count": cpu_count, "platform": "linux",
              "machine": "x86_64", "python": "3.11.7"},
        recorded_at="2026-08-06T00:00:00+0000",
    )


class TestMetricDirection:
    @pytest.mark.parametrize("name", [
        "generate_seconds", "query_latency_us", "p99_ms", "alloc_peak",
        "resident_bytes",
    ])
    def test_lower_is_better(self, name):
        assert metric_direction(name) == "lower"

    @pytest.mark.parametrize("name", [
        "warm_speedup", "models_per_second", "throughput", "recall_at_10",
    ])
    def test_higher_is_better(self, name):
        assert metric_direction(name) == "higher"

    @pytest.mark.parametrize("name", ["models", "indexed_vectors", "queries"])
    def test_scale_facts_are_untracked(self, name):
        assert metric_direction(name) is None


class TestBenchResultSchema:
    def test_round_trip(self):
        original = result({"generate_seconds": 1.5})
        restored = BenchResult.from_dict(original.to_dict())
        assert restored == original

    def test_recorded_at_stamped_when_missing(self):
        stamped = BenchResult(bench="b", mode="smoke", metrics={})
        assert stamped.recorded_at  # auto-filled, not empty

    def test_unknown_schema_version_rejected(self):
        record = result({"x_seconds": 1.0}).to_dict()
        record["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ConfigError, match="schema_version"):
            BenchResult.from_dict(record)

    def test_missing_field_rejected(self):
        record = result({"x_seconds": 1.0}).to_dict()
        del record["metrics"]
        with pytest.raises(ConfigError, match="metrics"):
            BenchResult.from_dict(record)


class TestTrajectoryStorage:
    def test_empty_history_for_unknown_bench(self, tmp_path):
        assert load_trajectory(str(tmp_path), "never-ran") == []

    def test_append_then_load_round_trips(self, tmp_path):
        results_dir = str(tmp_path)
        first = result({"generate_seconds": 1.0})
        second = result({"generate_seconds": 1.1})
        append_result(results_dir, first)
        path = append_result(results_dir, second)
        assert path == trajectory_path(results_dir, "example")
        history = load_trajectory(results_dir, "example")
        assert history == [first, second]

    def test_trajectory_document_is_schema_versioned(self, tmp_path):
        results_dir = str(tmp_path)
        append_result(results_dir, result({"x_seconds": 1.0}))
        with open(trajectory_path(results_dir, "example")) as handle:
            document = json.load(handle)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["bench"] == "example"
        assert len(document["entries"]) == 1

    def test_unversioned_trajectory_rejected(self, tmp_path):
        path = trajectory_path(str(tmp_path), "legacy")
        path_dir = tmp_path / "trajectory"
        path_dir.mkdir()
        with open(path, "w") as handle:
            json.dump({"entries": []}, handle)
        with pytest.raises(ConfigError, match="schema_version"):
            load_trajectory(str(tmp_path), "legacy")

    def test_benches_get_separate_files(self, tmp_path):
        results_dir = str(tmp_path)
        append_result(results_dir, result({"a_seconds": 1.0}, bench="one"))
        append_result(results_dir, result({"b_seconds": 2.0}, bench="two"))
        assert len(load_trajectory(results_dir, "one")) == 1
        assert len(load_trajectory(results_dir, "two")) == 1


class TestCheckRegression:
    def test_no_history_passes_with_no_baseline(self):
        report = check_regression(result({"run_seconds": 1.0}), [])
        assert report.passed
        (check,) = report.checks
        assert check.status == "no-baseline"

    def test_steady_metric_is_ok(self):
        history = [result({"run_seconds": 1.0}) for _ in range(3)]
        report = check_regression(result({"run_seconds": 1.1}), history)
        assert report.passed
        assert report.checks[0].status == "ok"

    def test_lower_is_better_regression_fails(self):
        history = [result({"run_seconds": 1.0}) for _ in range(3)]
        report = check_regression(result({"run_seconds": 2.0}), history)
        assert not report.passed
        (check,) = report.regressions
        assert check.metric == "run_seconds"
        assert check.ratio == pytest.approx(2.0)

    def test_higher_is_better_regression_fails(self):
        history = [result({"throughput": 100.0}) for _ in range(3)]
        report = check_regression(result({"throughput": 40.0}), history)
        assert not report.passed

    def test_improvement_is_reported_not_failed(self):
        history = [result({"run_seconds": 2.0}) for _ in range(3)]
        report = check_regression(result({"run_seconds": 1.0}), history)
        assert report.passed
        assert report.checks[0].status == "improved"

    def test_untracked_metrics_never_gate(self):
        history = [result({"models": 10.0})]
        report = check_regression(result({"models": 1.0}), history)
        assert report.passed
        assert report.checks[0].status == "untracked"

    def test_baseline_is_median_of_window(self):
        timings = [1.0, 1.0, 1.0, 50.0, 1.0, 1.0, 1.0]
        history = [result({"run_seconds": value}) for value in timings]
        report = check_regression(result({"run_seconds": 1.2}), history)
        # Window keeps the last 5 entries: [1, 50, 1, 1, 1] -> median 1.
        assert report.baseline_count == BASELINE_WINDOW
        assert report.checks[0].baseline == pytest.approx(1.0)
        assert report.passed

    def test_other_modes_and_hosts_excluded_from_baseline(self):
        history = [
            result({"run_seconds": 0.1}, mode="full"),
            result({"run_seconds": 0.1}, cpu_count=16),
        ]
        report = check_regression(result({"run_seconds": 1.0}), history)
        assert report.baseline_count == 0
        assert report.checks[0].status == "no-baseline"

    def test_noise_floor_absorbs_tiny_absolute_moves(self):
        # 10ms -> 24ms is x2.4 but only 14ms absolute: scheduler noise.
        history = [result({"cold_build_seconds": 0.010}) for _ in range(3)]
        report = check_regression(result({"cold_build_seconds": 0.024}), history)
        assert report.passed
        assert report.checks[0].status == "ok"

    def test_noise_floor_does_not_mask_large_moves(self):
        history = [result({"cold_build_seconds": 0.2}) for _ in range(3)]
        report = check_regression(result({"cold_build_seconds": 0.5}), history)
        assert not report.passed

    def test_per_metric_tolerance_overrides_default(self):
        history = [result({"warm_speedup": 10.0}) for _ in range(3)]
        # x0.70 is below the default gate (1/1.25 = 0.8)...
        strict = check_regression(result({"warm_speedup": 7.0}), history)
        assert not strict.passed
        # ...but within a per-metric tolerance of 2.0 (gate at 0.5).
        lax = check_regression(
            result({"warm_speedup": 7.0}), history, tolerances={"warm_speedup": 2.0}
        )
        assert lax.passed

    def test_zero_baseline_is_handled(self):
        history = [result({"run_seconds": 0.0})]
        report = check_regression(result({"run_seconds": 0.0}), history)
        assert report.checks[0].ratio == pytest.approx(1.0)
        assert report.passed

    def test_report_text_names_verdicts(self):
        history = [result({"run_seconds": 1.0}) for _ in range(3)]
        report = check_regression(result({"run_seconds": 2.0}), history)
        text = report.to_text()
        assert "run_seconds" in text
        assert "regressed" in text
        assert "x2.00" in text
