"""Structured logging output formats and configuration idempotency."""

import io
import json
import logging

import pytest

from repro.obs.logging import StructuredLogger, configure, get_logger


@pytest.fixture(autouse=True)
def _restore_logging():
    yield
    configure("WARNING")


def _capture(level="INFO", as_json=False):
    stream = io.StringIO()
    configure(level, json=as_json, stream=stream)
    return stream


class TestKeyValueFormat:
    def test_event_with_fields(self):
        stream = _capture()
        log = get_logger("search.engine")
        log.info("query.completed", method="hybrid", k=5)
        assert stream.getvalue().strip() == (
            "repro.search.engine query.completed method=hybrid k=5"
        )

    def test_values_with_spaces_are_quoted(self):
        stream = _capture()
        get_logger("lake").info("model.added", name="my model v2")
        assert "name='my model v2'" in stream.getvalue()

    def test_level_filtering(self):
        stream = _capture(level="WARNING")
        log = get_logger("x")
        log.info("hidden")
        log.warning("shown", code=3)
        output = stream.getvalue()
        assert "hidden" not in output
        assert "repro.x shown code=3" in output


class TestJsonFormat:
    def test_records_are_valid_json(self):
        stream = _capture(as_json=True)
        get_logger("index.hnsw").info("build.done", nodes=64, layers=3)
        record = json.loads(stream.getvalue())
        assert record == {
            "logger": "repro.index.hnsw",
            "level": "info",
            "event": "build.done",
            "fields": {"nodes": 64, "layers": 3},
        }

    def test_fieldless_record_omits_fields_key(self):
        stream = _capture(as_json=True)
        get_logger("x").warning("standalone")
        record = json.loads(stream.getvalue())
        assert "fields" not in record
        assert record["level"] == "warning"


class TestConfiguration:
    def test_configure_is_idempotent_no_duplicate_handlers(self):
        stream = _capture()
        _capture()  # reconfigure; must replace, not stack
        stream = _capture()
        get_logger("y").info("once")
        assert stream.getvalue().count("once") == 1
        assert len(logging.getLogger("repro").handlers) == 1

    def test_repro_logger_does_not_propagate_to_root(self):
        configure("INFO", stream=io.StringIO())
        assert logging.getLogger("repro").propagate is False

    def test_get_logger_prefixes_namespace(self):
        assert get_logger("search").raw.name == "repro.search"
        assert get_logger("repro.search").raw.name == "repro.search"
        assert get_logger("repro").raw.name == "repro"
        assert isinstance(get_logger("search"), StructuredLogger)
