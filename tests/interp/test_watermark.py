"""Tests for generation watermarking."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.interp import (
    WatermarkConfig,
    detect_watermark,
    generate_watermarked,
)
from repro.nn import TransformerLM


@pytest.fixture(scope="module")
def lm():
    return TransformerLM(
        vocab_size=60, d_model=16, num_heads=2, num_layers=1,
        max_seq_len=32, seed=0,
    )


class TestWatermark:
    def test_watermarked_text_detected(self, lm):
        config = WatermarkConfig(gamma=0.5, delta=6.0, key=7)
        rng = np.random.default_rng(0)
        tokens = generate_watermarked(lm, np.array([1, 2]), 60, rng, config=config)
        result = detect_watermark(tokens, lm.vocab_size, config=config)
        assert result.z_score > 3.0
        assert result.is_watermarked()

    def test_unwatermarked_text_not_flagged(self, lm):
        config = WatermarkConfig(gamma=0.5, delta=6.0, key=7)
        rng = np.random.default_rng(1)
        tokens = lm.generate(np.array([1, 2]), 60, rng)
        result = detect_watermark(tokens, lm.vocab_size, config=config)
        assert result.z_score < 3.0

    def test_wrong_key_fails_detection(self, lm):
        config = WatermarkConfig(gamma=0.5, delta=6.0, key=7)
        wrong = WatermarkConfig(gamma=0.5, delta=6.0, key=8)
        rng = np.random.default_rng(2)
        tokens = generate_watermarked(lm, np.array([1, 2]), 60, rng, config=config)
        result = detect_watermark(tokens, lm.vocab_size, config=wrong)
        assert result.z_score < 3.0

    def test_stronger_delta_stronger_signal(self, lm):
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        weak = generate_watermarked(
            lm, np.array([1, 2]), 50, rng_a,
            config=WatermarkConfig(delta=1.0, key=7),
        )
        strong = generate_watermarked(
            lm, np.array([1, 2]), 50, rng_b,
            config=WatermarkConfig(delta=8.0, key=7),
        )
        z_weak = detect_watermark(weak, lm.vocab_size, WatermarkConfig(key=7)).z_score
        z_strong = detect_watermark(strong, lm.vocab_size, WatermarkConfig(key=7)).z_score
        assert z_strong > z_weak

    def test_validation(self):
        with pytest.raises(ConfigError):
            WatermarkConfig(gamma=0.0).validate()
        with pytest.raises(ConfigError):
            WatermarkConfig(delta=-1.0).validate()
        with pytest.raises(ConfigError):
            detect_watermark([1], 60)

    def test_green_fraction_counted(self, lm):
        config = WatermarkConfig(gamma=0.5, key=7)
        result = detect_watermark([1, 2, 3, 4, 5], lm.vocab_size, config=config)
        assert 0.0 <= result.green_fraction <= 1.0
        assert result.num_scored == 4
