"""Tests for probing classifiers."""

import numpy as np
import pytest

from repro.data import make_lm_sequences
from repro.errors import ConfigError
from repro.interp import probe_classifier_representation, probe_lm_layers
from repro.nn import TransformerLM, train_language_model


class TestClassifierProbe:
    def test_trained_representation_decodable(self, foundation_model, broad_dataset):
        result = probe_classifier_representation(
            foundation_model, broad_dataset.tokens, broad_dataset.labels, seed=0
        )
        assert result.test_accuracy > 0.5  # far above 1/8 chance

    def test_rejects_model_without_embed_tokens(self, broad_dataset):
        from repro.nn import MLPClassifier

        with pytest.raises(ConfigError):
            probe_classifier_representation(
                MLPClassifier(4, 2, seed=0), broad_dataset.tokens, broad_dataset.labels
            )


class TestLMProbes:
    @pytest.fixture(scope="class")
    def trained_lm(self, tokenizer):
        dataset = make_lm_sequences(
            ["legal", "medical", "news"], 25, seq_len=16, seed=111,
            tokenizer=tokenizer,
        )
        lm = TransformerLM(
            vocab_size=tokenizer.vocab_size, d_model=16, num_heads=2,
            num_layers=2, max_seq_len=16, seed=0,
        )
        train_language_model(lm, dataset.tokens, epochs=3, batch_size=16, seed=0)
        return lm, dataset

    def test_one_result_per_site(self, trained_lm):
        lm, dataset = trained_lm
        results = probe_lm_layers(lm, dataset.tokens, dataset.labels, seed=0)
        assert len(results) == lm.num_layers + 1
        assert results[0].site == "embed"
        assert results[-1].site == f"block_{lm.num_layers - 1}"

    def test_domain_decodable_somewhere(self, trained_lm):
        lm, dataset = trained_lm
        results = probe_lm_layers(lm, dataset.tokens, dataset.labels, seed=0)
        best = max(r.test_accuracy for r in results)
        assert best > 1.0 / 3 + 0.1  # clearly above chance for 3 domains
