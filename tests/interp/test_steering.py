"""Tests for representation steering."""

import numpy as np
import pytest

from repro.core.attribution import extract_concept_direction
from repro.data import domain_index
from repro.errors import ConfigError
from repro.interp import dose_response, steer


@pytest.fixture(scope="module")
def steering_setup(foundation_model, broad_dataset):
    domains = np.asarray(broad_dataset.domains)
    legal = broad_dataset.tokens[domains == "legal"]
    medical = broad_dataset.tokens[domains == "medical"]
    direction = extract_concept_direction(
        foundation_model, legal, medical, concept="legal"
    )
    return foundation_model, medical, direction


class TestSteer:
    def test_positive_steering_raises_target_probability(self, steering_setup):
        model, medical_inputs, direction = steering_setup
        target = domain_index("legal")
        result = steer(model, medical_inputs, direction, strength=1.0,
                       target_class=target)
        assert result.shift > 0

    def test_negative_steering_suppresses(self, steering_setup):
        model, medical_inputs, direction = steering_setup
        target = domain_index("legal")
        result = steer(model, medical_inputs, direction, strength=-1.0,
                       target_class=target)
        assert result.shift <= 1e-9

    def test_strong_steering_flips_predictions(self, steering_setup):
        model, medical_inputs, direction = steering_setup
        result = steer(model, medical_inputs, direction, strength=3.0,
                       target_class=domain_index("legal"))
        assert result.flip_rate > 0.5
        legal = domain_index("legal")
        assert (result.steered_predictions == legal).mean() > 0.5

    def test_zero_strength_is_identity(self, steering_setup):
        model, medical_inputs, direction = steering_setup
        result = steer(model, medical_inputs, direction, strength=0.0,
                       target_class=domain_index("legal"))
        assert np.array_equal(result.base_predictions, result.steered_predictions)
        assert abs(result.shift) < 1e-12

    def test_requires_compatible_model(self, steering_setup, broad_dataset):
        from repro.nn import MLPClassifier

        _, _, direction = steering_setup
        with pytest.raises(ConfigError):
            steer(MLPClassifier(4, 2, seed=0), broad_dataset.tokens[:2],
                  direction, 1.0)


class TestDoseResponse:
    def test_monotone_curve(self, steering_setup):
        """A real concept direction shows monotone dose-response."""
        model, medical_inputs, direction = steering_setup
        curve = dose_response(
            model, medical_inputs, direction,
            target_class=domain_index("legal"),
            strengths=[-2.0, 0.0, 2.0],
        )
        assert curve[-2.0] <= curve[0.0] <= curve[2.0]
