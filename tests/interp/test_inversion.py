"""Tests for representation inversion."""

import numpy as np
import pytest

from repro.data import get_domain
from repro.errors import ConfigError
from repro.interp import invert_input_tokens, invert_pooled_embedding


class TestInversion:
    def test_recovers_domain_vocabulary(
        self, foundation_model, broad_dataset, vocabulary
    ):
        """Inverted tokens should leak the input's domain vocabulary."""
        domains = np.asarray(broad_dataset.domains)
        legal_input = broad_dataset.tokens[domains == "legal"][0]
        result, leak = invert_input_tokens(
            foundation_model, legal_input, max_tokens=8
        )
        assert leak > 0.2
        # Most recovered content tokens should be legal-domain words.
        legal_ids = {
            vocabulary.id_of(w) for w in get_domain("legal").content_words()
        }
        cooking_ids = {
            vocabulary.id_of(w) for w in get_domain("cooking").content_words()
        }
        legal_hits = sum(1 for t in result.token_ids if t in legal_ids)
        cooking_hits = sum(1 for t in result.token_ids if t in cooking_ids)
        assert legal_hits > cooking_hits

    def test_reconstruction_error_decreases_with_budget(
        self, foundation_model, broad_dataset
    ):
        target = foundation_model.embed_tokens(broad_dataset.tokens[:1]).data[0]
        small = invert_pooled_embedding(foundation_model, target, max_tokens=2)
        large = invert_pooled_embedding(foundation_model, target, max_tokens=12)
        assert large.reconstruction_error <= small.reconstruction_error + 1e-9

    def test_shape_validation(self, foundation_model):
        with pytest.raises(ConfigError):
            invert_pooled_embedding(foundation_model, np.zeros(3))

    def test_budget_validation(self, foundation_model):
        with pytest.raises(ConfigError):
            invert_pooled_embedding(
                foundation_model, np.zeros(foundation_model.dim), max_tokens=0
            )

    def test_no_special_tokens_recovered(self, foundation_model, broad_dataset):
        target = foundation_model.embed_tokens(broad_dataset.tokens[:1]).data[0]
        result = invert_pooled_embedding(foundation_model, target, max_tokens=6)
        assert all(t > 3 for t in result.token_ids)
