"""Tests for neuron-level interpretability."""

import numpy as np
import pytest

from repro.interp import ablation_importance, domain_selectivity, selectivity_index


class TestAblationImportance:
    def test_shape(self, foundation_model, broad_dataset):
        report = ablation_importance(
            foundation_model, broad_dataset.tokens[:40], broad_dataset.labels[:40]
        )
        assert len(report.importance) == 24  # hidden width of the fixture model

    def test_model_restored_after_ablation(self, foundation_model, broad_dataset):
        before = {k: v.copy() for k, v in foundation_model.state_dict().items()}
        ablation_importance(
            foundation_model, broad_dataset.tokens[:20], broad_dataset.labels[:20]
        )
        after = foundation_model.state_dict()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_some_neurons_matter(self, foundation_model, broad_dataset):
        report = ablation_importance(
            foundation_model, broad_dataset.tokens[:60], broad_dataset.labels[:60]
        )
        assert report.importance.max() > 0

    def test_top_neurons_sorted(self, foundation_model, broad_dataset):
        report = ablation_importance(
            foundation_model, broad_dataset.tokens[:40], broad_dataset.labels[:40]
        )
        top = report.top_neurons(5)
        values = report.importance[top]
        assert np.all(np.diff(values) <= 1e-12)


class TestDomainSelectivity:
    def test_activation_shapes(self, foundation_model, broad_dataset):
        domains = np.asarray(broad_dataset.domains)
        by_domain = {
            d: broad_dataset.tokens[domains == d] for d in ("legal", "medical")
        }
        activations = domain_selectivity(foundation_model, by_domain)
        assert set(activations) == {"legal", "medical"}
        assert activations["legal"].shape == (24,)

    def test_selectivity_index_range(self, foundation_model, broad_dataset):
        domains = np.asarray(broad_dataset.domains)
        by_domain = {
            d: broad_dataset.tokens[domains == d]
            for d in ("legal", "medical", "news")
        }
        activations = domain_selectivity(foundation_model, by_domain)
        index = selectivity_index(activations)
        assert index.shape == (24,)
        assert np.all(np.isfinite(index))
