"""Kill ``save_lake`` at every (artifact, stage) point; nothing tears.

The matrix crosses the three durable write targets (manifest, weight
blob, embedding cache) with the three crash points of an atomic write
(before the tmp exists, mid-write, before the rename).  In every cell a
previously committed lake must stay bit-intact — fsck error-free and
loadable with the same records.
"""

import itertools
import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.cache import EmbeddingCache
from repro.lake import load_lake, save_lake
from repro.reliability import FaultPlan, InjectedFault, inject_faults
from repro.reliability.faults import WRITE_BEGIN, WRITE_DATA, WRITE_RENAME
from repro.reliability.fsck import fsck_lake

STAGES = (WRITE_BEGIN, WRITE_DATA, WRITE_RENAME)
#: basename patterns for: the commit record, raw weight bundles,
#: dataset archives, lineage.
TARGETS = ("manifest.json", "*.rwb", "*.npz", "lineage.json")


@pytest.mark.parametrize(
    "target,stage", list(itertools.product(TARGETS, STAGES))
)
def test_killed_resave_preserves_committed_lake(
    lake_copy, tiny_bundle, target, stage
):
    manifest_path = os.path.join(lake_copy, "manifest.json")
    before = open(manifest_path, "rb").read()
    plan = FaultPlan().fail_write(target, stage=stage, truncate_at=9)
    with inject_faults(plan), pytest.raises(InjectedFault):
        save_lake(tiny_bundle.lake, lake_copy)
    assert plan.fired, "the scripted fault never fired"
    # The commit record is untouched, the lake verifies and loads.
    assert open(manifest_path, "rb").read() == before
    report = fsck_lake(lake_copy)
    assert report.ok, [f.to_dict() for f in report.errors]
    restored = load_lake(lake_copy)
    assert restored.model_ids() == tiny_bundle.lake.model_ids()


def test_old_manifest_survives_killed_commit(lake_copy):
    """Regression: a save killed mid-manifest-write must leave the
    previous manifest describing the previous, fully intact lake."""
    lake = load_lake(lake_copy)
    record = next(iter(lake))
    lake.record_metric(record.model_id, "post_hoc_metric", 1.0)
    plan = FaultPlan().fail_write(
        "manifest.json", stage=WRITE_DATA, truncate_at=64
    )
    with inject_faults(plan), pytest.raises(InjectedFault):
        save_lake(lake, lake_copy)
    reloaded = load_lake(lake_copy)
    metrics = reloaded.get_record(record.model_id).eval_metrics
    assert "post_hoc_metric" not in metrics  # old manifest, old lake


@pytest.mark.parametrize("stage", STAGES)
def test_killed_embedding_cache_flush_preserves_old_cache(tmp_path, stage):
    directory = str(tmp_path / "cache")
    cache = EmbeddingCache(directory)
    cache.put("space", "digest-a", np.ones(4))
    cache.flush()

    cache.put("space", "digest-b", np.zeros(4))
    plan = FaultPlan().fail_write("embeddings-*.npz", stage=stage, truncate_at=6)
    with inject_faults(plan), pytest.raises(InjectedFault):
        cache.flush()

    fresh = EmbeddingCache(directory)
    assert np.array_equal(fresh.get("space", "digest-a"), np.ones(4))
    assert fresh.get("space", "digest-b") is None  # flush never committed


@given(index=st.integers(min_value=0, max_value=40), stage=st.sampled_from(STAGES))
@settings(max_examples=10, deadline=None)
def test_killed_fresh_save_is_never_reported_clean(tiny_bundle, index, stage):
    """Property: fsck on any prefix of a killed first save is not clean.

    The fault kills the Nth write of a save into an empty directory.  If
    the plan fired, the manifest never committed, so fsck must surface
    that (no false "clean"); if N exceeded the save's write count, the
    save completed and fsck must report exactly clean (no false
    positives on intact lakes either).
    """
    directory = tempfile.mkdtemp(prefix="killed-save-")
    try:
        plan = FaultPlan().fail_write("*", stage=stage, index=index, truncate_at=7)
        completed = True
        with inject_faults(plan):
            try:
                save_lake(tiny_bundle.lake, directory)
            except InjectedFault:
                completed = False
        report = fsck_lake(directory)
        if completed:
            assert not plan.fired
            assert report.clean
        else:
            assert plan.fired
            assert not report.clean
            assert not report.ok  # a missing commit record is an error
    finally:
        shutil.rmtree(directory, ignore_errors=True)
