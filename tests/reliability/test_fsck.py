"""``repro fsck``: every injected corruption detected, intact lakes clean."""

import json
import os

import pytest

from repro.reliability.fsck import fsck_lake


def _manifest_path(directory):
    return os.path.join(directory, "manifest.json")


def _load_manifest(directory):
    with open(_manifest_path(directory)) as handle:
        return json.load(handle)


def _dump_manifest(directory, manifest):
    with open(_manifest_path(directory), "w") as handle:
        json.dump(manifest, handle, indent=1)


def _first_blob(directory):
    weights = os.path.join(directory, "weights")
    return os.path.join(weights, sorted(os.listdir(weights))[0])


def kinds(report):
    return sorted({finding.kind for finding in report.findings})


class TestIntactLake:
    def test_intact_lake_is_clean(self, saved_tiny_lake):
        report = fsck_lake(saved_tiny_lake)
        assert report.clean
        assert report.ok
        assert report.exit_code() == 0
        assert report.files_scanned > 0

    def test_no_false_positives_on_repeated_runs(self, saved_tiny_lake):
        # fsck itself must not dirty the lake it audits.
        assert fsck_lake(saved_tiny_lake).clean
        assert fsck_lake(saved_tiny_lake).clean

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            fsck_lake(str(tmp_path / "nope"))


class TestCorruptionDetection:
    def test_truncated_blob(self, lake_copy):
        blob = _first_blob(lake_copy)
        data = open(blob, "rb").read()
        with open(blob, "wb") as handle:
            handle.write(data[: len(data) // 2])
        report = fsck_lake(lake_copy)
        assert "truncated" in kinds(report)
        assert not report.ok

    def test_bitflipped_blob_same_size(self, lake_copy):
        blob = _first_blob(lake_copy)
        data = bytearray(open(blob, "rb").read())
        data[-1] ^= 0xFF
        with open(blob, "wb") as handle:
            handle.write(bytes(data))
        report = fsck_lake(lake_copy)
        assert "digest-mismatch" in kinds(report)

    def test_missing_blob(self, lake_copy):
        os.unlink(_first_blob(lake_copy))
        report = fsck_lake(lake_copy)
        assert "missing" in kinds(report)
        assert not report.ok

    def test_missing_lineage(self, lake_copy):
        os.unlink(os.path.join(lake_copy, "lineage.json"))
        assert "missing" in kinds(fsck_lake(lake_copy))

    def test_orphaned_blob_is_a_warning(self, lake_copy):
        orphan = os.path.join(lake_copy, "weights", "deadbeef.npz")
        with open(orphan, "wb") as handle:
            handle.write(b"uncommitted debris")
        report = fsck_lake(lake_copy)
        assert "orphaned" in kinds(report)
        assert report.ok  # warnings keep the lake usable
        assert not report.clean

    def test_stale_tmp_litter_is_a_warning(self, lake_copy):
        litter = os.path.join(lake_copy, ".manifest.json.abc123.tmp")
        with open(litter, "wb") as handle:
            handle.write(b"torn write")
        report = fsck_lake(lake_copy)
        assert "stale-temp" in kinds(report)
        assert report.ok

    def test_hand_edited_manifest_fails_its_own_digest(self, lake_copy):
        manifest = _load_manifest(lake_copy)
        manifest["clock"] = manifest["clock"] + 100
        _dump_manifest(lake_copy, manifest)
        report = fsck_lake(lake_copy)
        assert "manifest-digest" in kinds(report)
        assert not report.ok

    def test_unparseable_manifest(self, lake_copy):
        with open(_manifest_path(lake_copy), "w") as handle:
            handle.write('{"records": [truncated')
        assert "manifest-corrupt" in kinds(fsck_lake(lake_copy))

    def test_missing_manifest(self, lake_copy):
        os.unlink(_manifest_path(lake_copy))
        report = fsck_lake(lake_copy)
        assert "manifest-missing" in kinds(report)
        assert not report.ok

    def test_legacy_lake_without_integrity_section(self, lake_copy):
        manifest = _load_manifest(lake_copy)
        del manifest["integrity"]
        _dump_manifest(lake_copy, manifest)
        report = fsck_lake(lake_copy)
        # Degraded but honest: checks run off filenames-as-digests, and
        # the missing section is itself surfaced.
        assert kinds(report) == ["integrity-absent"]
        assert report.ok

    def test_legacy_lake_still_catches_blob_corruption(self, lake_copy):
        manifest = _load_manifest(lake_copy)
        del manifest["integrity"]
        _dump_manifest(lake_copy, manifest)
        blob = _first_blob(lake_copy)
        data = bytearray(open(blob, "rb").read())
        data[-1] ^= 0xFF
        with open(blob, "wb") as handle:
            handle.write(bytes(data))
        report = fsck_lake(lake_copy)
        assert "digest-mismatch" in kinds(report)


class TestRepair:
    def test_repair_quarantines_corrupt_blob(self, lake_copy):
        blob = _first_blob(lake_copy)
        with open(blob, "wb") as handle:
            handle.write(b"garbage")
        report = fsck_lake(lake_copy, repair=True)
        bad = [f for f in report.findings if f.path.startswith("weights/")]
        assert bad and all(f.repaired for f in bad)
        assert not os.path.exists(blob)
        quarantine = os.path.join(lake_copy, "quarantine")
        assert os.listdir(quarantine)  # payload bytes preserved, not deleted

    def test_repair_removes_stale_tmp(self, lake_copy):
        litter = os.path.join(lake_copy, "weights", ".blob.npz.xyz.tmp")
        with open(litter, "wb") as handle:
            handle.write(b"torn")
        report = fsck_lake(lake_copy, repair=True)
        assert not os.path.exists(litter)
        stale = [f for f in report.findings if f.kind == "stale-temp"]
        assert stale and stale[0].repair_action == "removed"

    def test_repair_leaves_quarantine_alone_on_rerun(self, lake_copy):
        blob = _first_blob(lake_copy)
        with open(blob, "wb") as handle:
            handle.write(b"garbage")
        fsck_lake(lake_copy, repair=True)
        # Second pass: the quarantined blob now reads as missing (it is),
        # but the quarantine directory itself is never audited.
        report = fsck_lake(lake_copy, repair=True)
        assert "missing" in kinds(report)
        assert all(
            not f.path.startswith("quarantine/") for f in report.findings
        )


class TestReportShape:
    def test_json_payload_is_sorted_and_stable(self, lake_copy):
        os.unlink(_first_blob(lake_copy))
        with open(os.path.join(lake_copy, "stray.tmp"), "wb") as handle:
            handle.write(b"x")
        first = fsck_lake(lake_copy).to_json_payload()
        second = fsck_lake(lake_copy).to_json_payload()
        assert first == second
        severities = [f["severity"] for f in first["findings"]]
        assert severities == sorted(severities)  # errors before warnings
        assert json.dumps(first)  # JSON-serializable end to end

    def test_text_rendering_names_every_finding(self, lake_copy):
        os.unlink(_first_blob(lake_copy))
        report = fsck_lake(lake_copy)
        text = report.to_text()
        assert "missing" in text
        assert "error" in text
