"""Logical-clock monotonicity across save/load round trips.

``created_at`` values are minted from the lake clock, so a loaded lake
whose clock trails its newest record would mint duplicate timestamps —
silently breaking citation ordering.  ``load_lake`` now refuses such
manifests; these tests cover both the honest round trip and tampered
manifests.
"""

import json
import os
import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LakeError
from repro.lake import ModelLake, load_lake, save_lake
from repro.nn import TextClassifier


def _tiny_model(seed):
    return TextClassifier(40, num_classes=3, dim=4, hidden=(5,), seed=seed)


def _build_lake(num_models, clock_bumps):
    lake = ModelLake()
    for i in range(num_models):
        lake.add_model(_tiny_model(seed=i), name=f"model-{i}")
    first = lake.model_ids()[0]
    for i in range(clock_bumps):
        # Non-registration mutations advance the clock past created_at.
        lake.record_metric(first, f"metric_{i}", float(i))
    return lake


class TestClockRoundTrip:
    def test_clock_survives_round_trip(self, tmp_path):
        lake = _build_lake(num_models=3, clock_bumps=2)
        save_lake(lake, str(tmp_path))
        restored = load_lake(str(tmp_path))
        assert restored.clock == lake.clock
        assert [r.created_at for r in restored] == [
            r.created_at for r in lake
        ]

    def test_loaded_lake_mints_fresh_unique_timestamps(self, tmp_path):
        lake = _build_lake(num_models=2, clock_bumps=0)
        save_lake(lake, str(tmp_path))
        restored = load_lake(str(tmp_path))
        record = restored.add_model(_tiny_model(seed=9), name="post-load")
        stamps = [r.created_at for r in restored]
        assert len(set(stamps)) == len(stamps)
        assert record.created_at == max(stamps)

    def test_clock_behind_newest_record_refused(self, tmp_path):
        lake = _build_lake(num_models=3, clock_bumps=0)
        save_lake(lake, str(tmp_path))
        manifest_path = os.path.join(str(tmp_path), "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["clock"] = 0  # behind every record
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(LakeError, match="behind the newest record"):
            load_lake(str(tmp_path))

    def test_duplicate_created_at_refused(self, tmp_path):
        lake = _build_lake(num_models=2, clock_bumps=0)
        save_lake(lake, str(tmp_path))
        manifest_path = os.path.join(str(tmp_path), "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        stamps = [entry["created_at"] for entry in manifest["records"]]
        manifest["records"][1]["created_at"] = stamps[0]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(LakeError, match="clock-monotonic"):
            load_lake(str(tmp_path))


@given(
    num_models=st.integers(min_value=1, max_value=4),
    clock_bumps=st.integers(min_value=0, max_value=5),
    reloads=st.integers(min_value=1, max_value=3),
)
@settings(max_examples=10, deadline=None)
def test_clock_monotonic_through_any_round_trip(num_models, clock_bumps, reloads):
    """Property: however a lake is built and however often it is
    re-saved, the restored clock dominates every ``created_at`` and
    timestamps stay unique."""
    directory = tempfile.mkdtemp(prefix="clock-lake-")
    try:
        lake = _build_lake(num_models, clock_bumps)
        for _ in range(reloads):
            save_lake(lake, directory)
            lake = load_lake(directory)
            stamps = [record.created_at for record in lake]
            assert lake.clock >= max(stamps)
            assert len(set(stamps)) == len(stamps)
        # And the lake is still writable without timestamp collisions.
        lake.add_model(_tiny_model(seed=99), name="afterwards")
        stamps = [record.created_at for record in lake]
        assert len(set(stamps)) == len(stamps)
    finally:
        shutil.rmtree(directory, ignore_errors=True)
