"""WaveExecutor survival of crashed workers: rebuild, re-run, surface.

Worker functions live at module level so they pickle into real worker
processes; the crashing ones use ``os._exit`` so the pool genuinely
breaks (an exception would be an ordinary task failure, not a crash).
"""

import os

import pytest

from repro.errors import WorkerCrashError
from repro.parallel import WaveExecutor
from repro.reliability import FaultPlan, inject_faults


def _inc(value):
    return value + 1


def _fail_on_two(value):
    if value == 2:
        raise ValueError("task two is broken")
    return value + 1


def _crash_until_latched(task):
    """Dies the first time it runs (latch file empty), survives after."""
    if task["crash"]:
        with open(task["latch"], "a") as handle:
            handle.write("x")
        if os.path.getsize(task["latch"]) <= 1:
            os._exit(1)
    return task["value"] + 1


def _exit_now(_task):
    os._exit(1)


class TestInjectedPoolFaults:
    def test_injected_crash_retries_and_completes(self):
        plan = FaultPlan().break_pool("wave-a", times=1)
        with WaveExecutor(workers=1) as executor, inject_faults(plan):
            results = executor.run_wave(_inc, [1, 2, 3], label="wave-a")
        assert results == [2, 3, 4]
        assert len(plan.fired) == 1

    def test_exhausted_retries_surface_structured_error(self):
        plan = FaultPlan().break_pool("wave-b", times=10)
        with WaveExecutor(workers=1, max_retries=2) as executor:
            with inject_faults(plan), pytest.raises(WorkerCrashError) as info:
                executor.run_wave(_inc, [1, 2], label="wave-b")
            assert executor._pool is None  # no dangling dead pool
        error = info.value
        assert error.label == "wave-b"
        assert error.task_indices == [0, 1]
        assert error.attempts == 3  # 1 initial + 2 retries
        assert "wave-b" in str(error)

    def test_fault_scoped_to_other_wave_does_not_fire(self):
        plan = FaultPlan().break_pool("other-wave", times=10)
        with WaveExecutor(workers=1) as executor, inject_faults(plan):
            assert executor.run_wave(_inc, [1], label="this-wave") == [2]
        assert plan.fired == []


class TestRealBrokenPool:
    def test_crashed_worker_is_retried_to_completion(self, tmp_path):
        latch = str(tmp_path / "latch")
        tasks = [
            {"crash": False, "value": 1, "latch": latch},
            {"crash": True, "value": 2, "latch": latch},
            {"crash": False, "value": 3, "latch": latch},
        ]
        with WaveExecutor(workers=2, max_retries=2) as executor:
            results = executor.run_wave(_crash_until_latched, tasks, label="real")
        # Submission order survives the crash-and-retry round trip.
        assert results == [2, 3, 4]

    def test_unrecoverable_crash_raises_and_disposes_pool(self):
        with WaveExecutor(workers=2, max_retries=1) as executor:
            with pytest.raises(WorkerCrashError) as info:
                executor.run_wave(_exit_now, [0], label="doomed")
            assert executor._pool is None
            assert info.value.task_indices == [0]
            # The executor is still usable: the next wave gets a fresh pool.
            assert executor.run_wave(_inc, [41], label="after") == [42]

    def test_ordinary_task_exception_is_not_a_crash(self):
        with WaveExecutor(workers=2, max_retries=2) as executor:
            with pytest.raises(ValueError, match="task two"):
                executor.run_wave(_fail_on_two, [1, 2, 3], label="failing")
