"""Atomic-write primitives: a crash at any stage never tears the file."""

import json
import os

import numpy as np
import pytest

from repro.reliability import (
    FaultPlan,
    InjectedFault,
    inject_faults,
)
from repro.reliability.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
)
from repro.reliability.faults import WRITE_BEGIN, WRITE_DATA, WRITE_RENAME

OLD = b"previous committed contents"
NEW = b"replacement contents, longer than the old ones"


def tmp_litter(directory):
    return [name for name in os.listdir(directory) if name.endswith(".tmp")]


@pytest.fixture()
def target(tmp_path):
    path = tmp_path / "artifact.bin"
    path.write_bytes(OLD)
    return str(path)


class TestAtomicWriteBytes:
    def test_writes_fresh_file(self, tmp_path):
        path = str(tmp_path / "fresh.bin")
        atomic_write_bytes(path, NEW)
        assert open(path, "rb").read() == NEW
        assert tmp_litter(str(tmp_path)) == []

    def test_replaces_existing_file(self, target, tmp_path):
        atomic_write_bytes(target, NEW)
        assert open(target, "rb").read() == NEW
        assert tmp_litter(str(tmp_path)) == []

    def test_crash_before_tmp_creation_changes_nothing(self, target, tmp_path):
        plan = FaultPlan().fail_write("artifact.bin", stage=WRITE_BEGIN)
        with inject_faults(plan), pytest.raises(InjectedFault):
            atomic_write_bytes(target, NEW)
        assert open(target, "rb").read() == OLD
        assert tmp_litter(str(tmp_path)) == []

    def test_crash_mid_write_keeps_old_and_leaves_torn_tmp(self, target, tmp_path):
        plan = FaultPlan().fail_write(
            "artifact.bin", stage=WRITE_DATA, truncate_at=5
        )
        with inject_faults(plan), pytest.raises(InjectedFault):
            atomic_write_bytes(target, NEW)
        assert open(target, "rb").read() == OLD
        litter = tmp_litter(str(tmp_path))
        assert len(litter) == 1  # the debris a real SIGKILL would leave
        torn = (tmp_path / litter[0]).read_bytes()
        assert torn == NEW[:5]

    def test_crash_before_rename_keeps_old_with_complete_tmp(self, target, tmp_path):
        plan = FaultPlan().fail_write("artifact.bin", stage=WRITE_RENAME)
        with inject_faults(plan), pytest.raises(InjectedFault):
            atomic_write_bytes(target, NEW)
        assert open(target, "rb").read() == OLD
        litter = tmp_litter(str(tmp_path))
        assert len(litter) == 1
        assert (tmp_path / litter[0]).read_bytes() == NEW

    def test_ordinary_failure_cleans_up_its_tmp(self, target, tmp_path, monkeypatch):
        def explode(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", explode)
        with pytest.raises(OSError, match="disk on fire"):
            atomic_write_bytes(target, NEW)
        monkeypatch.undo()
        assert open(target, "rb").read() == OLD
        assert tmp_litter(str(tmp_path)) == []

    def test_pattern_scopes_the_fault_to_matching_files(self, target, tmp_path):
        other = str(tmp_path / "other.bin")
        plan = FaultPlan().fail_write("artifact.bin", stage=WRITE_RENAME)
        with inject_faults(plan):
            atomic_write_bytes(other, NEW)  # does not match: succeeds
            with pytest.raises(InjectedFault):
                atomic_write_bytes(target, NEW)
        assert open(other, "rb").read() == NEW


class TestJsonAndNpz:
    def test_json_round_trip(self, tmp_path):
        path = str(tmp_path / "payload.json")
        payload = {"b": [1, 2, 3], "a": {"nested": True}}
        atomic_write_json(path, payload, sort_keys=True)
        with open(path) as handle:
            assert json.load(handle) == payload

    def test_npz_round_trip(self, tmp_path):
        path = str(tmp_path / "arrays.npz")
        arrays = {
            "tokens": np.arange(12).reshape(3, 4),
            "labels": np.array([0, 1, 2]),
        }
        atomic_write_npz(path, arrays)
        with np.load(path) as restored:
            assert np.array_equal(restored["tokens"], arrays["tokens"])
            assert np.array_equal(restored["labels"], arrays["labels"])

    def test_npz_crash_leaves_no_partial_archive(self, tmp_path):
        path = str(tmp_path / "arrays.npz")
        plan = FaultPlan().fail_write("arrays.npz", stage=WRITE_DATA, truncate_at=3)
        with inject_faults(plan), pytest.raises(InjectedFault):
            atomic_write_npz(path, {"tokens": np.arange(4)})
        assert not os.path.exists(path)
