"""Fixtures for the reliability suite: a tiny lake, saved once.

The crash-safety tests corrupt, kill, and repair lakes constantly, so
the shared artifacts are (a) one cheap generated bundle and (b) its
saved directory; individual tests copy the directory before mutilating
it.
"""

from __future__ import annotations

import shutil

import pytest

from repro.lake import LakeSpec, generate_lake, save_lake

#: The cheapest spec that still exercises every persisted artifact kind:
#: one foundation wave, one chain wave, derived specialty datasets.
TINY_KWARGS = dict(
    num_foundations=1,
    chains_per_foundation=2,
    max_chain_depth=1,
    docs_per_domain=8,
    eval_docs_per_domain=3,
    foundation_epochs=2,
    specialize_epochs=2,
    num_merges=0,
    num_stitches=0,
    seed=3,
)


def tiny_spec(**overrides) -> LakeSpec:
    kwargs = dict(TINY_KWARGS)
    kwargs.update(overrides)
    return LakeSpec(**kwargs)


@pytest.fixture(scope="session")
def tiny_bundle():
    """Reference bundle (treat as read-only)."""
    return generate_lake(tiny_spec())


@pytest.fixture(scope="session")
def saved_tiny_lake(tmp_path_factory, tiny_bundle):
    """The reference bundle saved once (treat the directory as read-only)."""
    directory = str(tmp_path_factory.mktemp("tiny-lake"))
    save_lake(tiny_bundle.lake, directory)
    return directory


@pytest.fixture()
def lake_copy(saved_tiny_lake, tmp_path):
    """A private, corruptible copy of the saved lake."""
    target = str(tmp_path / "lake")
    shutil.copytree(saved_tiny_lake, target)
    return target
