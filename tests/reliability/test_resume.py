"""Resumable generation: a killed run continues to a bit-identical lake."""

import os
import pickle

import pytest

from repro.errors import CheckpointError, WorkerCrashError
from repro.lake.generator import LakeGenerator, generate_lake, spec_fingerprint
from repro.reliability import FaultPlan, inject_faults
from repro.reliability.checkpoint import WaveCheckpoint

from tests.reliability.conftest import tiny_spec


def _identity(bundle):
    """Everything that must be bit-identical across resume."""
    records = list(bundle.lake)
    return {
        "ids": [r.model_id for r in records],
        "names": [r.name for r in records],
        "digests": [r.weights_digest for r in records],
        "created_at": [r.created_at for r in records],
        "clock": bundle.lake.clock,
        "edges": [
            (tuple(parents), child, transform.kind)
            for parents, child, transform in bundle.truth.edges
        ],
    }


class TestWaveCheckpoint:
    def test_store_load_round_trip(self, tmp_path):
        checkpoint = WaveCheckpoint(str(tmp_path / "ckpt"), "fp-1")
        payload = [["result-a", "result-b"], ["result-c"]]
        checkpoint.store("generate.wave0", payload)
        assert checkpoint.load("generate.wave0") == payload
        assert checkpoint.load("generate.wave1") is None

    def test_fingerprint_mismatch_discards_everything(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        stale = WaveCheckpoint(directory, "fp-old")
        stale.store("generate.wave0", ["stale results"])
        fresh = WaveCheckpoint(directory, "fp-new", resume=True)
        assert fresh.load("generate.wave0") is None

    def test_resume_false_discards_compatible_checkpoints(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        WaveCheckpoint(directory, "fp").store("w", [1])
        assert WaveCheckpoint(directory, "fp", resume=False).load("w") is None

    def test_unreadable_checkpoint_raises(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        checkpoint = WaveCheckpoint(directory, "fp")
        checkpoint.store("w", [1, 2, 3])
        path = [
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.startswith("wave-")
        ][0]
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        with pytest.raises(CheckpointError, match="unreadable"):
            checkpoint.load("w")

    def test_clear_removes_the_directory(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        checkpoint = WaveCheckpoint(directory, "fp")
        checkpoint.store("w", [1])
        checkpoint.clear()
        assert not os.path.exists(directory)

    def test_checkpoints_are_pickle_payload_agnostic(self, tmp_path):
        checkpoint = WaveCheckpoint(str(tmp_path / "ckpt"), "fp")
        payload = {"nested": [1, (2.5, "three")], "flag": True}
        checkpoint.store("merge", payload)
        assert pickle.dumps(checkpoint.load("merge")) == pickle.dumps(payload)


class TestSpecFingerprint:
    def test_workers_do_not_change_the_fingerprint(self):
        assert spec_fingerprint(tiny_spec(workers=1)) == spec_fingerprint(
            tiny_spec(workers=4)
        )

    def test_any_shaping_field_changes_the_fingerprint(self):
        assert spec_fingerprint(tiny_spec()) != spec_fingerprint(
            tiny_spec(seed=99)
        )


class TestResumedGeneration:
    def test_killed_run_resumes_bit_identical(self, tmp_path, tiny_bundle):
        checkpoint_dir = str(tmp_path / "ckpt")
        # Kill the chain wave on every attempt: the run dies after the
        # foundation wave has been checkpointed.
        plan = FaultPlan().break_pool("generate.wave1", times=10)
        with inject_faults(plan), pytest.raises(WorkerCrashError):
            generate_lake(
                tiny_spec(), checkpoint_dir=checkpoint_dir, resume=False
            )
        assert plan.fired
        stored = [
            name for name in os.listdir(checkpoint_dir)
            if name.startswith("wave-generate.wave0")
        ]
        assert stored, "completed wave was not checkpointed"

        resumed = generate_lake(
            tiny_spec(), checkpoint_dir=checkpoint_dir, resume=True
        )
        assert _identity(resumed) == _identity(tiny_bundle)

    def test_resume_of_a_completed_checkpoint_is_identical(
        self, tmp_path, tiny_bundle
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        first = generate_lake(
            tiny_spec(), checkpoint_dir=checkpoint_dir, resume=False
        )
        # Every wave satisfied from disk; nothing retrains.
        second = generate_lake(
            tiny_spec(), checkpoint_dir=checkpoint_dir, resume=True
        )
        assert _identity(first) == _identity(second) == _identity(tiny_bundle)

    def test_mismatched_spec_discards_checkpoint_and_regenerates(
        self, tmp_path, tiny_bundle
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        generate_lake(
            tiny_spec(seed=77), checkpoint_dir=checkpoint_dir, resume=False
        )
        # Resuming with a *different* spec must not splice in wave
        # results of the seed-77 lake.
        bundle = generate_lake(
            tiny_spec(), checkpoint_dir=checkpoint_dir, resume=True
        )
        assert _identity(bundle) == _identity(tiny_bundle)

    def test_clear_checkpoint_after_durable_save(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        generator = LakeGenerator(
            tiny_spec(), checkpoint_dir=checkpoint_dir, resume=False
        )
        generator.generate()
        assert os.path.isdir(checkpoint_dir)
        generator.clear_checkpoint()
        assert not os.path.exists(checkpoint_dir)
