"""The fault plan itself: deterministic, scoped, replayable."""

import pytest

from repro.reliability import FaultPlan, InjectedFault, active_plan, inject_faults
from repro.reliability.faults import (
    POOL_WAVE,
    WRITE_DATA,
    WRITE_RENAME,
    raise_if_triggered,
    trigger,
)


class TestFaultRules:
    def test_fires_on_nth_match_only(self):
        plan = FaultPlan().fail_write("manifest*", stage=WRITE_DATA, index=1)
        assert plan.check(WRITE_DATA, "manifest.json") is None  # match 0
        assert plan.check(WRITE_DATA, "manifest.json") is not None  # match 1
        assert plan.check(WRITE_DATA, "manifest.json") is None  # match 2

    def test_times_widens_the_firing_window(self):
        plan = FaultPlan().break_pool("wave", times=2)
        assert plan.check(POOL_WAVE, "wave") is not None
        assert plan.check(POOL_WAVE, "wave") is not None
        assert plan.check(POOL_WAVE, "wave") is None

    def test_pattern_and_op_both_gate_matching(self):
        plan = FaultPlan().fail_write("*.npz", stage=WRITE_DATA)
        assert plan.check(WRITE_RENAME, "blob.npz") is None  # wrong op
        assert plan.check(WRITE_DATA, "manifest.json") is None  # wrong name
        assert plan.check(WRITE_DATA, "blob.npz") is not None

    def test_unknown_write_stage_rejected(self):
        with pytest.raises(ValueError, match="stage"):
            FaultPlan().fail_write("*", stage="write.nonsense")

    def test_fired_log_replays_identically(self):
        def workload(plan):
            for name in ("a.npz", "manifest.json", "b.npz", "manifest.json"):
                plan.check(WRITE_DATA, name)
            return list(plan.fired)

        def script():
            return FaultPlan(seed=7).fail_write(
                "manifest*", stage=WRITE_DATA, index=1
            )

        assert workload(script()) == workload(script())
        assert workload(script()) == [(WRITE_DATA, "manifest.json", 0)]

    def test_seeded_rng_is_reproducible(self):
        first = FaultPlan(seed=13).rng.integers(1_000_000)
        second = FaultPlan(seed=13).rng.integers(1_000_000)
        assert first == second


class TestActivePlan:
    def test_no_active_plan_means_no_faults(self):
        assert active_plan() is None
        assert trigger(WRITE_DATA, "anything") is None
        raise_if_triggered(WRITE_DATA, "anything")  # must not raise

    def test_inject_faults_installs_and_restores(self):
        plan = FaultPlan()
        with inject_faults(plan) as installed:
            assert installed is plan
            assert active_plan() is plan
        assert active_plan() is None

    def test_nested_plans_restore_the_outer_one(self):
        outer, inner = FaultPlan(), FaultPlan()
        with inject_faults(outer):
            with inject_faults(inner):
                assert active_plan() is inner
            assert active_plan() is outer

    def test_raise_if_triggered_raises_injected_fault(self):
        plan = FaultPlan().fail_write("doomed.json", stage=WRITE_RENAME)
        with inject_faults(plan):
            with pytest.raises(InjectedFault, match="doomed.json"):
                raise_if_triggered(WRITE_RENAME, "doomed.json")
        assert plan.fired == [(WRITE_RENAME, "doomed.json", 0)]

    def test_injected_fault_is_an_os_error(self):
        # Crash simulation must not be catchable as a library error.
        assert issubclass(InjectedFault, OSError)
