"""Tests for WaveExecutor: ordering, initializer parity, errors, metrics."""

import os

import pytest

from repro.errors import ConfigError
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import PARALLEL_TASKS, PARALLEL_WAVES
from repro.parallel import WaveExecutor

_STATE = {}


def _init_state(value):
    _STATE["value"] = value


def _square_plus_state(x):
    return x * x + _STATE.get("value", 0)


def _record_pid(x):
    return (x, os.getpid())


def _maybe_fail(x):
    if x == 2:
        raise ValueError("task 2 exploded")
    return x


class TestWaveExecutorInline:
    def test_results_in_task_order(self):
        with WaveExecutor(workers=1) as executor:
            assert executor.run_wave(lambda x: x * 10, [3, 1, 2]) == [30, 10, 20]

    def test_empty_wave(self):
        with WaveExecutor(workers=1) as executor:
            assert executor.run_wave(lambda x: x, []) == []

    def test_initializer_runs_once_in_process(self):
        _STATE.clear()
        with WaveExecutor(workers=1, initializer=_init_state, initargs=(7,)) as ex:
            assert ex.run_wave(_square_plus_state, [2, 3]) == [11, 16]

    def test_error_propagates(self):
        with WaveExecutor(workers=1) as executor:
            with pytest.raises(ValueError, match="exploded"):
                executor.run_wave(_maybe_fail, [1, 2, 3])

    def test_workers_below_one_rejected(self):
        with pytest.raises(ConfigError, match="workers"):
            WaveExecutor(workers=0)

    def test_metrics_recorded(self):
        registry = obs_metrics.get_registry()
        waves_before = registry.counter(PARALLEL_WAVES).value
        tasks_before = registry.counter(PARALLEL_TASKS).value
        with WaveExecutor(workers=1) as executor:
            executor.run_wave(lambda x: x, [1, 2, 3])
        assert registry.counter(PARALLEL_WAVES).value == waves_before + 1
        assert registry.counter(PARALLEL_TASKS).value == tasks_before + 3


class TestWaveExecutorPool:
    def test_results_in_task_order_across_processes(self):
        with WaveExecutor(workers=2) as executor:
            results = executor.run_wave(_record_pid, list(range(6)))
        assert [x for x, _ in results] == list(range(6))
        # Work actually left this process.
        assert all(pid != os.getpid() for _, pid in results)

    def test_initializer_reaches_workers(self):
        with WaveExecutor(workers=2, initializer=_init_state, initargs=(5,)) as ex:
            assert ex.run_wave(_square_plus_state, [1, 2]) == [6, 9]

    def test_inline_and_pool_agree(self):
        tasks = [4, 9, 16]
        with WaveExecutor(workers=1, initializer=_init_state, initargs=(1,)) as ex:
            inline = ex.run_wave(_square_plus_state, tasks)
        with WaveExecutor(workers=2, initializer=_init_state, initargs=(1,)) as ex:
            pooled = ex.run_wave(_square_plus_state, tasks)
        assert inline == pooled

    def test_error_propagates_after_draining(self):
        with WaveExecutor(workers=2) as executor:
            with pytest.raises(ValueError, match="exploded"):
                executor.run_wave(_maybe_fail, [1, 2, 3])
            # The pool is still usable afterwards.
            assert executor.run_wave(_maybe_fail, [5, 6]) == [5, 6]


def _traced_square(x):
    from repro.obs.tracing import trace

    with trace("worker.square", x=x):
        return x * x


class TestCrossProcessTracing:
    """Worker spans ship back to the coordinator as one coherent tree."""

    @pytest.fixture(autouse=True)
    def _clean_tracing(self):
        from repro.obs import tracing

        tracing.clear_exporters()
        tracing.set_enabled(False)
        yield
        tracing.clear_exporters()
        tracing.set_enabled(False)

    def test_pool_worker_spans_adopt_into_wave_tree(self):
        from repro.obs.tracing import InMemoryExporter, add_exporter

        exporter = add_exporter(InMemoryExporter())
        with WaveExecutor(workers=2) as executor:
            results = executor.run_wave(_traced_square, [1, 2, 3])
        assert results == [1, 4, 9]

        spans = exporter.spans()
        waves = [s for s in spans if s.name == "parallel.wave"]
        workers = [s for s in spans if s.name == "worker.square"]
        assert len(waves) == 1
        assert len(workers) == 3  # exactly once each, no duplicates
        (wave,) = waves
        # Every worker span was re-parented under the coordinator's wave
        # span, in the coordinator's trace, with collision-free ids.
        assert all(s.parent_id == wave.span_id for s in workers)
        assert all(s.trace_id == wave.trace_id for s in workers)
        assert len({s.span_id for s in spans}) == len(spans)
        assert sorted(s.attributes["x"] for s in workers) == [1, 2, 3]

    def test_inline_executor_spans_nest_without_adoption(self):
        from repro.obs.tracing import InMemoryExporter, add_exporter

        exporter = add_exporter(InMemoryExporter())
        with WaveExecutor(workers=1) as executor:
            assert executor.run_wave(_traced_square, [2]) == [4]
        spans = {s.name: s for s in exporter.spans()}
        assert spans["worker.square"].parent_id == spans["parallel.wave"].span_id

    def test_untraced_pool_run_stays_untraced(self):
        with WaveExecutor(workers=2) as executor:
            assert executor.run_wave(_traced_square, [1, 2]) == [1, 4]
