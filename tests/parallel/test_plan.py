"""Tests for deterministic wave planning (topological_waves)."""

import pytest

from repro.errors import ConfigError
from repro.parallel import topological_waves


class TestTopologicalWaves:
    def test_empty(self):
        assert topological_waves({}) == []

    def test_independent_tasks_share_one_wave(self):
        waves = topological_waves({"a": [], "b": [], "c": []})
        assert waves == [["a", "b", "c"]]

    def test_longest_path_leveling(self):
        waves = topological_waves({
            "a": [],
            "b": ["a"],
            "c": ["a", "b"],   # longest chain a->b->c: wave 2
            "d": [],
        })
        assert waves == [["a", "d"], ["b"], ["c"]]

    def test_declaration_order_within_wave(self):
        waves = topological_waves({"z": [], "m": [], "a": []})
        assert waves[0] == ["z", "m", "a"]

    def test_every_task_after_its_dependencies(self):
        deps = {
            "f0": [], "f1": [],
            "c0": ["f0"], "c1": ["f0"], "c2": ["f1"],
            "m": ["c0", "c2"],
        }
        waves = topological_waves(deps)
        position = {
            task: index for index, wave in enumerate(waves) for task in wave
        }
        for task, parents in deps.items():
            for parent in parents:
                assert position[parent] < position[task]
        assert sorted(position) == sorted(deps)

    def test_unknown_dependency_raises(self):
        with pytest.raises(ConfigError, match="undeclared"):
            topological_waves({"a": ["ghost"]})

    def test_cycle_raises(self):
        with pytest.raises(ConfigError, match="cycle"):
            topological_waves({"a": ["b"], "b": ["a"]})

    def test_self_cycle_raises(self):
        with pytest.raises(ConfigError, match="cycle"):
            topological_waves({"a": ["a"]})

    def test_tuple_keys(self):
        waves = topological_waves({
            ("foundation", 0): [],
            ("chain", 0, 0): [("foundation", 0)],
        })
        assert waves == [[("foundation", 0)], [("chain", 0, 0)]]
