"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _resolve, main


@pytest.fixture(scope="module")
def lake_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cli-lake"))
    code = main([
        "generate", "--dir", directory, "--seed", "3",
        "--foundations", "1", "--chains", "2", "--depth", "1", "--docs", "12",
    ])
    assert code == 0
    return directory


class TestCLI:
    def test_stats(self, lake_dir, capsys):
        assert main(["stats", "--dir", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "models:" in out

    def test_search(self, lake_dir, capsys):
        code = main([
            "search", "--dir", lake_dir, "--query", "legal court statute",
            "--method", "behavioral", "-k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1." in out

    def test_declarative_query(self, lake_dir, capsys):
        code = main([
            "query", "--dir", lake_dir,
            "--q", "FIND MODELS WHERE family = 'text_classifier' LIMIT 3",
        ])
        assert code == 0
        assert "text" not in capsys.readouterr().err

    def test_audit(self, lake_dir, capsys):
        code = main(["audit", "--dir", lake_dir, "--model", "foundation-0"])
        out = capsys.readouterr().out
        assert "Audit report" in out
        assert code in (0, 1)

    def test_cite(self, lake_dir, capsys):
        assert main(["cite", "--dir", lake_dir, "--model", "foundation-0"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("model:")
        assert "@misc" in out

    def test_card(self, lake_dir, capsys):
        assert main(["card", "--dir", lake_dir, "--model", "foundation-0"]) == 0
        assert "# foundation-0" in capsys.readouterr().out

    def test_unknown_model_is_error(self, lake_dir, capsys):
        assert main(["cite", "--dir", lake_dir, "--model", "nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_lake_is_error(self, tmp_path, capsys):
        assert main(["stats", "--dir", str(tmp_path / "void")]) == 2

    def test_ambiguous_model_name_lists_candidates(self, capsys):
        from repro.errors import AmbiguousModelNameError
        from repro.lake.lake import ModelLake
        from repro.nn import TextClassifier

        lake = ModelLake()
        first = lake.add_model(
            TextClassifier(50, num_classes=2, dim=4, hidden=(6,), seed=0),
            name="twin",
        )
        second = lake.add_model(
            TextClassifier(50, num_classes=2, dim=4, hidden=(6,), seed=1),
            name="twin",
        )
        with pytest.raises(AmbiguousModelNameError) as excinfo:
            _resolve(lake, "twin")
        message = str(excinfo.value)
        assert first.model_id in message
        assert second.model_id in message
        assert "2 matches" in message


class TestFsckCLI:
    def test_fsck_clean_lake_exits_zero(self, lake_dir, capsys):
        assert main(["fsck", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_fsck_does_not_overwrite_the_metrics_snapshot(self, lake_dir):
        import os

        path = os.path.join(lake_dir, "metrics.json")
        with open(path) as handle:
            before = json.load(handle)
        assert main(["fsck", lake_dir]) == 0
        with open(path) as handle:
            assert json.load(handle) == before

    def test_fsck_corrupt_lake_exits_nonzero(self, lake_dir, tmp_path, capsys):
        import os
        import shutil

        broken = str(tmp_path / "broken")
        shutil.copytree(lake_dir, broken)
        weights = os.path.join(broken, "weights")
        victim = os.path.join(weights, sorted(os.listdir(weights))[0])
        with open(victim, "wb") as handle:
            handle.write(b"garbage")
        assert main(["fsck", broken]) == 1
        assert "truncated" in capsys.readouterr().out

    def test_fsck_json_payload(self, lake_dir, capsys):
        assert main(["fsck", lake_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []

    def test_fsck_missing_dir_is_error(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path / "void")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_fsck_repair_quarantines(self, lake_dir, tmp_path, capsys):
        import os
        import shutil

        broken = str(tmp_path / "repairable")
        shutil.copytree(lake_dir, broken)
        weights = os.path.join(broken, "weights")
        victim = os.path.join(weights, sorted(os.listdir(weights))[0])
        with open(victim, "wb") as handle:
            handle.write(b"garbage")
        assert main(["fsck", broken, "--repair", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(f["repaired"] for f in payload["findings"])
        assert os.path.isdir(os.path.join(broken, "quarantine"))


class TestObservabilityCLI:
    def test_stats_json(self, lake_dir, capsys):
        assert main(["stats", "--dir", lake_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_models"] > 0

    def test_metrics_reports_weight_store_cache_counters(self, lake_dir, capsys):
        # A search run persists its metrics snapshot into the lake dir...
        assert main([
            "search", "--dir", lake_dir, "--query", "legal court", "-k", "2",
        ]) == 0
        capsys.readouterr()
        # ...which `repro metrics` then reports.
        assert main(["metrics", "--dir", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "lake.weight_store.cache_hits" in out
        assert "lake.weight_store.cache_misses" in out
        assert "search.queries" in out

    def test_metrics_json_round_trips(self, lake_dir, capsys):
        assert main(["stats", "--dir", lake_dir]) == 0
        capsys.readouterr()
        assert main(["metrics", "--dir", lake_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "counters" in payload["metrics"]

    def test_trace_flag_writes_nested_jsonl_spans(self, lake_dir, tmp_path, capsys):
        trace_file = str(tmp_path / "trace.jsonl")
        code = main([
            "--trace", trace_file,
            "search", "--dir", lake_dir, "--query", "legal court statute",
            "--method", "hybrid", "-k", "2",
        ])
        assert code == 0

        records = [
            json.loads(line)
            for line in open(trace_file).read().splitlines()
        ]
        assert records, "trace file must contain spans"
        by_name = {record["name"]: record for record in records}
        # One root span for the CLI command; the engine query nests under it.
        root = by_name["cli.search"]
        assert root["parent_id"] is None
        assert by_name["search.query"]["trace_id"] == root["span_id"]
        span_ids = {record["span_id"] for record in records}
        for record in records:
            if record["parent_id"] is not None:
                assert record["parent_id"] in span_ids
            assert record["duration"] >= 0.0

    def test_metrics_on_missing_dir_is_error(self, tmp_path, capsys):
        assert main(["metrics", "--dir", str(tmp_path / "void")]) == 2
        assert "error:" in capsys.readouterr().err
