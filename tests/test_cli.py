"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _resolve, main


@pytest.fixture(scope="module")
def lake_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cli-lake"))
    code = main([
        "generate", "--dir", directory, "--seed", "3",
        "--foundations", "1", "--chains", "2", "--depth", "1", "--docs", "12",
    ])
    assert code == 0
    return directory


class TestCLI:
    def test_stats(self, lake_dir, capsys):
        assert main(["stats", "--dir", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "models:" in out

    def test_search(self, lake_dir, capsys):
        code = main([
            "search", "--dir", lake_dir, "--query", "legal court statute",
            "--method", "behavioral", "-k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1." in out

    def test_declarative_query(self, lake_dir, capsys):
        code = main([
            "query", "--dir", lake_dir,
            "--q", "FIND MODELS WHERE family = 'text_classifier' LIMIT 3",
        ])
        assert code == 0
        assert "text" not in capsys.readouterr().err

    def test_audit(self, lake_dir, capsys):
        code = main(["audit", "--dir", lake_dir, "--model", "foundation-0"])
        out = capsys.readouterr().out
        assert "Audit report" in out
        assert code in (0, 1)

    def test_cite(self, lake_dir, capsys):
        assert main(["cite", "--dir", lake_dir, "--model", "foundation-0"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("model:")
        assert "@misc" in out

    def test_card(self, lake_dir, capsys):
        assert main(["card", "--dir", lake_dir, "--model", "foundation-0"]) == 0
        assert "# foundation-0" in capsys.readouterr().out

    def test_unknown_model_is_error(self, lake_dir, capsys):
        assert main(["cite", "--dir", lake_dir, "--model", "nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_lake_is_error(self, tmp_path, capsys):
        assert main(["stats", "--dir", str(tmp_path / "void")]) == 2

    def test_ambiguous_model_name_lists_candidates(self, capsys):
        from repro.errors import AmbiguousModelNameError
        from repro.lake.lake import ModelLake
        from repro.nn import TextClassifier

        lake = ModelLake()
        first = lake.add_model(
            TextClassifier(50, num_classes=2, dim=4, hidden=(6,), seed=0),
            name="twin",
        )
        second = lake.add_model(
            TextClassifier(50, num_classes=2, dim=4, hidden=(6,), seed=1),
            name="twin",
        )
        with pytest.raises(AmbiguousModelNameError) as excinfo:
            _resolve(lake, "twin")
        message = str(excinfo.value)
        assert first.model_id in message
        assert second.model_id in message
        assert "2 matches" in message


class TestFsckCLI:
    def test_fsck_clean_lake_exits_zero(self, lake_dir, capsys):
        assert main(["fsck", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_fsck_does_not_overwrite_the_metrics_snapshot(self, lake_dir):
        import os

        path = os.path.join(lake_dir, "metrics.json")
        with open(path) as handle:
            before = json.load(handle)
        assert main(["fsck", lake_dir]) == 0
        with open(path) as handle:
            assert json.load(handle) == before

    def test_fsck_corrupt_lake_exits_nonzero(self, lake_dir, tmp_path, capsys):
        import os
        import shutil

        broken = str(tmp_path / "broken")
        shutil.copytree(lake_dir, broken)
        weights = os.path.join(broken, "weights")
        victim = os.path.join(weights, sorted(os.listdir(weights))[0])
        with open(victim, "wb") as handle:
            handle.write(b"garbage")
        assert main(["fsck", broken]) == 1
        assert "truncated" in capsys.readouterr().out

    def test_fsck_json_payload(self, lake_dir, capsys):
        assert main(["fsck", lake_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []

    def test_fsck_missing_dir_is_error(self, tmp_path, capsys):
        assert main(["fsck", str(tmp_path / "void")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_fsck_repair_quarantines(self, lake_dir, tmp_path, capsys):
        import os
        import shutil

        broken = str(tmp_path / "repairable")
        shutil.copytree(lake_dir, broken)
        weights = os.path.join(broken, "weights")
        victim = os.path.join(weights, sorted(os.listdir(weights))[0])
        with open(victim, "wb") as handle:
            handle.write(b"garbage")
        assert main(["fsck", broken, "--repair", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert any(f["repaired"] for f in payload["findings"])
        assert os.path.isdir(os.path.join(broken, "quarantine"))


class TestObservabilityCLI:
    def test_stats_json(self, lake_dir, capsys):
        assert main(["stats", "--dir", lake_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_models"] > 0

    def test_metrics_reports_weight_store_cache_counters(self, lake_dir, capsys):
        # A search run persists its metrics snapshot into the lake dir...
        assert main([
            "search", "--dir", lake_dir, "--query", "legal court", "-k", "2",
        ]) == 0
        capsys.readouterr()
        # ...which `repro metrics` then reports.
        assert main(["metrics", "--dir", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "lake.weight_store.cache_hits" in out
        assert "lake.weight_store.cache_misses" in out
        assert "search.queries" in out

    def test_metrics_json_round_trips(self, lake_dir, capsys):
        assert main(["stats", "--dir", lake_dir]) == 0
        capsys.readouterr()
        assert main(["metrics", "--dir", lake_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "counters" in payload["metrics"]

    def test_trace_flag_writes_nested_jsonl_spans(self, lake_dir, tmp_path, capsys):
        trace_file = str(tmp_path / "trace.jsonl")
        code = main([
            "--trace", trace_file,
            "search", "--dir", lake_dir, "--query", "legal court statute",
            "--method", "hybrid", "-k", "2",
        ])
        assert code == 0

        records = [
            json.loads(line)
            for line in open(trace_file).read().splitlines()
        ]
        assert records, "trace file must contain spans"
        by_name = {record["name"]: record for record in records}
        # One root span for the CLI command; the engine query nests under it.
        root = by_name["cli.search"]
        assert root["parent_id"] is None
        assert by_name["search.query"]["trace_id"] == root["span_id"]
        span_ids = {record["span_id"] for record in records}
        for record in records:
            if record["parent_id"] is not None:
                assert record["parent_id"] in span_ids
            assert record["duration"] >= 0.0

    def test_metrics_on_missing_dir_is_error(self, tmp_path, capsys):
        assert main(["metrics", "--dir", str(tmp_path / "void")]) == 2
        assert "error:" in capsys.readouterr().err


class TestMetricsTopCLI:
    def test_top_table_sorted_by_p99(self, lake_dir, capsys):
        assert main([
            "search", "--dir", lake_dir, "--query", "legal court", "-k", "2",
        ]) == 0
        capsys.readouterr()
        assert main(["metrics", "--dir", lake_dir, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "slowest operations" in out
        assert "p99" in out

    def test_top_json_still_emits_full_snapshot(self, lake_dir, capsys):
        assert main(["stats", "--dir", lake_dir]) == 0
        capsys.readouterr()
        assert main(["metrics", "--dir", lake_dir, "--top", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "metrics" in payload


class TestTraceReportCLI:
    @pytest.fixture()
    def trace_file(self, lake_dir, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert main([
            "--trace", path,
            "search", "--dir", lake_dir, "--query", "legal court statute",
            "--method", "hybrid", "-k", "2",
        ]) == 0
        return path

    def test_report_prints_critical_path_and_hotspots(self, trace_file, capsys):
        assert main(["trace", "report", trace_file]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "hotspots" in out
        assert "cli.search" in out

    def test_report_json_payload(self, trace_file, capsys):
        assert main(["trace", "report", trace_file, "--json", "--top", "3"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["span_count"] >= 2
        assert payload["trace_count"] == 1
        assert payload["critical_path"][0]["name"] == "cli.search"
        assert len(payload["operations"]) <= 3

    def test_flame_writes_folded_stacks(self, trace_file, tmp_path, capsys):
        flame = str(tmp_path / "flame.folded")
        assert main(["trace", "report", trace_file, "--flame", flame]) == 0
        lines = open(flame).read().splitlines()
        assert lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert path.startswith("cli.search")
            assert int(value) > 0

    def test_empty_trace_is_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "report", str(empty)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_corrupt_trace_is_config_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{broken\n")
        assert main(["trace", "report", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
    def test_missing_trace_file_is_config_error(self, tmp_path, capsys):
        assert main(["trace", "report", str(tmp_path / "void.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err



class TestBenchCLI:
    @pytest.fixture()
    def fake_suite(self, monkeypatch):
        """Replace the registered suite with an instant, tunable bench."""
        import repro.perf as perf

        metrics = {"run_seconds": 1.0, "models": 4.0}
        spec = perf.BenchSpec(
            name="fake",
            fn=lambda mode: dict(metrics),
            tolerances={"run_seconds": 1.25},
        )
        monkeypatch.setattr(perf, "registered_benches", lambda: [spec])
        return metrics

    def test_unknown_select_is_usage_error(self, tmp_path, capsys):
        code = main([
            "bench", "--smoke", "--select", "nope",
            "--results", str(tmp_path), "--no-record",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown benchmark" in err
        assert "generate" in err  # names the known benches

    def test_run_records_to_trajectory(self, fake_suite, tmp_path, capsys):
        from repro.obs.timeseries import load_trajectory

        results = str(tmp_path)
        assert main(["bench", "--smoke", "--results", results]) == 0
        out = capsys.readouterr().out
        assert "fake:" in out and "run_seconds=1" in out
        history = load_trajectory(results, "fake")
        assert len(history) == 1
        assert history[0].mode == "smoke"

    def test_no_record_leaves_trajectory_untouched(self, fake_suite, tmp_path):
        from repro.obs.timeseries import load_trajectory

        results = str(tmp_path)
        assert main([
            "bench", "--smoke", "--results", results, "--no-record",
        ]) == 0
        assert load_trajectory(results, "fake") == []

    def test_check_passes_on_steady_trajectory(self, fake_suite, tmp_path, capsys):
        results = str(tmp_path)
        assert main(["bench", "--smoke", "--results", results]) == 0
        assert main(["bench", "--smoke", "--results", results, "--check"]) == 0
        out = capsys.readouterr().out
        assert "comparable baseline run(s)" in out

    def test_check_fails_on_regression(self, fake_suite, tmp_path, capsys):
        results = str(tmp_path)
        assert main(["bench", "--smoke", "--results", results]) == 0
        fake_suite["run_seconds"] = 2.0  # a genuine 2x slip
        code = main([
            "bench", "--smoke", "--results", results, "--check", "--no-record",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "perf regression in: fake" in captured.err
        assert "regressed" in captured.out

    def test_check_json_payload(self, fake_suite, tmp_path, capsys):
        results = str(tmp_path)
        assert main(["bench", "--smoke", "--results", results]) == 0
        capsys.readouterr()
        assert main([
            "bench", "--smoke", "--results", results, "--check", "--json",
            "--no-record",
        ]) == 0
        (document,) = json.loads(capsys.readouterr().out)
        assert document["result"]["bench"] == "fake"
        assert document["check"]["passed"] is True
        assert document["check"]["baseline_count"] == 1
