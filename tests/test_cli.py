"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def lake_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("cli-lake"))
    code = main([
        "generate", "--dir", directory, "--seed", "3",
        "--foundations", "1", "--chains", "2", "--depth", "1", "--docs", "12",
    ])
    assert code == 0
    return directory


class TestCLI:
    def test_stats(self, lake_dir, capsys):
        assert main(["stats", "--dir", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "models:" in out

    def test_search(self, lake_dir, capsys):
        code = main([
            "search", "--dir", lake_dir, "--query", "legal court statute",
            "--method", "behavioral", "-k", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "1." in out

    def test_declarative_query(self, lake_dir, capsys):
        code = main([
            "query", "--dir", lake_dir,
            "--q", "FIND MODELS WHERE family = 'text_classifier' LIMIT 3",
        ])
        assert code == 0
        assert "text" not in capsys.readouterr().err

    def test_audit(self, lake_dir, capsys):
        code = main(["audit", "--dir", lake_dir, "--model", "foundation-0"])
        out = capsys.readouterr().out
        assert "Audit report" in out
        assert code in (0, 1)

    def test_cite(self, lake_dir, capsys):
        assert main(["cite", "--dir", lake_dir, "--model", "foundation-0"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("model:")
        assert "@misc" in out

    def test_card(self, lake_dir, capsys):
        assert main(["card", "--dir", lake_dir, "--model", "foundation-0"]) == 0
        assert "# foundation-0" in capsys.readouterr().out

    def test_unknown_model_is_error(self, lake_dir, capsys):
        assert main(["cite", "--dir", lake_dir, "--model", "nope"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_lake_is_error(self, tmp_path, capsys):
        assert main(["stats", "--dir", str(tmp_path / "void")]) == 2
