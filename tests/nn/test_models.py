"""Tests for concrete model families and the build registry."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import MLPClassifier, TextClassifier, build_model
from repro.nn.models import register_model_family


class TestMLPClassifier:
    def test_predict_shapes(self):
        model = MLPClassifier(6, 3, hidden=(8,), seed=0)
        x = np.random.default_rng(0).normal(size=(5, 6))
        assert model.predict_proba(x).shape == (5, 3)
        assert model.predict(x).shape == (5,)

    def test_proba_sums_to_one(self):
        model = MLPClassifier(6, 3, hidden=(8,), seed=0)
        x = np.random.default_rng(0).normal(size=(5, 6))
        assert np.allclose(model.predict_proba(x).sum(axis=-1), 1.0)

    def test_spec_round_trip(self):
        model = MLPClassifier(6, 3, hidden=(8, 4), activation="tanh", seed=2)
        rebuilt = build_model(model.architecture_spec())
        rebuilt.load_state_dict(model.state_dict())
        x = np.random.default_rng(1).normal(size=(4, 6))
        assert np.allclose(rebuilt.predict_proba(x), model.predict_proba(x))


class TestTextClassifier:
    def test_padding_ignored_in_pool(self):
        model = TextClassifier(20, 3, dim=8, seed=0)
        with_pad = np.array([[5, 6, 0, 0]])
        without_pad = np.array([[5, 6]])
        a = model.embed_tokens(with_pad).data
        b = model.embed_tokens(without_pad).data
        assert np.allclose(a, b)

    def test_all_padding_is_safe(self):
        model = TextClassifier(20, 3, dim=8, seed=0)
        out = model.predict_proba(np.zeros((1, 4), dtype=np.int64))
        assert np.all(np.isfinite(out))

    def test_spec_round_trip(self):
        model = TextClassifier(30, 4, dim=10, hidden=(12,), seed=1)
        rebuilt = build_model(model.architecture_spec())
        rebuilt.load_state_dict(model.state_dict())
        x = np.array([[1, 2, 3, 0]])
        assert np.allclose(rebuilt.predict_proba(x), model.predict_proba(x))


class TestBuildRegistry:
    def test_unknown_family_raises(self):
        with pytest.raises(ConfigError):
            build_model({"family": "does_not_exist"})

    def test_registered_family_used(self):
        calls = []

        def builder(spec, seed=0):
            calls.append(spec)
            return MLPClassifier(2, 2, seed=seed)

        register_model_family("test_only_family", builder)
        model = build_model({"family": "test_only_family"})
        assert calls and isinstance(model, MLPClassifier)
