"""Tests for loss functions."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import Tensor, cross_entropy, kl_divergence, mse_loss, perplexity


class TestCrossEntropy:
    def test_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]), requires_grad=True)
        loss = cross_entropy(logits, np.array([0, 1]))
        expected = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert abs(loss.item() - expected) < 1e-10

    def test_padding_ignored(self):
        logits = Tensor(np.array([[2.0, 0.0], [100.0, -100.0]]))
        with_pad = cross_entropy(logits, np.array([0, -1]))
        only_first = cross_entropy(
            Tensor(np.array([[2.0, 0.0]])), np.array([0])
        )
        assert abs(with_pad.item() - only_first.item()) < 1e-12

    def test_3d_logits(self):
        rng = np.random.default_rng(0)
        logits = Tensor(rng.normal(size=(2, 3, 4)))
        targets = rng.integers(0, 4, size=(2, 3))
        loss = cross_entropy(logits, targets)
        assert loss.size == 1

    def test_all_padding_raises(self):
        logits = Tensor(np.zeros((2, 3)))
        with pytest.raises(ShapeError):
            cross_entropy(logits, np.array([-1, -1]))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_gradient_direction(self):
        """Gradient should push the correct logit up."""
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        cross_entropy(logits, np.array([1])).backward()
        assert logits.grad[0, 1] < 0  # increasing logit 1 lowers the loss
        assert logits.grad[0, 0] > 0


class TestMSE:
    def test_zero_for_exact(self):
        pred = Tensor(np.ones((2, 2)))
        assert mse_loss(pred, np.ones((2, 2))).item() == 0.0

    def test_value(self):
        pred = Tensor(np.zeros(4))
        assert abs(mse_loss(pred, np.full(4, 2.0)).item() - 4.0) < 1e-12


class TestKLDivergence:
    def test_zero_gradient_at_match(self):
        """When the student matches the teacher, the gradient vanishes."""
        teacher = np.array([[0.7, 0.3]])
        logits = Tensor(np.log(teacher), requires_grad=True)
        kl_divergence(logits, teacher).backward()
        assert np.allclose(logits.grad, 0.0, atol=1e-10)

    def test_decreases_under_optimization(self):
        from repro.nn import Adam, Parameter

        teacher = np.array([[0.8, 0.1, 0.1], [0.2, 0.5, 0.3]])
        logits = Parameter(np.zeros((2, 3)))
        opt = Adam([logits], lr=0.1)
        first = kl_divergence(logits, teacher).item()
        for _ in range(50):
            opt.zero_grad()
            loss = kl_divergence(logits, teacher)
            loss.backward()
            opt.step()
        assert loss.item() < first
        student = np.exp(logits.data) / np.exp(logits.data).sum(-1, keepdims=True)
        assert np.abs(student - teacher).max() < 0.05


class TestPerplexity:
    def test_uniform_model(self):
        vocab = 8
        logits = np.zeros((2, 5, vocab))
        targets = np.random.default_rng(0).integers(0, vocab, size=(2, 5))
        assert abs(perplexity(logits, targets) - vocab) < 1e-9

    def test_perfect_model(self):
        targets = np.array([[1, 2, 3]])
        logits = np.full((1, 3, 5), -1e9)
        logits[0, np.arange(3), targets[0]] = 0.0
        assert abs(perplexity(logits, targets) - 1.0) < 1e-6

    def test_padding_ignored(self):
        logits = np.zeros((1, 4, 6))
        full = perplexity(logits, np.array([[1, 2, -1, -1]]))
        short = perplexity(logits[:, :2], np.array([[1, 2]]))
        assert abs(full - short) < 1e-9
