"""Tests for Module / Parameter / state-dict machinery."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn import MLP, Linear, Module, ModuleList, Parameter, Sequential


class TestNamedParameters:
    def test_discovers_nested(self):
        mlp = MLP([4, 8, 2], seed=0)
        names = [name for name, _ in mlp.named_parameters()]
        assert "net.layers.0.weight" in names
        assert "net.layers.0.bias" in names
        assert "net.layers.2.weight" in names

    def test_deterministic_order(self):
        mlp = MLP([4, 8, 2], seed=0)
        order1 = [name for name, _ in mlp.named_parameters()]
        order2 = [name for name, _ in mlp.named_parameters()]
        assert order1 == order2

    def test_num_parameters(self):
        mlp = MLP([4, 8, 2], seed=0)
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2


class TestStateDict:
    def test_round_trip(self):
        a = MLP([3, 5, 2], seed=1)
        b = MLP([3, 5, 2], seed=2)
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_state_dict_is_copy(self):
        mlp = MLP([3, 5, 2], seed=1)
        state = mlp.state_dict()
        state["net.layers.0.weight"][:] = 0.0
        assert not np.allclose(mlp.net.layers[0].weight.data, 0.0)

    def test_strict_missing_raises(self):
        mlp = MLP([3, 5, 2], seed=1)
        state = mlp.state_dict()
        del state["net.layers.0.bias"]
        with pytest.raises(ShapeError):
            mlp.load_state_dict(state)

    def test_strict_unexpected_raises(self):
        mlp = MLP([3, 5, 2], seed=1)
        state = mlp.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(ShapeError):
            mlp.load_state_dict(state)

    def test_non_strict_partial(self):
        mlp = MLP([3, 5, 2], seed=1)
        state = {"net.layers.0.bias": np.ones(5)}
        mlp.load_state_dict(state, strict=False)
        assert np.allclose(mlp.net.layers[0].bias.data, 1.0)

    def test_shape_mismatch_raises(self):
        mlp = MLP([3, 5, 2], seed=1)
        state = mlp.state_dict()
        state["net.layers.0.weight"] = np.zeros((3, 6))
        with pytest.raises(ShapeError):
            mlp.load_state_dict(state)


class TestTrainEval:
    def test_train_eval_propagates(self):
        mlp = MLP([3, 5, 2], seed=1, dropout=0.5)
        mlp.eval()
        assert all(not m.training for _, m in mlp.named_modules())
        mlp.train()
        assert all(m.training for _, m in mlp.named_modules())


class TestZeroGrad:
    def test_clears_all(self):
        from repro.nn import Tensor, cross_entropy

        mlp = MLP([3, 5, 2], seed=1)
        loss = cross_entropy(mlp(Tensor(np.ones((2, 3)))), np.array([0, 1]))
        loss.backward()
        assert any(p.grad is not None for p in mlp.parameters())
        mlp.zero_grad()
        assert all(p.grad is None for p in mlp.parameters())


class TestModuleList:
    def test_len_and_index(self):
        ml = ModuleList([Linear(2, 3), Linear(3, 4)])
        assert len(ml) == 2
        assert ml[1].out_features == 4

    def test_append(self):
        ml = ModuleList()
        ml.append(Linear(2, 2))
        assert len(ml) == 1
