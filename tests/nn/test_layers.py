"""Tests for core layers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import (
    MLP,
    Activation,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Sequential,
    Tensor,
)


class TestLinear:
    def test_shapes(self):
        layer = Linear(4, 7, seed=0)
        out = layer(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 7)

    def test_no_bias(self):
        layer = Linear(4, 7, seed=0, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 4)))).data.max() == 0.0

    def test_glorot_scale(self):
        layer = Linear(100, 100, seed=0)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit + 1e-12

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            Linear(0, 3)

    def test_seed_determinism(self):
        a = Linear(4, 4, seed=3)
        b = Linear(4, 4, seed=3)
        assert np.array_equal(a.weight.data, b.weight.data)


class TestEmbedding:
    def test_lookup(self):
        emb = Embedding(10, 4, seed=0)
        out = emb(np.array([[1, 2], [3, 3]]))
        assert out.shape == (2, 2, 4)
        assert np.array_equal(out.data[1, 0], out.data[1, 1])

    def test_out_of_range(self):
        emb = Embedding(10, 4, seed=0)
        with pytest.raises(ConfigError):
            emb(np.array([10]))

    def test_gradient_accumulates_on_repeats(self):
        emb = Embedding(5, 3, seed=0)
        out = emb(np.array([2, 2, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[2], 3.0)
        assert np.allclose(emb.weight.grad[1], 0.0)


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(4, 8)))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_gamma_beta_applied(self):
        ln = LayerNorm(4)
        ln.gamma.data = np.full(4, 2.0)
        ln.beta.data = np.full(4, 1.0)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 4)))
        out = ln(x).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5, seed=0)
        drop.training = False
        x = Tensor(np.ones((10, 10)))
        assert np.array_equal(drop(x).data, x.data)

    def test_train_scales(self):
        drop = Dropout(0.5, seed=0)
        drop.training = True
        x = Tensor(np.ones((200, 200)))
        out = drop(x).data
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        assert abs((out > 0).mean() - 0.5) < 0.05

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            Dropout(1.0)


class TestActivationAndMLP:
    def test_unknown_activation(self):
        with pytest.raises(ConfigError):
            Activation("swish")

    def test_mlp_needs_two_sizes(self):
        with pytest.raises(ConfigError):
            MLP([4])

    def test_mlp_forward_shape(self):
        mlp = MLP([4, 16, 8, 3], seed=0)
        out = mlp(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)

    def test_sequential_order(self):
        seq = Sequential(Linear(2, 3, seed=0), Activation("relu"), Linear(3, 1, seed=1))
        out = seq(Tensor(np.ones((1, 2))))
        assert out.shape == (1, 1)
