"""Tests for training loops and gradient utilities."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import (
    MLPClassifier,
    evaluate_accuracy,
    example_gradient,
    flat_gradient,
    per_example_losses,
    train_classifier,
)
from repro.nn.train import iterate_minibatches


class TestIterateMinibatches:
    def test_covers_all_indices(self):
        rng = np.random.default_rng(0)
        batches = list(iterate_minibatches(10, 3, rng))
        flat = np.concatenate(batches)
        assert sorted(flat.tolist()) == list(range(10))

    def test_batch_sizes(self):
        rng = np.random.default_rng(0)
        sizes = [len(b) for b in iterate_minibatches(10, 3, rng)]
        assert sizes == [3, 3, 3, 1]

    def test_no_shuffle_order(self):
        rng = np.random.default_rng(0)
        batches = list(iterate_minibatches(6, 2, rng, shuffle=False))
        assert np.concatenate(batches).tolist() == list(range(6))


@pytest.fixture(scope="module")
def toy_problem():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(120, 5))
    w = rng.normal(size=5)
    y = (x @ w > 0).astype(np.int64)
    return x, y


class TestTrainClassifier:
    def test_learns(self, toy_problem):
        x, y = toy_problem
        model = MLPClassifier(5, 2, hidden=(16,), seed=0)
        train_classifier(model, x, y, epochs=15, lr=5e-3, seed=0)
        assert evaluate_accuracy(model, x, y) > 0.9

    def test_deterministic(self, toy_problem):
        x, y = toy_problem
        a = MLPClassifier(5, 2, hidden=(8,), seed=1)
        b = MLPClassifier(5, 2, hidden=(8,), seed=1)
        ra = train_classifier(a, x, y, epochs=3, seed=7)
        rb = train_classifier(b, x, y, epochs=3, seed=7)
        assert ra.losses == rb.losses
        assert all(
            np.array_equal(pa.data, pb.data)
            for pa, pb in zip(a.parameters(), b.parameters())
        )

    def test_checkpoints_recorded(self, toy_problem):
        x, y = toy_problem
        model = MLPClassifier(5, 2, hidden=(8,), seed=0)
        result = train_classifier(
            model, x, y, epochs=5, seed=0, checkpoint_every=2
        )
        # epochs 2, 4, and the final state at 5.
        assert len(result.checkpoints) == 3
        final = result.checkpoints[-1]
        assert all(
            np.array_equal(final[name], param.data)
            for name, param in model.named_parameters()
        )

    def test_length_mismatch_raises(self, toy_problem):
        x, y = toy_problem
        model = MLPClassifier(5, 2, seed=0)
        with pytest.raises(ConfigError):
            train_classifier(model, x, y[:-1])

    def test_model_left_in_eval_mode(self, toy_problem):
        x, y = toy_problem
        model = MLPClassifier(5, 2, seed=0)
        train_classifier(model, x, y, epochs=1)
        assert not model.training


class TestGradientUtilities:
    def test_example_gradient_keys(self, toy_problem):
        x, y = toy_problem
        model = MLPClassifier(5, 2, hidden=(8,), seed=0)
        grads = example_gradient(model, x[0], int(y[0]))
        assert set(grads) == {name for name, _ in model.named_parameters()}

    def test_flat_gradient_length(self, toy_problem):
        x, y = toy_problem
        model = MLPClassifier(5, 2, hidden=(8,), seed=0)
        grads = example_gradient(model, x[0], int(y[0]))
        assert len(flat_gradient(grads)) == model.num_parameters()

    def test_example_gradient_leaves_model_clean(self, toy_problem):
        x, y = toy_problem
        model = MLPClassifier(5, 2, hidden=(8,), seed=0)
        example_gradient(model, x[0], int(y[0]))
        assert all(p.grad is None for p in model.parameters())

    def test_per_example_losses_match_mean_loss(self, toy_problem):
        from repro.nn import Tensor, cross_entropy

        x, y = toy_problem
        model = MLPClassifier(5, 2, hidden=(8,), seed=0)
        per = per_example_losses(model, x[:10], y[:10])
        mean = cross_entropy(model(x[:10]), y[:10]).item()
        assert abs(per.mean() - mean) < 1e-10
