"""Tests for the tiny transformer language model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import TransformerLM, build_model, train_language_model


@pytest.fixture(scope="module")
def lm():
    return TransformerLM(
        vocab_size=30, d_model=16, num_heads=2, num_layers=2, max_seq_len=12, seed=7
    )


class TestForward:
    def test_logit_shape(self, lm):
        out = lm(np.array([[1, 2, 3], [4, 5, 6]]))
        assert out.shape == (2, 3, 30)

    def test_1d_input_promoted(self, lm):
        out = lm(np.array([1, 2, 3]))
        assert out.shape == (1, 3, 30)

    def test_sequence_too_long(self, lm):
        with pytest.raises(ConfigError):
            lm(np.ones((1, 13), dtype=np.int64))

    def test_causality(self, lm):
        a = np.array([[1, 2, 3, 4]])
        b = np.array([[1, 2, 3, 9]])
        out_a = lm(a).data
        out_b = lm(b).data
        assert np.allclose(out_a[0, :3], out_b[0, :3], atol=1e-10)

    def test_hidden_states_count(self, lm):
        states = lm.hidden_states(np.array([[1, 2, 3]]))
        assert len(states) == lm.num_layers + 1


class TestBehavior:
    def test_next_token_distribution_sums_to_one(self, lm):
        dist = lm.next_token_distribution(np.array([1, 2, 3]))
        assert dist.shape == (30,)
        assert abs(dist.sum() - 1.0) < 1e-10

    def test_generate_length_and_range(self, lm):
        tokens = lm.generate(np.array([1, 2]), 5, np.random.default_rng(0))
        assert len(tokens) == 5
        assert all(0 <= t < 30 for t in tokens)

    def test_generate_deterministic_at_zero_temperature(self, lm):
        a = lm.generate(np.array([1, 2]), 4, np.random.default_rng(0), temperature=0)
        b = lm.generate(np.array([1, 2]), 4, np.random.default_rng(9), temperature=0)
        assert a == b

    def test_logit_bias_steers_sampling(self, lm):
        bias = np.full(30, -1e9)
        bias[7] = 1e9
        tokens = lm.generate(
            np.array([1]), 3, np.random.default_rng(0), logit_bias=bias
        )
        assert tokens == [7, 7, 7]


class TestTraining:
    def test_loss_decreases(self):
        model = TransformerLM(
            vocab_size=20, d_model=16, num_heads=2, num_layers=1,
            max_seq_len=10, seed=0,
        )
        rng = np.random.default_rng(0)
        # Learnable structure: token t follows t-1 cyclically.
        starts = rng.integers(0, 20, size=32)
        seqs = (starts[:, None] + np.arange(10)[None, :]) % 20
        result = train_language_model(model, seqs, epochs=4, batch_size=8, seed=0)
        assert result.losses[-1] < result.losses[0]

    def test_spec_round_trip(self, lm):
        rebuilt = build_model(lm.architecture_spec())
        rebuilt.load_state_dict(lm.state_dict())
        x = np.array([[1, 2, 3]])
        assert np.allclose(rebuilt(x).data, lm(x).data)
