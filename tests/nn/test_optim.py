"""Tests for optimizers."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import SGD, Adam, Parameter


def quadratic_step(optimizer, param, target):
    optimizer.zero_grad()
    # d/dp of 0.5*(p - target)^2 = (p - target)
    param.grad = param.data - target
    optimizer.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([10.0]))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, param, 3.0)
        assert abs(param.data[0] - 3.0) < 1e-3

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Parameter(np.array([10.0]))
            opt = SGD([param], lr=0.01, momentum=momentum)
            for _ in range(50):
                quadratic_step(opt, param, 0.0)
            return abs(param.data[0])

        assert run(0.9) < run(0.0)

    def test_invalid_lr(self):
        with pytest.raises(ConfigError):
            SGD([Parameter(np.zeros(1))], lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ConfigError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.0)

    def test_skips_params_without_grad(self):
        param = Parameter(np.array([1.0]))
        opt = SGD([param], lr=0.1)
        opt.step()  # no grad set: no change, no crash
        assert param.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.array([10.0]))
        opt = Adam([param], lr=0.3)
        for _ in range(200):
            quadratic_step(opt, param, -2.0)
        assert abs(param.data[0] + 2.0) < 1e-2

    def test_weight_decay_shrinks(self):
        param = Parameter(np.array([5.0]))
        opt = Adam([param], lr=0.1, weight_decay=0.5)
        for _ in range(50):
            opt.zero_grad()
            param.grad = np.zeros(1)  # only decay acts
            opt.step()
        assert abs(param.data[0]) < 5.0

    def test_bias_correction_first_step(self):
        """First Adam step should move by ~lr regardless of grad scale."""
        for scale in (1e-3, 1.0, 1e3):
            param = Parameter(np.array([0.0]))
            opt = Adam([param], lr=0.1)
            opt.zero_grad()
            param.grad = np.array([scale])
            opt.step()
            assert abs(abs(param.data[0]) - 0.1) < 1e-6
