"""Tests for multi-head self-attention."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import MultiHeadSelfAttention, Tensor
from repro.nn.attention import causal_mask


class TestCausalMask:
    def test_shape_and_values(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert np.all(mask[np.tril_indices(4)] == 0)
        assert np.all(mask[np.triu_indices(4, k=1)] < -1e8)


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, seed=0)
        out = attn(Tensor(np.random.default_rng(0).normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_head_divisibility(self):
        with pytest.raises(ConfigError):
            MultiHeadSelfAttention(d_model=7, num_heads=2)

    def test_causal_no_future_leakage(self):
        """Changing a future token must not change earlier outputs."""
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, seed=0, causal=True)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 6, 8))
        base = attn(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 5, :] += 10.0
        out = attn(Tensor(perturbed)).data
        assert np.allclose(base[0, :5], out[0, :5], atol=1e-10)
        assert not np.allclose(base[0, 5], out[0, 5])

    def test_non_causal_attends_everywhere(self):
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, seed=0, causal=False)
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 4, 8))
        base = attn(Tensor(x)).data
        perturbed = x.copy()
        perturbed[0, 3, :] += 10.0
        out = attn(Tensor(perturbed)).data
        assert not np.allclose(base[0, 0], out[0, 0])

    def test_attention_pattern_rows_sum_to_one(self):
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, seed=0)
        x = Tensor(np.random.default_rng(2).normal(size=(1, 5, 8)))
        pattern = attn.attention_pattern(x)
        assert pattern.shape == (1, 2, 5, 5)
        assert np.allclose(pattern.sum(axis=-1), 1.0)

    def test_attention_pattern_is_causal(self):
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, seed=0)
        x = Tensor(np.random.default_rng(2).normal(size=(1, 5, 8)))
        pattern = attn.attention_pattern(x)
        upper = np.triu(np.ones((5, 5)), k=1).astype(bool)
        assert np.all(pattern[0, :, upper] < 1e-8)

    def test_gradients_flow(self):
        attn = MultiHeadSelfAttention(d_model=8, num_heads=2, seed=0)
        x = Tensor(np.random.default_rng(3).normal(size=(1, 4, 8)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.q_proj.weight.grad is not None
