"""Gradient correctness of the autograd engine (numeric finite differences)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.autograd import Tensor, concat, stack, where

RNG = np.random.default_rng(1234)


def numeric_check(fn, shapes, tol=1e-5):
    """Compare analytic grads of scalarized fn against finite differences."""
    tensors = [Tensor(RNG.normal(size=s), requires_grad=True) for s in shapes]

    def scalar():
        out = fn(*tensors)
        return out if out.size == 1 else out.sum()

    loss = scalar()
    loss.backward()
    eps = 1e-6
    for tensor in tensors:
        numeric = np.zeros_like(tensor.data)
        it = np.nditer(tensor.data, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            original = tensor.data[idx]
            tensor.data[idx] = original + eps
            up = scalar().data
            tensor.data[idx] = original - eps
            down = scalar().data
            tensor.data[idx] = original
            numeric[idx] = (up - down) / (2 * eps)
            it.iternext()
        assert np.abs(numeric - tensor.grad).max() < tol


class TestElementwiseGrads:
    def test_add_mul(self):
        numeric_check(lambda a, b: a * b + a, [(3, 4), (3, 4)])

    def test_broadcast_add(self):
        numeric_check(lambda a, b: a + b, [(3, 4), (4,)])

    def test_broadcast_mul_scalar_tensor(self):
        numeric_check(lambda a, b: a * b, [(2, 3), (1, 3)])

    def test_div(self):
        tensors = [Tensor(RNG.normal(size=(3,)) + 3.0, requires_grad=True)]
        out = (1.0 / tensors[0]).sum()
        out.backward()
        expected = -1.0 / tensors[0].data ** 2
        assert np.allclose(tensors[0].grad, expected)

    def test_pow(self):
        numeric_check(lambda a: (a * a + 1.0) ** 1.5, [(4,)])

    def test_relu(self):
        numeric_check(lambda a: a.relu(), [(5, 5)])

    def test_tanh_sigmoid(self):
        numeric_check(lambda a: a.tanh().sigmoid(), [(3, 3)])

    def test_gelu(self):
        numeric_check(lambda a: a.gelu(), [(4, 4)], tol=1e-4)

    def test_exp_log(self):
        numeric_check(lambda a: ((a * a) + 0.5).log().exp(), [(3,)])


class TestMatmulGrads:
    def test_2d(self):
        numeric_check(lambda a, b: a @ b, [(3, 4), (4, 2)])

    def test_batched(self):
        numeric_check(lambda a, b: a @ b, [(2, 3, 4), (2, 4, 2)], tol=1e-4)

    def test_broadcast_batched(self):
        numeric_check(lambda a, b: a @ b, [(3, 4), (2, 4, 5)], tol=1e-4)

    def test_vector_matrix(self):
        numeric_check(lambda a, b: a @ b, [(4,), (4, 3)])

    def test_matrix_vector(self):
        numeric_check(lambda a, b: a @ b, [(3, 4), (4,)])

    def test_vector_vector(self):
        numeric_check(lambda a, b: a @ b, [(4,), (4,)])


class TestReductionsAndShape:
    def test_sum_axis(self):
        numeric_check(lambda a: a.sum(axis=0), [(3, 4)])

    def test_sum_keepdims(self):
        numeric_check(lambda a: a - a.sum(axis=-1, keepdims=True), [(2, 5)])

    def test_mean(self):
        numeric_check(lambda a: a.mean(axis=1), [(4, 3)])

    def test_reshape_transpose(self):
        numeric_check(lambda a: a.transpose(1, 0).reshape(2, 6), [(4, 3)])

    def test_swapaxes(self):
        numeric_check(lambda a: a.swapaxes(-1, -2) @ a, [(2, 3, 4)], tol=1e-4)

    def test_getitem(self):
        numeric_check(lambda a: a[1:, :2], [(4, 4)])

    def test_take_rows(self):
        idx = np.array([0, 2, 2, 1])
        numeric_check(lambda a: a.take_rows(idx), [(4, 3)])


class TestSoftmaxFamily:
    def test_softmax(self):
        fixed = Tensor(RNG.normal(size=(2, 5)))
        numeric_check(lambda a: a.softmax(axis=-1) * fixed, [(2, 5)])

    def test_log_softmax(self):
        fixed = Tensor(RNG.normal(size=(2, 5)))
        numeric_check(lambda a: a.log_softmax(axis=-1) * fixed, [(2, 5)])

    def test_softmax_rows_sum_to_one(self):
        t = Tensor(RNG.normal(size=(4, 7)))
        assert np.allclose(t.softmax(axis=-1).data.sum(axis=-1), 1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        t = Tensor(RNG.normal(size=(3, 6)))
        assert np.allclose(
            t.log_softmax(axis=-1).data, np.log(t.softmax(axis=-1).data)
        )


class TestStructuralOps:
    def test_concat(self):
        numeric_check(lambda a, b: concat([a, b], axis=1), [(2, 3), (2, 2)])

    def test_stack(self):
        numeric_check(lambda a, b: stack([a, b], axis=0), [(3,), (3,)])

    def test_where(self):
        cond = RNG.random((3, 3)) > 0.5
        numeric_check(lambda a, b: where(cond, a, b), [(3, 3), (3, 3)])


class TestGraphMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ShapeError):
            (t * 2).backward()

    def test_grad_accumulates_across_backward_calls(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t.sum()).backward()
        (t.sum()).backward()
        assert np.allclose(t.grad, 2.0)

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        t.sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        (d * 2).sum()  # no backward path, no error

    def test_shared_subexpression(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        y = t * t  # t used twice
        y.sum().backward()
        assert np.allclose(t.grad, 4.0)

    def test_no_grad_for_constants(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3))
        (a * b).sum().backward()
        assert b.grad is None

    def test_diamond_graph(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        left = t * 2
        right = t * 5
        (left + right).sum().backward()
        assert np.allclose(t.grad, 7.0)
