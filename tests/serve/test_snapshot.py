"""Tests for LakeSnapshot handle ownership and hot-swap semantics."""

import pytest

from repro.serve import LakeSnapshot


class TestSnapshotLifecycle:
    def test_open_builds_working_engine(self, serve_lake_dir):
        with LakeSnapshot.open(serve_lake_dir) as snapshot:
            hits = snapshot.engine.search("legal court statute", k=3)
            assert hits
            assert snapshot.directory == serve_lake_dir
            assert not snapshot.closed

    def test_close_releases_every_weight_handle(self, serve_lake_dir):
        snapshot = LakeSnapshot.open(serve_lake_dir)
        # Force a weight read so the store memoizes at least one memmap.
        record = next(iter(snapshot.lake))
        snapshot.lake.weights.get(record.weights_digest)
        assert snapshot.open_handles >= 1
        snapshot.close()
        assert snapshot.open_handles == 0
        assert snapshot.closed

    def test_close_is_idempotent(self, serve_lake_dir):
        snapshot = LakeSnapshot.open(serve_lake_dir)
        snapshot.close()
        snapshot.close()
        assert snapshot.closed

    def test_handles_do_not_grow_per_read(self, serve_lake_dir):
        """Repeated reads of one model reuse the memoized memmap."""
        snapshot = LakeSnapshot.open(serve_lake_dir)
        try:
            record = next(iter(snapshot.lake))
            snapshot.lake.weights.get(record.weights_digest)
            base = snapshot.open_handles
            for _ in range(5):
                snapshot.lake.weights.get(record.weights_digest)
            assert snapshot.open_handles == base
        finally:
            snapshot.close()

    def test_reload_returns_fresh_snapshot(self, serve_lake_dir):
        old = LakeSnapshot.open(serve_lake_dir)
        new = old.reload()
        try:
            assert new is not old
            assert new.directory == old.directory
            query = "legal court statute"
            before = [h.model_id for h in old.engine.search(query, k=3)]
            # Hot-swap order: publish the new snapshot, then close the
            # old one; the new one must be unaffected.
            old.close()
            after = [h.model_id for h in new.engine.search(query, k=3)]
            assert after == before
        finally:
            new.close()
            old.close()

    def test_stragglers_survive_close(self, serve_lake_dir):
        """Arrays handed out before close() stay readable after it."""
        snapshot = LakeSnapshot.open(serve_lake_dir)
        record = next(iter(snapshot.lake))
        arrays = snapshot.lake.weights.get(record.weights_digest)
        snapshot.close()
        for array in arrays.values():
            assert array.shape is not None
            float(array.ravel()[0])  # actually touch the mapping
