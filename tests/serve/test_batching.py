"""Unit tests for the micro-batcher: coalescing, dedup, drain."""

import asyncio
import threading

import pytest

from repro.serve import MicroBatcher


class RecordingRunner:
    """Echoes each key back as its result and records every call."""

    def __init__(self, delay: float = 0.0, fail: Exception | None = None):
        self.calls = []
        self.delay = delay
        self.fail = fail
        self._lock = threading.Lock()

    def __call__(self, keys):
        with self._lock:
            self.calls.append(list(keys))
        if self.delay:
            import time

            time.sleep(self.delay)
        if self.fail is not None:
            raise self.fail
        return [("result", key) for key in keys]


class TestMicroBatcher:
    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(RecordingRunner(), window=-0.001)

    def test_concurrent_queries_share_one_dispatch(self):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, window=0.05)
            results = await asyncio.gather(
                batcher.submit("a", 5, "hybrid"),
                batcher.submit("b", 5, "hybrid"),
                batcher.submit("c", 3, "keyword"),
            )
            return results

        results = asyncio.run(scenario())
        assert len(runner.calls) == 1
        assert sorted(runner.calls[0]) == [
            ("a", 5, "hybrid"), ("b", 5, "hybrid"), ("c", 3, "keyword"),
        ]
        assert results[0] == ("result", ("a", 5, "hybrid"))
        assert results[2] == ("result", ("c", 3, "keyword"))

    def test_identical_queries_deduplicate(self):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, window=0.05)
            return await asyncio.gather(
                *(batcher.submit("same", 5, "hybrid") for _ in range(6))
            )

        results = asyncio.run(scenario())
        assert runner.calls == [[("same", 5, "hybrid")]]
        assert all(result is results[0] for result in results)

    def test_max_batch_dispatches_before_window(self):
        runner = RecordingRunner()

        async def scenario():
            # A window long enough that only the max_batch trigger can
            # explain a dispatch inside the gather timeout.
            batcher = MicroBatcher(runner, window=30.0, max_batch=2)
            return await asyncio.wait_for(
                asyncio.gather(
                    batcher.submit("a", 5, "hybrid"),
                    batcher.submit("b", 5, "hybrid"),
                ),
                timeout=5.0,
            )

        results = asyncio.run(scenario())
        assert len(results) == 2
        assert len(runner.calls) == 1

    def test_window_zero_dispatches_each_alone(self):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, window=0)
            return await asyncio.gather(
                batcher.submit("a", 5, "hybrid"),
                batcher.submit("b", 5, "hybrid"),
            )

        results = asyncio.run(scenario())
        assert len(results) == 2
        assert sorted(len(call) for call in runner.calls) == [1, 1]

    def test_runner_failure_reaches_every_waiter(self):
        runner = RecordingRunner(fail=RuntimeError("engine exploded"))

        async def scenario():
            batcher = MicroBatcher(runner, window=0.05)
            return await asyncio.gather(
                batcher.submit("a", 5, "hybrid"),
                batcher.submit("b", 5, "hybrid"),
                return_exceptions=True,
            )

        results = asyncio.run(scenario())
        assert len(results) == 2
        for result in results:
            assert isinstance(result, RuntimeError)

    def test_drain_dispatches_tail_then_rejects(self):
        runner = RecordingRunner()

        async def scenario():
            batcher = MicroBatcher(runner, window=30.0)
            pending = asyncio.ensure_future(batcher.submit("a", 5, "hybrid"))
            await asyncio.sleep(0)  # let the submit open its window
            await batcher.drain()
            result = await pending
            with pytest.raises(RuntimeError):
                await batcher.submit("b", 5, "hybrid")
            return result

        result = asyncio.run(scenario())
        assert result == ("result", ("a", 5, "hybrid"))
        assert runner.calls == [[("a", 5, "hybrid")]]

    def test_queue_depth_tracks_pending(self):
        async def scenario():
            batcher = MicroBatcher(RecordingRunner(), window=30.0)
            assert batcher.queue_depth == 0
            pending = asyncio.ensure_future(batcher.submit("a", 5, "hybrid"))
            await asyncio.sleep(0)
            depth = batcher.queue_depth
            await batcher.drain()
            await pending
            return depth

        assert asyncio.run(scenario()) == 1
