"""HTTP-level tests for the lake server: endpoints, parity, shutdown."""

import threading
from http.client import HTTPConnection

import pytest


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = server.get("/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_search_get(self, server):
        status, payload = server.search("legal court statute", k=3)
        assert status == 200
        assert payload["method"] == "hybrid"
        assert payload["k"] == 3
        assert 1 <= len(payload["results"]) <= 3
        for hit in payload["results"]:
            assert hit["model_id"]
            assert isinstance(float(hit["score"]), float)

    def test_search_post_body(self, server):
        status, payload = server.post(
            "/search", {"q": "medical diagnosis", "k": 2, "method": "behavioral"}
        )
        assert status == 200
        assert payload["method"] == "behavioral"
        assert len(payload["results"]) <= 2

    def test_search_matches_sequential_engine(self, server):
        engine = server.server.snapshot.engine
        for method in ("hybrid", "behavioral", "keyword"):
            status, payload = server.search("legal court statute", k=5,
                                            method=method)
            assert status == 200
            expected = engine.search("legal court statute", k=5, method=method)
            assert [h["model_id"] for h in payload["results"]] == [
                h.model_id for h in expected
            ]
            for served, direct in zip(payload["results"], expected):
                assert float(served["score"]) == pytest.approx(
                    float(direct.score), abs=1e-9
                )

    def test_search_missing_query(self, server):
        status, payload = server.get("/search?k=3")
        assert status == 400
        assert "q" in payload["error"]

    def test_search_bad_k(self, server):
        status, _ = server.get("/search?q=legal&k=zero")
        assert status == 400
        status, _ = server.get("/search?q=legal&k=0")
        assert status == 400

    def test_search_bad_method(self, server):
        status, payload = server.get("/search?q=legal&method=psychic")
        assert status == 400
        assert "psychic" in payload["error"]

    def test_search_weight_method_rejected(self, server):
        status, _ = server.get("/search?q=legal&method=weight")
        assert status == 400

    def test_search_wrong_http_method(self, server):
        conn = HTTPConnection("127.0.0.1", server.port)
        try:
            conn.request("PUT", "/search?q=legal")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_model_endpoint(self, server):
        record = next(iter(server.server.snapshot.lake))
        status, payload = server.get(f"/model/{record.model_id}")
        assert status == 200
        assert payload["model_id"] == record.model_id
        assert payload["weights_digest"] == record.weights_digest
        assert payload["family"] == record.family
        assert 0.0 <= payload["card_completeness"] <= 1.0

    def test_model_not_found(self, server):
        status, _ = server.get("/model/nope-such-model")
        assert status == 404

    def test_unknown_route(self, server):
        status, _ = server.get("/nope")
        assert status == 404

    def test_stats(self, server):
        server.search("legal court statute", k=2)
        status, payload = server.get("/stats")
        assert status == 200
        assert payload["models"] == len(server.server.snapshot.lake)
        assert payload["batching"]["window_seconds"] == pytest.approx(0.002)
        assert payload["draining"] is False
        flat = str(payload["metrics"])
        assert "serve.requests" in flat
        assert "serve.search.latency_seconds" in flat

    def test_keep_alive_reuses_connection(self, server):
        conn = HTTPConnection("127.0.0.1", server.port)
        try:
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


class TestConcurrency:
    QUERIES = (
        "legal court statute",
        "medical diagnosis notes",
        "code compiler tokens",
        "news report headline",
    )

    def test_concurrent_rankings_match_sequential(self, server):
        """N threads of identical queries get byte-identical rankings."""
        engine = server.server.snapshot.engine
        expected = {
            query: [
                (h.model_id, float(h.score))
                for h in engine.search(query, k=5, method="hybrid")
            ]
            for query in self.QUERIES
        }
        failures = []
        barrier = threading.Barrier(8)

        def worker(wid: int) -> None:
            barrier.wait()
            for repeat in range(5):
                query = self.QUERIES[(wid + repeat) % len(self.QUERIES)]
                status, payload = server.search(query, k=5)
                got = [
                    (h["model_id"], float(h["score"]))
                    for h in payload["results"]
                ]
                if status != 200 or got != expected[query]:
                    failures.append((wid, query, status, got))

        threads = [
            # Failures list is only read after every join below.
            threading.Thread(target=worker, args=(wid,)) for wid in range(8)  # repro: noqa[shared-state-race]
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_batched_equals_per_request(self, make_server):
        """The same burst through window=0 and window>0 ranks identically."""
        burst = [(query, 5, "hybrid") for query in self.QUERIES] * 2

        def run_burst(harness):
            results = {}
            threads = []

            def one(query, k, method):
                status, payload = harness.search(query, k=k, method=method)
                assert status == 200
                results[(query, k, method)] = [
                    (h["model_id"], float(h["score"]))
                    for h in payload["results"]
                ]

            for triple in burst:
                # Distinct keys per thread; dict reads happen after join.
                threads.append(threading.Thread(target=one, args=triple))  # repro: noqa[shared-state-race]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return results

        batched = run_burst(make_server(window=0.005))
        unbatched = run_burst(make_server(window=0.0))
        assert batched == unbatched


class TestShutdown:
    def test_draining_rejects_with_503(self, make_server):
        harness = make_server(window=0.0)
        # Flip the drain flag directly: deterministic, no signal races.
        harness.server._draining = True
        try:
            status, payload = harness.search("legal court statute")
            assert status == 503
            assert payload["error"] == "draining"
            health_status, health = harness.get("/healthz")
            assert health_status == 200
            assert health["status"] == "draining"
        finally:
            harness.server._draining = False

    def test_graceful_stop_closes_listener_and_snapshot(self, serve_lake_dir):
        from tests.serve.conftest import ServerHarness

        harness = ServerHarness(serve_lake_dir, window=0.002).start()
        status, _ = harness.search("legal court statute", k=2)
        assert status == 200
        port = harness.port
        harness.stop()
        assert harness.snapshot.closed
        with pytest.raises(OSError):
            conn = HTTPConnection("127.0.0.1", port)
            try:
                conn.request("GET", "/healthz")
                conn.getresponse()
            finally:
                conn.close()
