"""Serve-layer fixtures: a saved lake and an in-process HTTP server.

The server runs a real :class:`~repro.serve.server.LakeServer` on a
private event loop in a daemon thread, so tests exercise the actual
socket path (HTTP parsing, keep-alive, micro-batching) rather than the
handlers in isolation.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from http.client import HTTPConnection
from urllib.parse import quote

import pytest

from repro.lake import save_lake
from repro.serve import LakeServer, LakeSnapshot, ServeConfig


@pytest.fixture(scope="session")
def serve_lake_dir(lake_bundle, tmp_path_factory):
    """The shared generated lake, saved sharded for snapshot opens."""
    directory = str(tmp_path_factory.mktemp("serve") / "lake")
    save_lake(lake_bundle.lake, directory, sharded=True)
    return directory


class ServerHarness:
    """Own a snapshot + LakeServer on a background event loop."""

    def __init__(self, directory: str, window: float = 0.002,
                 workers: int = 2, max_batch: int = 64):
        self.snapshot = LakeSnapshot.open(directory)
        self.server = LakeServer(
            self.snapshot,
            ServeConfig(
                directory=directory, host="127.0.0.1", port=0,
                workers=workers, window=window, max_batch=max_batch,
            ),
        )
        self._loop = asyncio.new_event_loop()
        self._stop_event = None
        self._ready = threading.Event()
        self._failure = None
        self._thread = threading.Thread(
            target=self._run, name="test-serve-loop", daemon=True
        )
        self.port = 0

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._main())
        except BaseException as exc:  # noqa: BLE001 - re-raised by stop()
            self._failure = exc
            self._ready.set()
        finally:
            self._loop.close()

    async def _main(self) -> None:
        self._stop_event = asyncio.Event()
        await self.server.start()
        self.port = self.server.port
        self._ready.set()
        await self._stop_event.wait()
        await self.server.stop()

    def start(self) -> "ServerHarness":
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise RuntimeError("test server did not start")
        if self._failure is not None:
            raise RuntimeError(f"test server failed: {self._failure}")
        return self

    def stop(self) -> None:
        with contextlib.suppress(RuntimeError):
            # Loop already closed if the server crashed; re-raised below.
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=60)
        if self._failure is not None:
            raise RuntimeError(f"test server crashed: {self._failure}")

    # -- tiny HTTP client ----------------------------------------------
    def get(self, target: str):
        """(status, parsed-json) for one GET on a fresh connection."""
        conn = HTTPConnection("127.0.0.1", self.port)
        try:
            conn.request("GET", target)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def post(self, target: str, payload: dict):
        conn = HTTPConnection("127.0.0.1", self.port)
        try:
            body = json.dumps(payload)
            conn.request(
                "POST", target, body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def search(self, query: str, k: int = 5, method: str = "hybrid"):
        return self.get(
            f"/search?q={quote(query)}&k={k}&method={method}"
        )


@pytest.fixture()
def make_server(serve_lake_dir):
    """Factory for per-test servers with custom batching knobs."""
    harnesses = []

    def factory(**kwargs) -> ServerHarness:
        harness = ServerHarness(serve_lake_dir, **kwargs).start()
        harnesses.append(harness)
        return harness

    yield factory
    for harness in harnesses:
        with contextlib.suppress(RuntimeError):
            harness.stop()


@pytest.fixture(scope="module")
def server(serve_lake_dir):
    """One long-lived batching server shared by a test module."""
    harness = ServerHarness(serve_lake_dir, window=0.002).start()
    yield harness
    harness.stop()
