"""Tests for the version graph."""

import pytest

from repro.core.versioning import VersionGraph
from repro.errors import ModelNotFoundError
from repro.transforms import TransformRecord


@pytest.fixture()
def chain_graph():
    graph = VersionGraph()
    graph.add_edge("root", "mid", TransformRecord(kind="finetune"))
    graph.add_edge("mid", "leaf", TransformRecord(kind="quantize"))
    graph.add_edge("root", "other", TransformRecord(kind="lora"))
    graph.add_model("island")
    return graph


class TestStructure:
    def test_parents_children(self, chain_graph):
        assert chain_graph.parents("mid") == ["root"]
        assert set(chain_graph.children("root")) == {"mid", "other"}

    def test_ancestors_descendants(self, chain_graph):
        assert chain_graph.ancestors("leaf") == {"root", "mid"}
        assert chain_graph.descendants("root") == {"mid", "leaf", "other"}

    def test_roots(self, chain_graph):
        assert set(chain_graph.roots()) == {"root", "island"}

    def test_root_of(self, chain_graph):
        assert chain_graph.root_of("leaf") == "root"
        assert chain_graph.root_of("island") == "island"

    def test_lineage_path(self, chain_graph):
        assert chain_graph.lineage_path("root", "leaf") == ["root", "mid", "leaf"]
        assert chain_graph.lineage_path("other", "leaf") is None

    def test_transform_between(self, chain_graph):
        record = chain_graph.transform_between("mid", "leaf")
        assert record is not None and record.kind == "quantize"
        assert chain_graph.transform_between("root", "leaf") is None

    def test_is_version_of(self, chain_graph):
        assert chain_graph.is_version_of("leaf", "other")  # common root
        assert not chain_graph.is_version_of("leaf", "island")

    def test_unknown_node_raises(self, chain_graph):
        with pytest.raises(ModelNotFoundError):
            chain_graph.parents("nope")

    def test_to_dot(self, chain_graph):
        dot = chain_graph.to_dot()
        assert "digraph" in dot
        assert "finetune" in dot


class TestFromLakeHistory:
    def test_matches_ground_truth(self, lake_bundle):
        graph = VersionGraph.from_lake_history(lake_bundle.lake)
        assert graph.edge_set() == lake_bundle.truth.edge_set()

    def test_hidden_history_omitted(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        child = next(c for _, c, _ in bundle.truth.edges)
        bundle.lake.set_history_visibility(child, False)
        graph = VersionGraph.from_lake_history(bundle.lake)
        assert not graph.parents(child)
        assert child in graph  # still listed as an isolated node
