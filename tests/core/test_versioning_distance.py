"""Tests for model distances."""

import numpy as np
import pytest

from repro.core.versioning import (
    behavioral_distance,
    model_distance,
    per_layer_distances,
    states_aligned,
    weight_cosine_distance,
    weight_l2_distance,
)
from repro.index import BehavioralEmbedder


class TestAlignment:
    def test_aligned(self, foundation_model):
        state = foundation_model.state_dict()
        assert states_aligned(state, state)

    def test_misaligned_names(self, foundation_model):
        state = foundation_model.state_dict()
        other = dict(state)
        other["extra"] = np.zeros(3)
        assert not states_aligned(state, other)

    def test_misaligned_shapes(self, foundation_model):
        state = foundation_model.state_dict()
        other = {k: v for k, v in state.items()}
        key = next(iter(other))
        other[key] = np.zeros(other[key].shape + (1,)).squeeze(-1)[:1]
        assert not states_aligned(state, other)


class TestWeightDistances:
    def test_zero_self_distance(self, foundation_model):
        state = foundation_model.state_dict()
        assert weight_l2_distance(state, state) == 0.0
        assert weight_cosine_distance(state, state) < 1e-12

    def test_parent_child_closer_than_siblings(self, lake_bundle):
        """A child is nearer its parent than two siblings are to each
        other (each sibling drifted independently)."""
        truth = lake_bundle.truth
        lake = lake_bundle.lake
        lora_edges = [e for e in truth.edges if e[2].kind == "lora"]
        assert len(lora_edges) >= 2
        parent_id = lora_edges[0][0][0]
        siblings = [e[1] for e in lora_edges if e[0][0] == parent_id]
        if len(siblings) < 2:
            siblings = [lora_edges[0][1], lora_edges[1][1]]
        parent_state = lake.get_model(parent_id, force=True).state_dict()
        child_state = lake.get_model(lora_edges[0][1], force=True).state_dict()
        sib_a = lake.get_model(siblings[0], force=True).state_dict()
        sib_b = lake.get_model(siblings[1], force=True).state_dict()
        if states_aligned(sib_a, sib_b):
            assert weight_l2_distance(parent_state, child_state) < weight_l2_distance(
                sib_a, sib_b
            ) * 1.05

    def test_per_layer(self, foundation_model):
        state = foundation_model.state_dict()
        shifted = {k: v + 1.0 for k, v in state.items()}
        distances = per_layer_distances(state, shifted)
        assert set(distances) == set(state)
        assert all(v > 0 for v in distances.values())


class TestBehavioralFallback:
    def test_cross_architecture(self, lake_bundle, probes):
        lake = lake_bundle.lake
        ids = lake_bundle.truth.foundations
        a = lake.get_model(ids[0], force=True)
        b = lake.get_model(ids[1], force=True)
        embedder = BehavioralEmbedder(probes)
        distance = behavioral_distance(a, b, embedder)
        assert 0.0 <= distance <= 2.0

    def test_model_distance_dispatches(self, lake_bundle, probes):
        lake = lake_bundle.lake
        ids = lake_bundle.truth.foundations
        a = lake.get_model(ids[0], force=True)
        b = lake.get_model(ids[1], force=True)
        with pytest.raises(ValueError):
            model_distance(a, b)  # misaligned, no fallback provided
        embedder = BehavioralEmbedder(probes)
        assert model_distance(a, b, embedder) >= 0.0
        assert model_distance(a, a) == 0.0  # aligned path
