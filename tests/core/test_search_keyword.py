"""Tests for BM25 keyword search."""

import pytest

from repro.core.search import BM25Index, build_card_index
from repro.errors import ConfigError


@pytest.fixture()
def index():
    idx = BM25Index()
    idx.add("legal-model", "legal court contract statute model for lawyers")
    idx.add("medical-model", "medical clinical patient diagnosis model")
    idx.add("chef-model", "recipe sauce oven cooking model")
    return idx


class TestBM25:
    def test_topical_match(self, index):
        results = index.query("court statute legal", k=3)
        assert results[0][0] == "legal-model"

    def test_rare_terms_weigh_more(self, index):
        # "model" appears everywhere; "diagnosis" only in one doc.
        results = index.query("model diagnosis", k=3)
        assert results[0][0] == "medical-model"

    def test_no_match_empty(self, index):
        assert index.query("astronomy telescope", k=3) == []

    def test_empty_index(self):
        assert BM25Index().query("anything") == []

    def test_scores_descending(self, index):
        results = index.query("model", k=3)
        scores = [s for _, s in results]
        assert scores == sorted(scores, reverse=True)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            BM25Index(k1=0)
        with pytest.raises(ConfigError):
            BM25Index(b=2.0)

    def test_term_frequency_saturation(self):
        idx = BM25Index()
        idx.add("spam", "legal " * 50)
        idx.add("normal", "legal court contract")
        results = dict(idx.query("legal", k=2))
        # Repetition should not dominate unboundedly (BM25 saturates).
        assert results["spam"] < results["normal"] * 3


class TestBuildCardIndex:
    def test_indexes_all_models(self, lake_bundle):
        index = build_card_index(lake_bundle.lake)
        assert len(index) == len(lake_bundle.lake)

    def test_finds_by_card_domain(self, lake_bundle):
        index = build_card_index(lake_bundle.lake)
        results = index.query("legal court statute", k=5)
        assert results  # truthful cards mention the legal domain somewhere
