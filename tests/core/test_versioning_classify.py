"""Tests for transform-kind classification from weight deltas."""

import numpy as np
import pytest

from repro.core.versioning import classify_transform, looks_like_merge
from repro.data import make_domain_dataset
from repro.transforms import (
    edit_classifier,
    finetune_classifier,
    lora_adapt_classifier,
    merge_models,
    prune_model,
    quantize_model,
)


@pytest.fixture(scope="module")
def target_dataset(tokenizer):
    return make_domain_dataset(
        ["finance", "sports"], 25, seq_len=24, seed=51, tokenizer=tokenizer
    )


class TestClassifyTransform:
    def test_identity(self, foundation_model):
        state = foundation_model.state_dict()
        assert classify_transform(state, state) == "identity"

    def test_unknown_for_misaligned(self, foundation_model):
        state = foundation_model.state_dict()
        other = {k: v for k, v in state.items() if "bias" not in k}
        assert classify_transform(state, other) == "unknown"

    def test_finetune(self, foundation_model, target_dataset):
        child, _ = finetune_classifier(foundation_model, target_dataset, epochs=3, seed=0)
        kind = classify_transform(
            foundation_model.state_dict(), child.state_dict()
        )
        assert kind == "finetune"

    def test_lora(self, foundation_model, target_dataset):
        child, _ = lora_adapt_classifier(
            foundation_model, target_dataset, rank=2, epochs=3, lr=1e-2, seed=0
        )
        kind = classify_transform(
            foundation_model.state_dict(), child.state_dict()
        )
        assert kind == "lora"

    def test_edit(self, foundation_model, target_dataset):
        child, _ = edit_classifier(
            foundation_model, target_dataset.tokens[0], target_class=3
        )
        kind = classify_transform(
            foundation_model.state_dict(), child.state_dict()
        )
        assert kind == "edit"

    def test_prune(self, foundation_model):
        child, _ = prune_model(foundation_model, sparsity=0.5)
        kind = classify_transform(
            foundation_model.state_dict(), child.state_dict()
        )
        assert kind == "prune"

    def test_quantize(self, foundation_model):
        child, _ = quantize_model(foundation_model, bits=5)
        kind = classify_transform(
            foundation_model.state_dict(), child.state_dict()
        )
        assert kind == "quantize"


class TestLooksLikeMerge:
    def test_detects_alpha(self, foundation_model, target_dataset):
        sibling, _ = finetune_classifier(
            foundation_model, target_dataset, epochs=3, seed=1
        )
        merged, _ = merge_models(foundation_model, sibling, alpha=0.3)
        alpha = looks_like_merge(
            merged.state_dict(),
            foundation_model.state_dict(),
            sibling.state_dict(),
        )
        assert alpha is not None
        assert abs(alpha - 0.3) < 1e-6

    def test_rejects_non_merge(self, foundation_model, target_dataset):
        child, _ = finetune_classifier(
            foundation_model, target_dataset, epochs=3, seed=2
        )
        sibling, _ = finetune_classifier(
            foundation_model, target_dataset, epochs=3, seed=3
        )
        alpha = looks_like_merge(
            child.state_dict(),
            foundation_model.state_dict(),
            sibling.state_dict(),
        )
        assert alpha is None
