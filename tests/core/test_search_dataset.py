"""Tests for dataset-based model search with history fallbacks."""

import pytest

from repro.core.search import models_trained_on
from repro.data import make_domain_dataset


class TestHistoryPath:
    def test_exact_match(self, lake_bundle):
        hits = models_trained_on(lake_bundle.lake, lake_bundle.base_dataset)
        exact = [h for h in hits if h.evidence == "history"]
        exact_ids = {h.model_id for h in exact}
        assert set(lake_bundle.truth.foundations) <= exact_ids

    def test_versions_excluded_when_disabled(self, lake_bundle):
        hits = models_trained_on(
            lake_bundle.lake, lake_bundle.base_dataset, include_versions=False
        )
        assert all(h.evidence == "history" for h in hits)

    def test_unregistered_dataset_no_version_closure(self, lake_bundle, tokenizer):
        foreign = make_domain_dataset(
            ["travel"], 5, seq_len=24, seed=91, tokenizer=tokenizer
        )
        hits = models_trained_on(lake_bundle.lake, foreign)
        assert hits == []


class TestMembershipFallback:
    def test_hidden_history_recovered_by_membership(self, mutable_lake_bundle, tokenizer):
        """A model fine-tuned on *private* data with hidden history is
        still linked to that data by the membership signal.

        The private dataset must be disjoint from the shared base corpus
        (membership inference cannot distinguish training on a subset
        from training on its superset — that ambiguity is fundamental).
        """
        from repro.transforms import finetune_classifier

        bundle = mutable_lake_bundle
        # High mixture noise makes examples hard: fitting them requires
        # memorization, which is what membership inference detects.
        private = make_domain_dataset(
            ["finance", "sports"], 15, seq_len=24, seed=191,
            tokenizer=tokenizer, name="private-corpus", mixture_noise=0.45,
        )
        parent_id = bundle.truth.foundations[0]
        parent = bundle.lake.get_model(parent_id, force=True)
        secret, _ = finetune_classifier(parent, private, epochs=30, seed=7)
        record = bundle.lake.add_model(secret, name="secret-finetune")
        # No history at all: the fallback is the only available signal.
        reference = make_domain_dataset(
            ["finance", "sports"], 15, seq_len=24, seed=192,
            tokenizer=tokenizer, mixture_noise=0.45,
        )
        hits = models_trained_on(bundle.lake, private, reference=reference)
        hit_map = {h.model_id: h for h in hits}
        assert record.model_id in hit_map
        assert hit_map[record.model_id].evidence == "membership"

    def test_no_reference_no_fallback(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        target = next(
            child for parents, child, record in bundle.truth.edges
            if record.dataset_digest is not None
        )
        bundle.lake.set_history_visibility(target, False)
        dataset = bundle.lake.datasets.get(bundle.truth.model_dataset[target])
        hits = models_trained_on(bundle.lake, dataset, reference=None)
        assert target not in {h.model_id for h in hits}
