"""Contract tests for smaller public-API surfaces not covered elsewhere."""

import numpy as np
import pytest

from repro.core.search import SearchEngine, SearchHit
from repro.core.search.parser import parse_query
from repro.errors import ConfigError


class TestSearchHit:
    def test_tuple_unpacking(self):
        model_id, score = SearchHit("m1", 0.5, "keyword")
        assert model_id == "m1"
        assert score == 0.5


class TestEngineSurface:
    def test_external_model_related_search(self, lake_bundle, probes, vocabulary):
        from repro.nn import TextClassifier

        engine = SearchEngine(lake_bundle.lake, probes)
        external = TextClassifier(len(vocabulary), 8, dim=8, seed=321)
        hits = engine.related_to_external_model(external, k=4)
        assert len(hits) == 4
        assert all(h.model_id in lake_bundle.lake for h in hits)

    def test_profile_of(self, lake_bundle, probes):
        engine = SearchEngine(lake_bundle.lake, probes)
        model_id = lake_bundle.truth.foundations[0]
        profile = engine.behavioral.profile_of(model_id)
        assert profile.shape == (probes.num_probes,)
        assert abs(np.linalg.norm(profile) - 1.0) < 1e-9

    def test_search_domains_direct(self, lake_bundle, probes):
        engine = SearchEngine(lake_bundle.lake, probes)
        hits = engine.search_domains(["legal", "medical"], k=4)
        assert len(hits) == 4

    def test_ambiguous_name_resolution(self, mutable_lake_bundle, probes, vocabulary):
        from repro.nn import TextClassifier

        bundle = mutable_lake_bundle
        model = TextClassifier(len(vocabulary), 8, dim=8, seed=5)
        bundle.lake.add_model(model, name="twin")
        bundle.lake.add_model(model, name="twin")
        engine = SearchEngine(bundle.lake, probes)
        with pytest.raises(ConfigError):
            engine.resolve_name("twin")


class TestParserEdgeCases:
    def test_query_with_hyphenated_names(self):
        query = parse_query("FIND MODELS WHERE SIMILAR_TO('foundation-0') LIMIT 2")
        assert query.conditions[0].args == ("foundation-0",)

    def test_empty_string_literal(self):
        query = parse_query("FIND MODELS WHERE name ~ ''")
        assert query.conditions[0].args == ("",)

    def test_tag_condition_parses(self):
        query = parse_query("FIND MODELS WHERE tag = 'classification'")
        assert query.conditions[0].field == "tag"


class TestGeneratedCardsRenderable:
    def test_all_lake_cards_render_markdown(self, lake_bundle):
        for record in lake_bundle.lake:
            markdown = record.card.to_markdown()
            assert markdown.startswith(f"# {record.name}")
            assert "## Metrics" in markdown

    def test_drafted_card_renders(self, lake_bundle, probes):
        from repro.core.docgen import CardGenerator

        generator = CardGenerator(lake_bundle.lake, probes)
        card, _ = generator.draft_card(lake_bundle.truth.foundations[0])
        markdown = card.to_markdown()
        # Behavioral/intrinsic sections are filled; training_data stays
        # undocumented by design (not observable without history).
        for section in ("Description", "Intended use", "Limitations"):
            body = markdown.split(f"## {section}")[1].split("##")[0]
            assert "*undocumented*" not in body


class TestTransformIdempotence:
    def test_quantize_is_idempotent(self, foundation_model):
        from repro.transforms import quantize_model

        once, _ = quantize_model(foundation_model, bits=6)
        twice, _ = quantize_model(once, bits=6)
        state_once = once.state_dict()
        state_twice = twice.state_dict()
        for name in state_once:
            assert np.allclose(state_once[name], state_twice[name], atol=1e-12)

    def test_prune_monotone(self, foundation_model):
        """Pruning harder never resurrects weights."""
        from repro.transforms import prune_model

        light, _ = prune_model(foundation_model, sparsity=0.3)
        heavy, _ = prune_model(foundation_model, sparsity=0.6)
        for name, arr in light.state_dict().items():
            if arr.ndim < 2:
                continue
            heavy_arr = heavy.state_dict()[name]
            light_zero = arr == 0
            heavy_zero = heavy_arr == 0
            assert not (light_zero & ~heavy_zero).any(), name
