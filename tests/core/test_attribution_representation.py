"""Tests for representation (concept) analysis."""

import numpy as np
import pytest

from repro.core.attribution import (
    ablate_direction,
    concept_importance,
    extract_concept_direction,
)
from repro.data import domain_index
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def concept_setup(foundation_model, broad_dataset):
    domains = np.asarray(broad_dataset.domains)
    legal = broad_dataset.tokens[domains == "legal"]
    medical = broad_dataset.tokens[domains == "medical"]
    direction = extract_concept_direction(
        foundation_model, legal, medical, concept="legal-vs-medical"
    )
    return foundation_model, legal, medical, direction


class TestExtractConcept:
    def test_unit_vector(self, concept_setup):
        _, _, _, direction = concept_setup
        assert abs(np.linalg.norm(direction.vector) - 1.0) < 1e-9

    def test_separates_classes(self, concept_setup):
        model, legal, medical, direction = concept_setup
        legal_proj = model.embed_tokens(legal).data @ direction.vector
        medical_proj = model.embed_tokens(medical).data @ direction.vector
        assert legal_proj.mean() > medical_proj.mean()
        assert direction.strength > 1.0

    def test_degenerate_raises(self, foundation_model, broad_dataset):
        same = broad_dataset.tokens[:3]
        with pytest.raises(ConfigError):
            extract_concept_direction(foundation_model, same, same)

    def test_requires_embed_tokens(self, broad_dataset):
        from repro.nn import MLPClassifier

        with pytest.raises(ConfigError):
            extract_concept_direction(
                MLPClassifier(4, 2, seed=0),
                broad_dataset.tokens[:2], broad_dataset.tokens[2:4],
            )


class TestAblation:
    def test_ablation_returns_distribution(self, concept_setup):
        model, legal, _, direction = concept_setup
        probs = ablate_direction(model, legal[:4], direction)
        assert probs.shape == (4, 8)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_concept_causally_supports_decision(self, concept_setup):
        """Removing the legal direction lowers legal probability."""
        model, legal, _, direction = concept_setup
        importance = concept_importance(
            model, legal, direction, target_class=domain_index("legal")
        )
        assert importance > 0

    def test_unrelated_inputs_less_affected(self, concept_setup, broad_dataset):
        model, legal, _, direction = concept_setup
        domains = np.asarray(broad_dataset.domains)
        cooking = broad_dataset.tokens[domains == "cooking"]
        legal_impact = concept_importance(
            model, legal, direction, target_class=domain_index("legal")
        )
        cooking_impact = concept_importance(
            model, cooking, direction, target_class=domain_index("cooking")
        )
        assert legal_impact > cooking_impact
