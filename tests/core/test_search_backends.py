"""Tests for the HNSW search-engine backend."""

import pytest

from repro.core.search import SearchEngine
from repro.errors import ConfigError


class TestIndexBackends:
    def test_hnsw_backend_builds(self, lake_bundle, probes):
        engine = SearchEngine(lake_bundle.lake, probes, index_backend="hnsw")
        assert engine.behavioral.index_backend == "hnsw"

    def test_backends_agree_on_top_results(self, lake_bundle, probes):
        flat = SearchEngine(lake_bundle.lake, probes, index_backend="flat")
        hnsw = SearchEngine(lake_bundle.lake, probes, index_backend="hnsw")
        query = "summarize legal court documents"
        flat_ids = [h.model_id for h in flat.search(query, k=3, method="behavioral")]
        hnsw_ids = [h.model_id for h in hnsw.search(query, k=3, method="behavioral")]
        # Approximate index: at least 2 of the exact top-3 must be found.
        assert len(set(flat_ids) & set(hnsw_ids)) >= 2

    def test_unknown_backend_rejected(self, lake_bundle, probes):
        with pytest.raises(ConfigError):
            SearchEngine(lake_bundle.lake, probes, index_backend="btree")

    def test_related_models_with_hnsw(self, lake_bundle, probes):
        engine = SearchEngine(lake_bundle.lake, probes, index_backend="hnsw")
        foundation = lake_bundle.truth.foundations[0]
        hits = engine.related_models(foundation, k=3)
        assert len(hits) == 3
        assert all(h.model_id != foundation for h in hits)
