"""Tests for the HNSW and sharded search-engine backends."""

import pytest

from repro.core.search import SearchEngine
from repro.errors import ConfigError
from repro.index import FlatIndex, ShardedIndex
from repro.lake import load_lake, save_lake


class TestIndexBackends:
    def test_hnsw_backend_builds(self, lake_bundle, probes):
        engine = SearchEngine(lake_bundle.lake, probes, index_backend="hnsw")
        assert engine.behavioral.index_backend == "hnsw"

    def test_backends_agree_on_top_results(self, lake_bundle, probes):
        flat = SearchEngine(lake_bundle.lake, probes, index_backend="flat")
        hnsw = SearchEngine(lake_bundle.lake, probes, index_backend="hnsw")
        query = "summarize legal court documents"
        flat_ids = [h.model_id for h in flat.search(query, k=3, method="behavioral")]
        hnsw_ids = [h.model_id for h in hnsw.search(query, k=3, method="behavioral")]
        # Approximate index: at least 2 of the exact top-3 must be found.
        assert len(set(flat_ids) & set(hnsw_ids)) >= 2

    def test_unknown_backend_rejected(self, lake_bundle, probes):
        with pytest.raises(ConfigError):
            SearchEngine(lake_bundle.lake, probes, index_backend="btree")

    def test_related_models_with_hnsw(self, lake_bundle, probes):
        engine = SearchEngine(lake_bundle.lake, probes, index_backend="hnsw")
        foundation = lake_bundle.truth.foundations[0]
        hits = engine.related_models(foundation, k=3)
        assert len(hits) == 3
        assert all(h.model_id != foundation for h in hits)


class TestShardedLakeEngine:
    """The engine follows the lake's storage layout: a loaded sharded
    lake gets shard-partitioned indexes, without changing any result."""

    @pytest.fixture(scope="class")
    def sharded_lake(self, lake_bundle, tmp_path_factory):
        directory = str(tmp_path_factory.mktemp("sharded") / "lake")
        save_lake(lake_bundle.lake, directory, sharded=True)
        return load_lake(directory)

    def test_weight_index_shards_with_the_lake(self, lake_bundle, probes, sharded_lake):
        flat_engine = SearchEngine(lake_bundle.lake, probes)
        shard_engine = SearchEngine(sharded_lake, probes)
        assert isinstance(flat_engine._weight_index, FlatIndex)
        assert isinstance(shard_engine._weight_index, ShardedIndex)

    def test_weight_view_parity_with_flat_engine(self, lake_bundle, probes, sharded_lake):
        flat_engine = SearchEngine(lake_bundle.lake, probes)
        shard_engine = SearchEngine(sharded_lake, probes)
        anchor = lake_bundle.truth.foundations[0]
        flat_hits = flat_engine.related_models(anchor, k=4, view="weight")
        shard_hits = shard_engine.related_models(anchor, k=4, view="weight")
        # Per-shard exact scans merge to the same total order as one
        # global flat index — same ids, same scores.
        assert [h.model_id for h in shard_hits] == [h.model_id for h in flat_hits]
        assert [round(h.score, 10) for h in shard_hits] == [
            round(h.score, 10) for h in flat_hits
        ]

    def test_sharded_behavioral_backend_over_loaded_lake(self, probes, sharded_lake):
        engine = SearchEngine(sharded_lake, probes, index_backend="sharded")
        assert engine.behavioral.index_backend == "sharded"
        hits = engine.search("summarize legal court documents", k=3, method="behavioral")
        assert len(hits) == 3
