"""Tests for auditing and risk propagation."""

import pytest

from repro.core.audit import ModelAuditor, propagate_risk
from repro.core.docgen import CardGenerator
from repro.core.versioning import VersionGraph
from repro.errors import ConfigError
from repro.lake import CardCorruptor


@pytest.fixture()
def auditor(mutable_lake_bundle, probes):
    bundle = mutable_lake_bundle
    generator = CardGenerator(bundle.lake, probes)
    return bundle, ModelAuditor(bundle.lake, generator)


class TestAuditQuestionnaire:
    def test_well_documented_model_passes(self, auditor):
        bundle, model_auditor = auditor
        report = model_auditor.audit(bundle.truth.foundations[0])
        assert report.compliance_rate >= 0.8
        assert len(report.answers) == 5

    def test_undocumented_model_fails_documentation(self, auditor):
        bundle, model_auditor = auditor
        CardCorruptor(missing_rate=1.0, seed=0).apply(bundle.lake)
        report = model_auditor.audit(bundle.truth.foundations[0])
        doc_answer = next(
            a for a in report.answers if "documented" in a.question
        )
        assert not doc_answer.satisfied

    def test_hidden_history_provenance_recovered(self, auditor):
        """Provenance should still pass via weight analysis when the
        child's history is hidden."""
        bundle, model_auditor = auditor
        child = next(
            c for p, c, r in bundle.truth.edges
            if len(p) == 1 and r.kind in ("finetune", "lora", "prune")
        )
        bundle.lake.set_history_visibility(child, False)
        report = model_auditor.audit(child)
        provenance = next(
            a for a in report.answers if "provenance" in a.question
        )
        assert provenance.satisfied
        assert "weight analysis" in provenance.answer

    def test_report_renders(self, auditor):
        bundle, model_auditor = auditor
        text = model_auditor.audit(bundle.truth.foundations[0]).to_text()
        assert "Audit report" in text
        assert "Compliance" in text


class TestRiskPropagation:
    def test_all_descendants_flagged(self, lake_bundle):
        graph = VersionGraph.from_lake_history(lake_bundle.lake)
        root = lake_bundle.truth.foundations[0]
        assessment = propagate_risk(graph, {root: 1.0})
        descendants = graph.descendants(root)
        assert assessment.flagged(0.3) - {root} == descendants

    def test_risk_attenuates_with_depth(self, lake_bundle):
        graph = VersionGraph.from_lake_history(lake_bundle.lake)
        root = lake_bundle.truth.foundations[0]
        assessment = propagate_risk(graph, {root: 1.0})
        for child in graph.children(root):
            for grandchild in graph.children(child):
                assert assessment.risk[grandchild] <= assessment.risk[child] + 1e-12

    def test_distill_attenuates_more_than_finetune(self):
        from repro.transforms import TransformRecord

        graph = VersionGraph()
        graph.add_edge("root", "ft", TransformRecord(kind="finetune"))
        graph.add_edge("root", "st", TransformRecord(kind="distill"))
        assessment = propagate_risk(graph, {"root": 1.0})
        assert assessment.risk["st"] < assessment.risk["ft"]

    def test_unrelated_models_untouched(self, lake_bundle):
        graph = VersionGraph.from_lake_history(lake_bundle.lake)
        roots = lake_bundle.truth.foundations
        assessment = propagate_risk(graph, {roots[0]: 1.0})
        other_tree = graph.descendants(roots[1]) - graph.descendants(roots[0])
        clean = {
            m for m in other_tree
            if roots[0] not in graph.ancestors(m)
        }
        for model_id in clean:
            assert assessment.risk.get(model_id, 0.0) == 0.0

    def test_invalid_risk_value(self, lake_bundle):
        graph = VersionGraph.from_lake_history(lake_bundle.lake)
        with pytest.raises(ConfigError):
            propagate_risk(graph, {lake_bundle.truth.foundations[0]: 2.0})

    def test_explain(self, lake_bundle):
        graph = VersionGraph.from_lake_history(lake_bundle.lake)
        root = lake_bundle.truth.foundations[0]
        assessment = propagate_risk(graph, {root: 1.0})
        child = graph.children(root)[0]
        explanation = assessment.explain(child)
        assert root in explanation
