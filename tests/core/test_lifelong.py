"""Tests for the lifelong benchmarking ledger."""

import pytest

from repro.core.benchmarking import Benchmark, LifelongLedger
from repro.data import make_domain_dataset
from repro.errors import ConfigError
from repro.nn import TextClassifier


@pytest.fixture()
def ledger(mutable_lake_bundle):
    bundle = mutable_lake_bundle
    ledger = LifelongLedger(lake=bundle.lake)
    ledger.add_benchmark(Benchmark("eval", bundle.eval_dataset, metric="accuracy"))
    return bundle, ledger


class TestLedger:
    def test_initial_refresh_scores_everything(self, ledger):
        bundle, ledger_obj = ledger
        performed = ledger_obj.refresh()
        assert performed == len(bundle.lake)
        assert ledger_obj.coverage() == 1.0

    def test_second_refresh_is_free(self, ledger):
        _, ledger_obj = ledger
        ledger_obj.refresh()
        assert ledger_obj.refresh() == 0

    def test_new_model_incremental_cost(self, ledger, vocabulary):
        bundle, ledger_obj = ledger
        ledger_obj.refresh()
        model = TextClassifier(len(vocabulary), 8, dim=8, hidden=(8,), seed=50)
        bundle.lake.add_model(model, name="newcomer")
        performed = ledger_obj.refresh()
        assert performed == 1  # only the newcomer, only one benchmark

    def test_new_benchmark_incremental_cost(self, ledger, tokenizer):
        bundle, ledger_obj = ledger
        ledger_obj.refresh()
        extra = make_domain_dataset(
            ["legal"], 5, seq_len=24, seed=93, tokenizer=tokenizer
        )
        ledger_obj.add_benchmark(Benchmark("legal-only", extra, metric="accuracy"))
        performed = ledger_obj.refresh()
        assert performed == len(bundle.lake)

    def test_duplicate_benchmark_rejected(self, ledger):
        bundle, ledger_obj = ledger
        with pytest.raises(ConfigError):
            ledger_obj.add_benchmark(
                Benchmark("eval", bundle.eval_dataset, metric="accuracy")
            )

    def test_leaderboard(self, ledger):
        bundle, ledger_obj = ledger
        ledger_obj.refresh()
        board = ledger_obj.leaderboard("eval", k=3)
        assert len(board) == 3
        scores = [s for _, s in board]
        assert scores == sorted(scores, reverse=True)

    def test_score_of(self, ledger):
        bundle, ledger_obj = ledger
        ledger_obj.refresh()
        model_id = bundle.truth.foundations[0]
        assert ledger_obj.score_of(model_id, "eval") is not None
        assert ledger_obj.score_of(model_id, "missing") is None
