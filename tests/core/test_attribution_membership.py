"""Tests for membership inference."""

import numpy as np
import pytest

from repro.core.attribution import (
    auc_score,
    calibrated_attack,
    dataset_membership_score,
    loss_threshold_attack,
)
from repro.data import make_domain_dataset
from repro.errors import ConfigError
from repro.nn import TextClassifier, train_classifier


@pytest.fixture(scope="module")
def overfit_setup(tokenizer):
    """A deliberately overfit model (few examples, many epochs)."""
    members = make_domain_dataset(
        ["legal", "medical"], 10, seq_len=20, seed=71, tokenizer=tokenizer
    )
    model = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(20,), seed=0)
    train_classifier(model, members.tokens, members.labels, epochs=40, lr=5e-3, seed=0)
    nonmembers = make_domain_dataset(
        ["legal", "medical"], 10, seq_len=20, seed=72, tokenizer=tokenizer
    )
    return model, members, nonmembers


class TestAUC:
    def test_perfect_separation(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(labels, scores) == 1.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=400)
        scores = rng.random(400)
        assert abs(auc_score(labels, scores) - 0.5) < 0.1

    def test_ties_handled(self):
        labels = np.array([1, 0, 1, 0])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert abs(auc_score(labels, scores) - 0.5) < 1e-9

    def test_needs_both_classes(self):
        with pytest.raises(ConfigError):
            auc_score(np.ones(4), np.random.default_rng(0).random(4))


class TestLossThresholdAttack:
    def test_detects_overfit_membership(self, overfit_setup):
        model, members, nonmembers = overfit_setup
        result = loss_threshold_attack(
            model, members.tokens, members.labels,
            nonmembers.tokens, nonmembers.labels,
        )
        assert result.auc > 0.6

    def test_accuracy_at_best_threshold(self, overfit_setup):
        model, members, nonmembers = overfit_setup
        result = loss_threshold_attack(
            model, members.tokens, members.labels,
            nonmembers.tokens, nonmembers.labels,
        )
        assert result.accuracy_at_best_threshold() >= 0.5


class TestCalibratedAttack:
    def test_at_least_as_good(self, overfit_setup, tokenizer):
        model, members, nonmembers = overfit_setup
        reference_data = make_domain_dataset(
            ["legal", "medical"], 10, seq_len=20, seed=73, tokenizer=tokenizer
        )
        reference = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(20,), seed=3)
        train_classifier(
            reference, reference_data.tokens, reference_data.labels,
            epochs=40, lr=5e-3, seed=3,
        )
        plain = loss_threshold_attack(
            model, members.tokens, members.labels,
            nonmembers.tokens, nonmembers.labels,
        )
        calibrated = calibrated_attack(
            model, reference, members.tokens, members.labels,
            nonmembers.tokens, nonmembers.labels,
        )
        assert calibrated.auc > plain.auc - 0.1


class TestDatasetMembership:
    def test_training_set_scores_higher(self, overfit_setup, tokenizer):
        model, members, nonmembers = overfit_setup
        fresh = make_domain_dataset(
            ["legal", "medical"], 10, seq_len=20, seed=74, tokenizer=tokenizer
        )
        member_signal = dataset_membership_score(
            model, members.tokens, members.labels, fresh.tokens, fresh.labels
        )
        nonmember_signal = dataset_membership_score(
            model, nonmembers.tokens, nonmembers.labels, fresh.tokens, fresh.labels
        )
        assert member_signal > nonmember_signal
        assert member_signal > 0
