"""Tests for SearchEngine.search_batch: parity, dedup, thread determinism."""

import threading

import pytest

from repro.core.search import SearchEngine
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def engine(lake_bundle, probes):
    return SearchEngine(lake_bundle.lake, probes)


def _flatten(hits):
    return [(h.model_id, float(h.score), h.method) for h in hits]


class TestBatchParity:
    TRIPLES = [
        ("legal court statute", 5, "hybrid"),
        ("medical diagnosis notes", 3, "behavioral"),
        ("code compiler tokens", 4, "keyword"),
        ("legal court statute", 5, "hybrid"),  # duplicate of the first
        ("news report headline", 2, "hybrid"),
        ("zzz qqq xyzzy", 3, "behavioral"),  # no recognizable domain
    ]

    def test_batch_matches_sequential(self, engine):
        batched = engine.search_batch(self.TRIPLES)
        assert len(batched) == len(self.TRIPLES)
        for (query, k, method), hits in zip(self.TRIPLES, batched):
            expected = engine.search(query, k=k, method=method)
            assert _flatten(hits) == _flatten(expected), (query, method)

    def test_duplicates_get_identical_results(self, engine):
        batched = engine.search_batch(self.TRIPLES)
        assert _flatten(batched[0]) == _flatten(batched[3])

    def test_empty_batch(self, engine):
        assert engine.search_batch([]) == []

    def test_single_item_batch(self, engine):
        query = "legal court statute"
        [hits] = engine.search_batch([(query, 5, "hybrid")])
        assert _flatten(hits) == _flatten(engine.search(query, k=5))

    def test_unknown_method_rejected(self, engine):
        with pytest.raises(ConfigError):
            engine.search_batch([("legal", 3, "psychic")])

    def test_weight_method_rejected(self, engine):
        with pytest.raises(ConfigError):
            engine.search_batch([("legal", 3, "weight")])


class TestBatchDeterminism:
    def test_threaded_batches_are_byte_identical(self, engine):
        """N threads running the same batch concurrently must all rank
        exactly as a sequential run does."""
        triples = TestBatchParity.TRIPLES
        expected = [_flatten(hits) for hits in engine.search_batch(triples)]
        observed = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def worker() -> None:
            barrier.wait()
            for _ in range(3):
                got = [_flatten(hits) for hits in engine.search_batch(triples)]
                with lock:
                    observed.append(got)

        threads = [threading.Thread(target=worker) for _ in range(8)]  # repro: noqa[shared-state-race]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(observed) == 24
        for got in observed:
            assert got == expected

    def test_threaded_singles_match_sequential(self, engine):
        """Concurrent plain search() calls stay deterministic too."""
        query = "legal court statute"
        expected = _flatten(engine.search(query, k=5))
        results = []
        lock = threading.Lock()

        def worker() -> None:
            got = _flatten(engine.search(query, k=5))
            with lock:
                results.append(got)

        threads = [threading.Thread(target=worker) for _ in range(8)]  # repro: noqa[shared-state-race]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert all(got == expected for got in results)
