"""Tests for input-sensitivity attribution."""

import numpy as np
import pytest

from repro.core.attribution import (
    domain_keyword_alignment,
    gradient_saliency,
    occlusion_sensitivity,
)
from repro.data import get_domain
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def legal_input(broad_dataset):
    index = broad_dataset.domains.index("legal")
    return broad_dataset.tokens[index]


class TestOcclusion:
    def test_scores_cover_nonpad_positions(self, foundation_model, legal_input):
        result = occlusion_sensitivity(foundation_model, legal_input)
        assert len(result.positions) == int((legal_input != 0).sum())
        assert len(result.scores) == len(result.positions)

    def test_domain_words_matter_most(
        self, foundation_model, legal_input, vocabulary
    ):
        result = occlusion_sensitivity(foundation_model, legal_input)
        keyword_ids = {
            vocabulary.id_of(w) for w in get_domain("legal").content_words()
        }
        alignment = domain_keyword_alignment(result, legal_input, keyword_ids, k=5)
        assert alignment >= 0.6

    def test_all_padding_raises(self, foundation_model):
        with pytest.raises(ConfigError):
            occlusion_sensitivity(foundation_model, np.zeros(6, dtype=np.int64))

    def test_explicit_target_class(self, foundation_model, legal_input):
        result = occlusion_sensitivity(foundation_model, legal_input, target_class=2)
        assert np.all(np.isfinite(result.scores))


class TestGradientSaliency:
    def test_runs_and_cleans_up(self, foundation_model, legal_input):
        result = gradient_saliency(foundation_model, legal_input)
        assert len(result.scores) == len(result.positions)
        assert all(
            p.grad is None for p in foundation_model.parameters()
        )

    def test_rejects_model_without_embedding(self, legal_input):
        from repro.nn import MLPClassifier

        with pytest.raises(ConfigError):
            gradient_saliency(MLPClassifier(4, 2, seed=0), legal_input)


class TestTopPositions:
    def test_ordering(self, foundation_model, legal_input):
        result = occlusion_sensitivity(foundation_model, legal_input)
        top = result.top_positions(3)
        top_scores = [
            result.scores[list(result.positions).index(p)] for p in top
        ]
        assert top_scores == sorted(top_scores, reverse=True)
