"""Tests for the declarative query language."""

import pytest

from repro.core.search import SearchEngine, execute_query, parse_query
from repro.errors import QueryError


@pytest.fixture(scope="module")
def engine(lake_bundle, probes):
    return SearchEngine(lake_bundle.lake, probes)


class TestParser:
    def test_minimal(self):
        query = parse_query("FIND MODELS")
        assert query.conditions == []
        assert query.limit == 10

    def test_task_condition(self):
        query = parse_query("FIND MODELS WHERE task ~ 'legal summarization' LIMIT 5")
        assert query.limit == 5
        assert query.conditions[0].kind == "field"
        assert query.conditions[0].field == "task"
        assert query.conditions[0].args == ("legal summarization",)

    def test_and_conditions(self):
        query = parse_query(
            "FIND MODELS WHERE domain = 'legal' AND family = 'text_classifier'"
        )
        assert len(query.conditions) == 2

    def test_functions(self):
        query = parse_query(
            "FIND MODELS WHERE OUTPERFORMS('foundation-0', 'acc_legal')"
        )
        assert query.conditions[0].kind == "outperforms"
        assert query.conditions[0].args == ("foundation-0", "acc_legal")

    def test_using_method(self):
        query = parse_query("FIND MODELS WHERE task ~ 'legal' USING KEYWORD")
        assert query.method == "keyword"

    def test_case_insensitive_keywords(self):
        query = parse_query("find models where task ~ 'legal' limit 3")
        assert query.limit == 3

    def test_errors(self):
        for bad in (
            "SELECT MODELS",
            "FIND MODELS WHERE",
            "FIND MODELS WHERE task 'legal'",
            "FIND MODELS LIMIT 'five'",
            "FIND MODELS LIMIT 0",
            "FIND MODELS USING TELEPATHY",
            "FIND MODELS WHERE OUTPERFORMS('x')",
            "FIND MODELS trailing junk",
        ):
            with pytest.raises(QueryError):
                parse_query(bad)


class TestExecution:
    def test_task_query(self, engine):
        hits = execute_query(engine, "FIND MODELS WHERE task ~ 'legal court' LIMIT 3")
        assert len(hits) <= 3
        assert hits

    def test_family_filter(self, engine, lake_bundle):
        hits = execute_query(
            engine, "FIND MODELS WHERE family = 'stitched_text_classifier'"
        )
        assert hits
        for hit in hits:
            assert lake_bundle.lake.get_record(hit.model_id).family == (
                "stitched_text_classifier"
            )

    def test_outperforms(self, engine, lake_bundle):
        foundation = lake_bundle.lake.get_record(lake_bundle.truth.foundations[0])
        hits = execute_query(
            engine,
            f"FIND MODELS WHERE OUTPERFORMS('{foundation.name}', 'acc_legal') LIMIT 20",
        )
        for hit in hits:
            record = lake_bundle.lake.get_record(hit.model_id)
            assert record.eval_metrics["acc_legal"] > foundation.eval_metrics["acc_legal"]

    def test_trained_on(self, engine, lake_bundle):
        name = lake_bundle.base_dataset.name
        hits = execute_query(engine, f"FIND MODELS WHERE TRAINED_ON('{name}')")
        assert hits

    def test_trained_on_unknown_dataset(self, engine):
        with pytest.raises(QueryError):
            execute_query(engine, "FIND MODELS WHERE TRAINED_ON('no-such-data')")

    def test_similar_to(self, engine, lake_bundle):
        name = lake_bundle.lake.get_record(lake_bundle.truth.foundations[0]).name
        hits = execute_query(
            engine, f"FIND MODELS WHERE SIMILAR_TO('{name}') LIMIT 4"
        )
        assert len(hits) <= 4 and hits

    def test_conjunction_intersects(self, engine, lake_bundle):
        hits = execute_query(
            engine,
            "FIND MODELS WHERE task ~ 'legal court statute' "
            "AND family = 'text_classifier' LIMIT 10",
        )
        for hit in hits:
            assert lake_bundle.lake.get_record(hit.model_id).family == "text_classifier"

    def test_catalog_fallback(self, engine, lake_bundle):
        hits = execute_query(engine, "FIND MODELS LIMIT 5")
        assert len(hits) == 5
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)
