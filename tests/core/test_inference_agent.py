"""Tests for the model-inference agent (§5)."""

import numpy as np
import pytest

from repro.core.inference import ModelInferenceAgent
from repro.errors import ConfigError, QueryError


@pytest.fixture(scope="module")
def agent(lake_bundle, probes):
    return ModelInferenceAgent(lake_bundle.lake, probes, seed=0)


class TestPlanning:
    def test_plan_extracts_domains(self, agent):
        plan = agent.plan("summarize legal court documents")
        assert "legal" in plan.target_domains
        assert plan.retrieval_method == "hybrid"
        assert "legal" in plan.benchmark_name

    def test_unmappable_query_raises(self, agent):
        with pytest.raises(QueryError):
            agent.plan("xyzzy frobnicate")

    def test_plan_describe(self, agent):
        assert "legal" in agent.plan("legal analysis").describe()


class TestRecommendation:
    def test_recommends_competent_model(self, agent, lake_bundle):
        result = agent.recommend("legal court statute analysis", k=3)
        assert result.recommendations
        best = result.best()
        # The verified recommendation must actually be good at legal text.
        true_accuracy = lake_bundle.truth.domain_accuracy[best.model_id]["legal"]
        assert true_accuracy >= 0.8
        assert best.measured_score >= 0.7

    def test_measured_order(self, agent):
        result = agent.recommend("medical patient diagnosis", k=3)
        scores = [r.measured_score for r in result.recommendations]
        assert scores == sorted(scores, reverse=True)

    def test_rationale_mentions_measurement(self, agent):
        result = agent.recommend("legal contract analysis", k=1)
        assert "measured" in result.best().rationale
        assert "benchmark" in result.best().rationale

    def test_benchmark_is_fresh_per_query(self, agent):
        """Different queries get different benchmarks (derived seeds)."""
        a = agent._build_benchmark(agent.plan("legal court analysis"))
        b = agent._build_benchmark(agent.plan("legal statute review"))
        assert a.dataset.content_digest() != b.dataset.content_digest()

    def test_invalid_k(self, agent):
        with pytest.raises(ConfigError):
            agent.recommend("legal analysis", k=0)

    def test_verification_overrides_retrieval_lies(self, lake_bundle, probes):
        """A card lying about legal competence cannot outrank the
        measured-best model: verification is the final arbiter."""
        from repro.lake import CardCorruptor

        lake = lake_bundle.lake
        originals = {r.model_id: r.card.copy() for r in lake}
        CardCorruptor(missing_rate=0.0, poison_rate=0.6, seed=2).apply(lake)
        agent = ModelInferenceAgent(lake, probes, seed=0)
        result = agent.recommend("legal court statute analysis", k=1)
        best = result.best()
        true_accuracy = lake_bundle.truth.domain_accuracy[best.model_id]["legal"]
        for model_id, card in originals.items():
            lake.update_card(model_id, card)
        assert true_accuracy >= 0.8
