"""Tests for blind version-graph recovery (MoTHer-style)."""

import numpy as np
import pytest

from repro.core.benchmarking import (
    edge_precision_recall,
    version_edge_truth,
)
from repro.core.versioning import RecoveryConfig, recover_version_graph


class TestRecovery:
    def test_never_uses_history(self, lake_bundle):
        """Recovery must work on a lake with all history hidden."""
        for record in lake_bundle.lake:
            lake_bundle.lake.set_history_visibility(record.model_id, False)
        try:
            result = recover_version_graph(lake_bundle.lake)
            assert result.graph.num_edges > 0
        finally:
            for record in lake_bundle.lake:
                lake_bundle.lake.set_history_visibility(record.model_id, True)

    def test_weight_preserving_recall(self, lake_bundle):
        """Recovery should find most weight-preserving edges."""
        result = recover_version_graph(lake_bundle.lake)
        truth = version_edge_truth(lake_bundle, weight_preserving_only=True)
        predicted = result.graph.edge_set()
        _, recall, _ = edge_precision_recall(predicted, truth)
        assert recall >= 0.5

    def test_precision_reasonable(self, lake_bundle):
        result = recover_version_graph(lake_bundle.lake)
        truth = lake_bundle.truth.edge_set()
        precision, _, _ = edge_precision_recall(result.graph.edge_set(), truth)
        assert precision >= 0.5

    def test_clusters_respect_architecture(self, lake_bundle):
        result = recover_version_graph(lake_bundle.lake)
        for cluster in result.clusters:
            families = {
                str(sorted(lake_bundle.lake.get_record(m).architecture.items()))
                for m in cluster
            }
            assert len(families) == 1

    def test_merge_detection(self, lake_bundle):
        result = recover_version_graph(lake_bundle.lake)
        true_merges = {
            (tuple(sorted(parents)), child)
            for parents, child, record in lake_bundle.truth.edges
            if record.kind == "merge"
        }
        found = {
            (tuple(sorted((a, b))), child) for a, b, child in result.merge_edges
        }
        assert true_merges <= found

    def test_direction_penalty_helps_or_neutral(self, lake_bundle):
        truth = version_edge_truth(lake_bundle, weight_preserving_only=True)

        def f1(config):
            result = recover_version_graph(lake_bundle.lake, config=config)
            _, _, value = edge_precision_recall(result.graph.edge_set(), truth)
            return value

        with_direction = f1(RecoveryConfig(direction_penalty=0.5))
        without = f1(RecoveryConfig(direction_penalty=0.0))
        assert with_direction >= without - 0.15

    def test_subset_of_models(self, lake_bundle):
        ids = lake_bundle.truth.foundations[:1]
        result = recover_version_graph(lake_bundle.lake, model_ids=ids)
        assert result.graph.num_edges == 0
        assert len(result.graph) == 1
