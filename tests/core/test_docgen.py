"""Tests for card generation and verification."""

import numpy as np
import pytest

from repro.core.docgen import CardGenerator, CardVerifier
from repro.lake import CardCorruptor


@pytest.fixture(scope="module")
def generator(lake_bundle, probes):
    return CardGenerator(lake_bundle.lake, probes)


class TestEvidence:
    def test_base_inference_matches_truth(self, generator, lake_bundle):
        """For weight-preserving single-parent children, the nearest
        aligned earlier model should be the true parent."""
        correct = 0
        total = 0
        for parents, child, record in lake_bundle.truth.edges:
            if len(parents) != 1 or record.kind in ("distill", "stitch"):
                continue
            evidence = generator.gather_evidence(child)
            total += 1
            if evidence.inferred_base == parents[0]:
                correct += 1
        assert total > 0
        assert correct / total >= 0.6

    def test_domain_competence_matches_heldout(self, generator, lake_bundle):
        """Probe competence should track held-out per-domain accuracy."""
        model_id = lake_bundle.truth.foundations[0]
        model = lake_bundle.lake.get_model(model_id, force=True)
        competence = generator.domain_competence(model)
        heldout = lake_bundle.truth.domain_accuracy[model_id]
        gaps = [abs(competence[d] - heldout[d]) for d in competence]
        assert np.mean(gaps) < 0.3


class TestDraftCard:
    def test_foundation_drafted_as_generalist(self, generator, lake_bundle):
        card, evidence = generator.draft_card(lake_bundle.truth.foundations[0])
        assert len(card.training_domains) >= 4
        assert "general" in card.description.lower()

    def test_draft_fills_content_fields(self, generator, lake_bundle):
        card, _ = generator.draft_card(lake_bundle.truth.foundations[0])
        assert card.description and card.intended_use and card.limitations
        assert card.metrics

    def test_fill_missing_preserves_existing(self, lake_bundle, probes, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        generator = CardGenerator(bundle.lake, probes)
        model_id = bundle.truth.foundations[0]
        original_desc = bundle.lake.get_record(model_id).card.description
        CardCorruptor(missing_rate=0.0, seed=0).apply(bundle.lake)  # no-op
        merged = generator.fill_missing_fields(model_id)
        assert merged.description == original_desc

    def test_fill_missing_completes_blanked(self, mutable_lake_bundle, probes):
        bundle = mutable_lake_bundle
        generator = CardGenerator(bundle.lake, probes)
        CardCorruptor(missing_rate=1.0, seed=1).apply(bundle.lake)
        model_id = bundle.truth.foundations[0]
        merged = generator.fill_missing_fields(model_id)
        assert merged.description
        assert merged.training_domains
        assert merged.completeness() > 0.5


class TestVerifier:
    def test_clean_lake_few_contradictions(self, generator, lake_bundle):
        verifier = CardVerifier(generator)
        issues = [
            i for i in verifier.verify_lake() if i.severity == "contradiction"
        ]
        # Truthful cards should yield near-zero contradictions; a handful
        # of probe-vs-heldout measurement disagreements are tolerated.
        assert len(issues) <= max(2, len(lake_bundle.lake) // 3)

    def test_poisoned_domains_flagged(self, mutable_lake_bundle, probes):
        bundle = mutable_lake_bundle
        generator = CardGenerator(bundle.lake, probes)
        verifier = CardVerifier(generator)
        # Poison one forgetful specialist's card: claim a domain (and an
        # inflated metric) the model is measurably bad at.
        candidates = [
            (mid, d)
            for mid, s in bundle.truth.specialty.items()
            if s is not None
            for d, a in bundle.truth.domain_accuracy[mid].items()
            if a < 0.3
        ]
        if not candidates:
            pytest.skip("no forgetful specialist in this lake seed")
        target, bad_domain = candidates[0]
        card = bundle.lake.get_record(target).card.copy()
        card.training_domains = [bad_domain]
        card.metrics = {f"acc_{bad_domain}": 0.99}
        bundle.lake.update_card(target, card)
        issues = verifier.verify(target)
        fields = {i.field for i in issues}
        assert "training_domains" in fields
        assert f"metrics.acc_{bad_domain}" in fields

    def test_scratch_claim_contradicted(self, mutable_lake_bundle, probes):
        bundle = mutable_lake_bundle
        generator = CardGenerator(bundle.lake, probes)
        verifier = CardVerifier(generator)
        child = next(
            c for p, c, r in bundle.truth.edges
            if len(p) == 1 and r.kind in ("finetune", "lora")
        )
        card = bundle.lake.get_record(child).card.copy()
        card.transform_summary = "trained entirely from scratch"
        bundle.lake.update_card(child, card)
        issues = verifier.verify(child)
        assert any(i.field == "transform_summary" for i in issues)

    def test_nonexistent_base_flagged(self, mutable_lake_bundle, probes):
        bundle = mutable_lake_bundle
        generator = CardGenerator(bundle.lake, probes)
        verifier = CardVerifier(generator)
        model_id = bundle.truth.foundations[0]
        card = bundle.lake.get_record(model_id).card.copy()
        card.base_model = "foundation-999"
        bundle.lake.update_card(model_id, card)
        issues = verifier.verify(model_id)
        assert any(
            i.field == "base_model" and i.severity == "contradiction"
            for i in issues
        )
