"""Tests for model and data citation."""

import pytest

from repro.core.citation import (
    cite_dataset,
    cite_model,
    resolve_citation,
)
from repro.core.versioning import VersionGraph
from repro.lake import ModelCard


class TestModelCitation:
    def test_citation_fields(self, lake_bundle):
        child = next(c for p, c, _ in lake_bundle.truth.edges if len(p) == 1)
        citation = cite_model(lake_bundle.lake, child)
        record = lake_bundle.lake.get_record(child)
        assert citation.model_id == child
        assert citation.weights_digest == record.weights_digest
        assert citation.lineage_depth >= 1
        assert citation.root_id in lake_bundle.truth.foundations or (
            citation.root_id == child
        )

    def test_key_and_bibtex_render(self, lake_bundle):
        citation = cite_model(lake_bundle.lake, lake_bundle.truth.foundations[0])
        assert citation.key().startswith("model:")
        assert "@misc" in citation.to_bibtex()

    def test_exact_resolution(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        citation = cite_model(bundle.lake, bundle.truth.foundations[0])
        assert resolve_citation(bundle.lake, citation).status == "exact"

    def test_lake_evolution_detected(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        model_id = bundle.truth.foundations[0]
        citation = cite_model(bundle.lake, model_id)
        bundle.lake.update_card(model_id, ModelCard(model_name="renamed"))
        result = resolve_citation(bundle.lake, citation)
        assert result.status == "lake_evolved"

    def test_missing_model_detected(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        citation = cite_model(bundle.lake, bundle.truth.foundations[0])
        object.__setattr__(citation, "model_id", "m9999-deadbeef")
        result = resolve_citation(bundle.lake, citation)
        assert result.status == "missing"

    def test_new_citation_after_update_differs(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        model_id = bundle.truth.foundations[0]
        first = cite_model(bundle.lake, model_id)
        bundle.lake.record_metric(model_id, "new", 1.0)
        second = cite_model(bundle.lake, model_id)
        assert first.lake_snapshot != second.lake_snapshot
        assert first.key() != second.key()


class TestDataCitation:
    def test_dataset_citation(self, lake_bundle):
        digest = lake_bundle.base_dataset.content_digest()
        citation = cite_dataset(lake_bundle.lake, digest)
        assert citation.dataset_digest == digest
        assert citation.num_versions_known >= 1
        assert citation.key().startswith("data:")

    def test_versions_counted(self, lake_bundle):
        digest = lake_bundle.base_dataset.content_digest()
        citation = cite_dataset(lake_bundle.lake, digest)
        # Specialty datasets derive from the base corpus.
        assert citation.num_versions_known > 1
