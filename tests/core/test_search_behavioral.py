"""Tests for behavioral (content-based) model search."""

import numpy as np
import pytest

from repro.core.search import (
    BehavioralSearcher,
    TaskSpec,
    extract_query_domains,
    task_profile_vector,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def searcher(lake_bundle, probes):
    return BehavioralSearcher(lake_bundle.lake, probes)


class TestQueryDomainExtraction:
    def test_domain_name_hit(self):
        assert "legal" in extract_query_domains("find me a legal model")

    def test_content_word_hit(self):
        domains = extract_query_domains("summarize court verdict and statute text")
        assert domains == ["legal"]

    def test_multiple_domains(self):
        domains = extract_query_domains("patient diagnosis for court plaintiff statute")
        assert "legal" in domains or "medical" in domains

    def test_no_hit(self):
        assert extract_query_domains("zzz qqq xyzzy") == []


class TestTaskProfileVector:
    def test_unit_norm(self, probes):
        vector = task_profile_vector(probes, ["legal"])
        assert abs(np.linalg.norm(vector) - 1.0) < 1e-9

    def test_mass_on_target_probes(self, probes):
        vector = task_profile_vector(probes, ["legal"])
        domains = np.asarray(probes.domains)
        assert np.all(vector[domains != "legal"] == 0)

    def test_unknown_domain_raises(self, probes):
        with pytest.raises(ConfigError):
            task_profile_vector(probes, ["astrology"])


class TestDomainSearch:
    def test_specialists_rank_high(self, searcher, lake_bundle):
        """For each fine-tuned specialist's domain, that specialist should
        appear in the top half of the ranking."""
        total = len(lake_bundle.lake)
        for model_id, specialty in lake_bundle.truth.specialty.items():
            transform = lake_bundle.truth.transform_of(model_id)
            if specialty is None or transform is None or transform.kind != "finetune":
                continue
            results = searcher.search_domains([specialty], k=total)
            rank = [mid for mid, _ in results].index(model_id)
            assert rank < total / 2

    def test_free_text_query(self, searcher):
        results = searcher.search_text("court statute verdict summarization", k=5)
        assert len(results) == 5

    def test_unparseable_query_empty(self, searcher):
        assert searcher.search_text("xyzzy", k=5) == []


class TestModelAsQuery:
    def test_self_similarity_top(self, searcher, lake_bundle):
        model_id = lake_bundle.truth.foundations[0]
        model = lake_bundle.lake.get_model(model_id, force=True)
        results = searcher.search_by_model(model, k=3)
        assert results[0][0] == model_id

    def test_exclusion(self, searcher, lake_bundle):
        model_id = lake_bundle.truth.foundations[0]
        model = lake_bundle.lake.get_model(model_id, force=True)
        results = searcher.search_by_model(model, k=3, exclude_id=model_id)
        assert all(mid != model_id for mid, _ in results)

    def test_external_model(self, searcher, lake_bundle, vocabulary):
        """A fresh model not in the lake still gets a ranking."""
        from repro.nn import TextClassifier

        external = TextClassifier(len(vocabulary), 8, dim=8, hidden=(8,), seed=99)
        results = searcher.search_by_model(external, k=3)
        assert len(results) == 3


class TestTaskSpecSearch:
    def test_best_model_found(self, searcher, lake_bundle):
        eval_set = lake_bundle.eval_dataset
        task = TaskSpec(inputs=eval_set.tokens, desired_labels=eval_set.labels)
        results = searcher.search_by_task(task, k=3)
        # The top model by direct evaluation should be a strong generalist.
        top_id = results[0][0]
        accuracy = lake_bundle.truth.domain_accuracy[top_id]
        assert np.mean(list(accuracy.values())) > 0.8
