"""Tests for the behavioral fallback in version recovery."""

import pytest

from repro.core.versioning import RecoveryConfig, VersionGraph, recover_version_graph


class TestBehavioralFallback:
    @pytest.fixture(scope="class")
    def recoveries(self, lake_bundle, probes):
        plain = recover_version_graph(lake_bundle.lake, config=RecoveryConfig())
        fallback = recover_version_graph(
            lake_bundle.lake,
            config=RecoveryConfig(behavioral_probes=probes),
        )
        return plain, fallback

    def test_disabled_by_default(self, recoveries):
        plain, _ = recoveries
        assert plain.behavioral_edges == []

    def test_only_adds_edges(self, recoveries):
        plain, fallback = recoveries
        assert plain.graph.edge_set() <= fallback.graph.edge_set()

    def test_behavioral_edges_labeled(self, recoveries):
        _, fallback = recoveries
        for parent, child, similarity in fallback.behavioral_edges:
            data = fallback.graph._graph.get_edge_data(parent, child)
            assert data["kind"] == "behavioral"
            assert abs(data["confidence"] - similarity) < 1e-12
            assert similarity >= 0.85

    def test_behavioral_edges_lineage_consistent(self, recoveries, lake_bundle):
        """Added edges must connect models of the same true lineage tree
        (teacher or sibling — both are correct version relationships)."""
        _, fallback = recoveries
        history = VersionGraph.from_lake_history(lake_bundle.lake)
        for parent, child, _ in fallback.behavioral_edges:
            assert history.is_version_of(parent, child), (parent, child)

    def test_earliest_model_never_attached(self, recoveries, lake_bundle):
        _, fallback = recoveries
        earliest = min(
            lake_bundle.lake, key=lambda r: r.created_at
        ).model_id
        children = {c for _, c, _ in fallback.behavioral_edges}
        assert earliest not in children

    def test_high_threshold_adds_nothing(self, lake_bundle, probes):
        result = recover_version_graph(
            lake_bundle.lake,
            config=RecoveryConfig(
                behavioral_probes=probes, behavioral_threshold=1.01
            ),
        )
        assert result.behavioral_edges == []
