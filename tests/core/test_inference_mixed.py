"""Inference agent over a mixed-modality lake (classifiers + LMs)."""

import pytest

from repro.core.inference import ModelInferenceAgent
from repro.lake import LakeSpec, generate_lake


@pytest.fixture(scope="module")
def mixed_bundle():
    spec = LakeSpec(
        num_foundations=1, chains_per_foundation=2, max_chain_depth=1,
        docs_per_domain=14, foundation_epochs=6, specialize_epochs=5,
        num_merges=0, num_stitches=0, seed=19,
        num_lm_foundations=1, lm_chains=1, lm_epochs=2,
    )
    return generate_lake(spec)


class TestMixedModalityInference:
    def test_agent_scores_every_candidate_modality(self, mixed_bundle, probes):
        """LM candidates get likelihood scores instead of accuracy, and
        the pipeline does not crash on them."""
        agent = ModelInferenceAgent(mixed_bundle.lake, probes, seed=0)
        result = agent.recommend(
            "legal court statute analysis",
            k=len(mixed_bundle.lake),
            candidate_pool=len(mixed_bundle.lake),
        )
        assert result.recommendations
        families = {
            mixed_bundle.lake.get_record(r.model_id).family
            for r in result.recommendations
        }
        # Classifiers dominate the verified ranking on a classification
        # benchmark, but LMs are scored, not skipped.
        assert "text_classifier" in families

    def test_classifier_outranks_lm_on_classification_task(
        self, mixed_bundle, probes
    ):
        agent = ModelInferenceAgent(mixed_bundle.lake, probes, seed=0)
        result = agent.recommend(
            "legal court statute analysis", k=1,
            candidate_pool=len(mixed_bundle.lake),
        )
        best = result.best()
        assert mixed_bundle.lake.get_record(best.model_id).family == (
            "text_classifier"
        )
