"""Tests for training-data attribution."""

import numpy as np
import pytest

from repro.core.attribution import (
    grad_dot_influence,
    input_similarity_baseline,
    leave_one_out_influence,
    random_baseline,
    tracin_influence,
)
from repro.data import make_domain_dataset
from repro.errors import ConfigError
from repro.nn import TextClassifier, train_classifier


@pytest.fixture(scope="module")
def attribution_setup(tokenizer):
    train = make_domain_dataset(
        ["legal", "medical", "news", "code"], 15, seq_len=20, seed=61,
        tokenizer=tokenizer,
    )
    model = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(16,), seed=0)
    result = train_classifier(
        model, train.tokens, train.labels, epochs=8, lr=5e-3, seed=0,
        checkpoint_every=3,
    )
    test = make_domain_dataset(["legal"], 2, seq_len=20, seed=62, tokenizer=tokenizer)
    return model, result, train, test


class TestGradDot:
    def test_same_domain_dominates(self, attribution_setup):
        model, _, train, test = attribution_setup
        result = grad_dot_influence(
            model, train.tokens, train.labels, test.tokens[0], int(test.labels[0])
        )
        top = result.top_k(8)
        same_domain = np.mean([train.domains[i] == "legal" for i in top])
        assert same_domain >= 0.75

    def test_scores_shape(self, attribution_setup):
        model, _, train, test = attribution_setup
        result = grad_dot_influence(
            model, train.tokens, train.labels, test.tokens[0], int(test.labels[0])
        )
        assert result.scores.shape == (len(train),)

    def test_top_k_sorted(self, attribution_setup):
        model, _, train, test = attribution_setup
        result = grad_dot_influence(
            model, train.tokens, train.labels, test.tokens[0], int(test.labels[0])
        )
        top = result.top_k(5)
        scores = result.scores[top]
        assert np.all(np.diff(scores) <= 1e-12)


class TestTracIn:
    def test_beats_random(self, attribution_setup, tokenizer):
        model, train_result, train, test = attribution_setup
        template = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(16,), seed=0)
        result = tracin_influence(
            train_result.checkpoints, train_result.checkpoint_lrs, template,
            train.tokens, train.labels, test.tokens[0], int(test.labels[0]),
        )
        top = result.top_k(8)
        same = np.mean([train.domains[i] == "legal" for i in top])
        rand = random_baseline(len(train), seed=0)
        rand_same = np.mean([train.domains[i] == "legal" for i in rand.top_k(8)])
        assert same > rand_same

    def test_checkpoint_mismatch_raises(self, attribution_setup, tokenizer):
        model, train_result, train, test = attribution_setup
        template = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(16,), seed=0)
        with pytest.raises(ConfigError):
            tracin_influence(
                train_result.checkpoints, [0.1], template,
                train.tokens, train.labels, test.tokens[0], 0,
            )

    def test_empty_checkpoints_raises(self, attribution_setup, tokenizer):
        _, _, train, test = attribution_setup
        template = TextClassifier(tokenizer.vocab_size, 8, dim=12, hidden=(16,), seed=0)
        with pytest.raises(ConfigError):
            tracin_influence([], [], template, train.tokens, train.labels,
                             test.tokens[0], 0)


class TestBaselines:
    def test_input_similarity_prefers_same_domain(self, attribution_setup):
        _, _, train, test = attribution_setup
        result = input_similarity_baseline(train.tokens, test.tokens[0])
        top = result.top_k(8)
        assert np.mean([train.domains[i] == "legal" for i in top]) >= 0.5

    def test_float_feature_path(self):
        rng = np.random.default_rng(0)
        train = rng.normal(size=(20, 6))
        result = input_similarity_baseline(train, train[3])
        assert result.top_k(1)[0] == 3


class TestLeaveOneOut:
    def test_loo_correlates_with_grad_dot(self, attribution_setup, tokenizer):
        """On a handful of candidates, LOO ground truth should broadly
        agree with the gradient estimator about sign/ranking."""
        model, _, train, test = attribution_setup
        grad = grad_dot_influence(
            model, train.tokens, train.labels, test.tokens[0], int(test.labels[0])
        )
        # Check the top-2 and bottom-2 grad-dot candidates with exact LOO.
        order = np.argsort(-grad.scores)
        candidates = [int(order[0]), int(order[1]), int(order[-1]), int(order[-2])]
        loo = leave_one_out_influence(
            model.architecture_spec(), train.tokens, train.labels,
            test.tokens[0], int(test.labels[0]), candidates,
            epochs=6, seed=1,
        )
        top_mean = loo.scores[candidates[:2]].mean()
        bottom_mean = loo.scores[candidates[2:]].mean()
        assert top_mean > bottom_mean
