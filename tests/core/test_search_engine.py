"""Tests for the unified search engine."""

import numpy as np
import pytest

from repro.core.search import SearchEngine
from repro.errors import ConfigError, ModelNotFoundError


@pytest.fixture(scope="module")
def engine(lake_bundle, probes):
    return SearchEngine(lake_bundle.lake, probes)


class TestTextSearch:
    def test_all_methods_return_hits(self, engine):
        for method in ("keyword", "behavioral", "hybrid"):
            hits = engine.search("court statute legal documents", k=5, method=method)
            assert hits, method
            assert all(h.method == method for h in hits)

    def test_unknown_method(self, engine):
        with pytest.raises(ConfigError):
            engine.search("legal", method="psychic")

    def test_weight_method_rejected_for_text(self, engine):
        with pytest.raises(ConfigError):
            engine.search("legal", method="weight")

    def test_hybrid_blends_channels(self, lake_bundle, probes):
        keyword_only = SearchEngine(lake_bundle.lake, probes, hybrid_alpha=1.0)
        content_only = SearchEngine(lake_bundle.lake, probes, hybrid_alpha=0.0)
        query = "legal court statute"
        kw = [h.model_id for h in keyword_only.search(query, k=5)]
        bh = [h.model_id for h in content_only.search(query, k=5)]
        kw_pure = [h.model_id for h in keyword_only.search(query, k=5, method="keyword")]
        bh_pure = [h.model_id for h in content_only.search(query, k=5, method="behavioral")]
        assert kw == kw_pure
        assert bh == bh_pure


class TestRelatedModels:
    def test_behavioral_view(self, engine, lake_bundle):
        model_id = lake_bundle.truth.foundations[0]
        hits = engine.related_models(model_id, k=3, view="behavioral")
        assert len(hits) == 3
        assert all(h.model_id != model_id for h in hits)

    def test_weight_view_finds_children(self, engine, lake_bundle):
        model_id = lake_bundle.truth.foundations[0]
        hits = engine.related_models(model_id, k=3, view="weight")
        children = {
            c for p, c, _ in lake_bundle.truth.edges if model_id in p
        }
        assert any(h.model_id in children for h in hits)

    def test_invalid_view(self, engine, lake_bundle):
        with pytest.raises(ConfigError):
            engine.related_models(lake_bundle.truth.foundations[0], view="vibes")


class TestStructuredQueries:
    def test_models_trained_on_base_corpus(self, engine, lake_bundle):
        hits = engine.models_trained_on(lake_bundle.base_dataset)
        hit_ids = {h.model_id for h in hits}
        for foundation in lake_bundle.truth.foundations:
            assert foundation in hit_ids

    def test_version_closure_included(self, engine, lake_bundle):
        """Models trained on derived specialty sets count as trained on
        versions of the base corpus."""
        hits = engine.models_trained_on(lake_bundle.base_dataset)
        evidences = {h.evidence for h in hits}
        assert "history-version" in evidences

    def test_models_outperforming(self, engine, lake_bundle):
        foundation = lake_bundle.truth.foundations[0]
        base_score = lake_bundle.lake.get_record(foundation).eval_metrics["acc_legal"]
        hits = engine.models_outperforming(foundation, "acc_legal", k=20)
        for hit in hits:
            assert hit.score > base_score
            assert hit.model_id != foundation

    def test_outperforming_unknown_metric(self, engine, lake_bundle):
        with pytest.raises(ConfigError):
            engine.models_outperforming(
                lake_bundle.truth.foundations[0], "acc_martian"
            )

    def test_resolve_name(self, engine, lake_bundle):
        record = lake_bundle.lake.get_record(lake_bundle.truth.foundations[0])
        assert engine.resolve_name(record.name) == record.model_id
        with pytest.raises(ModelNotFoundError):
            engine.resolve_name("missing-model")
