"""Tests for benchmarking metrics, ground truth, and scoring."""

import numpy as np
import pytest

from repro.core.benchmarking import (
    Benchmark,
    edge_precision_recall,
    kendall_tau,
    mean_reciprocal_rank,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
    run_suite,
    score_accuracy,
    score_macro_f1,
    score_model,
    search_ground_truth,
    transform_label_truth,
    undirected_edge_f1,
    version_edge_truth,
)
from repro.errors import ConfigError


class TestRankingMetrics:
    def test_precision_at_k(self):
        assert precision_at_k(["a", "b", "c"], {"a", "c"}, 2) == 0.5
        assert precision_at_k(["a", "b"], {"a", "b"}, 2) == 1.0

    def test_precision_invalid_k(self):
        with pytest.raises(ConfigError):
            precision_at_k(["a"], {"a"}, 0)

    def test_recall_at_k(self):
        assert recall_at_k(["a", "b"], {"a", "c"}, 2) == 0.5
        assert recall_at_k([], set(), 3) == 1.0

    def test_reciprocal_rank(self):
        assert reciprocal_rank(["x", "a"], {"a"}) == 0.5
        assert reciprocal_rank(["x", "y"], {"a"}) == 0.0

    def test_mrr(self):
        value = mean_reciprocal_rank([["a"], ["x", "b"]], [{"a"}, {"b"}])
        assert abs(value - 0.75) < 1e-12

    def test_ndcg_perfect_ranking(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert abs(ndcg_at_k(["a", "b", "c"], gains, 3) - 1.0) < 1e-12

    def test_ndcg_worse_for_inverted(self):
        gains = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["c", "b", "a"], gains, 3) < 1.0

    def test_kendall_tau(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0


class TestEdgeMetrics:
    def test_precision_recall_f1(self):
        predicted = {("a", "b"), ("b", "c")}
        truth = {("a", "b"), ("b", "d")}
        p, r, f = edge_precision_recall(predicted, truth)
        assert p == 0.5 and r == 0.5 and abs(f - 0.5) < 1e-12

    def test_empty_sets(self):
        assert edge_precision_recall(set(), set()) == (1.0, 1.0, 1.0)

    def test_undirected(self):
        predicted = {("b", "a")}
        truth = {("a", "b")}
        assert undirected_edge_f1(predicted, truth) == 1.0


class TestGroundTruth:
    def test_search_relevance_requires_competence_and_data(self, lake_bundle):
        truth = search_ground_truth(lake_bundle, accuracy_threshold=0.9)
        for domain, relevant in truth.relevant.items():
            for model_id in relevant:
                assert lake_bundle.truth.domain_accuracy[model_id][domain] >= 0.9
                assert domain in lake_bundle.truth.model_domains[model_id]

    def test_gains_are_accuracies(self, lake_bundle):
        truth = search_ground_truth(lake_bundle)
        some_model = lake_bundle.truth.foundations[0]
        assert truth.gains["legal"][some_model] == (
            lake_bundle.truth.domain_accuracy[some_model]["legal"]
        )

    def test_version_edge_truth_filters(self, lake_bundle):
        all_edges = version_edge_truth(lake_bundle)
        weight_edges = version_edge_truth(lake_bundle, weight_preserving_only=True)
        assert weight_edges <= all_edges

    def test_transform_labels_canonicalized(self, lake_bundle):
        labels = transform_label_truth(lake_bundle)
        assert "preference" not in set(labels.values())


class TestScoring:
    def test_accuracy_scorer(self, foundation_model, broad_dataset):
        benchmark = Benchmark("broad", broad_dataset, metric="accuracy")
        value = score_model(foundation_model, benchmark)
        assert value == score_accuracy(foundation_model, broad_dataset)
        assert value > 0.9

    def test_macro_f1(self, foundation_model, broad_dataset):
        value = score_macro_f1(foundation_model, broad_dataset)
        assert 0.0 <= value <= 1.0

    def test_unknown_metric(self, foundation_model, broad_dataset):
        with pytest.raises(ConfigError):
            score_model(foundation_model, Benchmark("x", broad_dataset, metric="bleu"))

    def test_run_suite_records_metrics(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        benchmark = Benchmark("eval", bundle.eval_dataset, metric="accuracy")
        result = run_suite(bundle.lake, [benchmark])
        assert result.evaluations == len(bundle.lake)
        for record in bundle.lake:
            assert "eval:accuracy" in record.eval_metrics

    def test_suite_table_renders(self, mutable_lake_bundle):
        bundle = mutable_lake_bundle
        benchmark = Benchmark("eval", bundle.eval_dataset, metric="accuracy")
        result = run_suite(bundle.lake, [benchmark], record_into_lake=False)
        table = result.table()
        assert len(table) == len(bundle.lake) + 1
