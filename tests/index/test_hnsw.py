"""Tests for the from-scratch HNSW index."""

import numpy as np
import pytest

from repro.errors import ConfigError, IndexError_
from repro.index import FlatIndex, HNSWIndex, measure_recall


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(7)
    # Clustered data (realistic for model embeddings).
    centers = rng.normal(size=(10, 16)) * 3
    vectors = np.concatenate([
        center + rng.normal(scale=0.3, size=(40, 16)) for center in centers
    ])
    ids = [f"v{i}" for i in range(len(vectors))]
    return ids, vectors


class TestHNSWConstruction:
    def test_validation(self):
        with pytest.raises(ConfigError):
            HNSWIndex(m=1)
        with pytest.raises(ConfigError):
            HNSWIndex(m=8, ef_construction=4)

    def test_duplicate_id_rejected(self):
        index = HNSWIndex(seed=0)
        index.add("a", np.ones(4))
        with pytest.raises(IndexError_):
            index.add("a", np.ones(4))

    def test_stats(self, corpus):
        ids, vectors = corpus
        index = HNSWIndex(m=6, ef_construction=32, seed=0)
        index.build(ids, vectors)
        stats = index.stats()
        assert stats["num_elements"] == len(ids)
        assert stats["num_layers"] >= 1
        assert stats["max_degree"] <= 2 * 6


class TestHNSWSearch:
    def test_empty(self):
        assert HNSWIndex(seed=0).query(np.ones(4)) == []

    def test_self_recall(self, corpus):
        ids, vectors = corpus
        index = HNSWIndex(m=8, ef_construction=64, ef_search=32, seed=0)
        index.build(ids, vectors)
        hits = sum(
            index.query(vectors[i], k=1)[0][0] == ids[i]
            for i in range(0, len(ids), 7)
        )
        assert hits >= len(range(0, len(ids), 7)) - 2

    def test_recall_vs_exact(self, corpus):
        ids, vectors = corpus
        flat = FlatIndex()
        flat.build(ids, vectors)
        index = HNSWIndex(m=8, ef_construction=64, ef_search=64, seed=0)
        index.build(ids, vectors)
        rng = np.random.default_rng(1)
        queries = rng.normal(size=(20, 16)) * 2
        recall = measure_recall(index, flat, queries, k=10)
        assert recall > 0.85

    def test_higher_ef_higher_recall(self, corpus):
        ids, vectors = corpus
        flat = FlatIndex()
        flat.build(ids, vectors)
        index = HNSWIndex(m=6, ef_construction=48, seed=0)
        index.build(ids, vectors)
        rng = np.random.default_rng(2)
        queries = rng.normal(size=(25, 16)) * 2
        low = np.mean([
            len({i for i, _ in index.query(q, k=10, ef=10)}
                & {i for i, _ in flat.query(q, k=10)}) / 10
            for q in queries
        ])
        high = np.mean([
            len({i for i, _ in index.query(q, k=10, ef=128)}
                & {i for i, _ in flat.query(q, k=10)}) / 10
            for q in queries
        ])
        assert high >= low

    def test_scores_are_cosine_similarities(self, corpus):
        ids, vectors = corpus
        index = HNSWIndex(m=8, ef_construction=48, seed=0)
        index.build(ids, vectors)
        results = index.query(vectors[0], k=1)
        assert abs(results[0][1] - 1.0) < 1e-9

    def test_incremental_insert_consistency(self):
        """Insertions after initial build remain findable."""
        rng = np.random.default_rng(3)
        index = HNSWIndex(m=6, ef_construction=32, ef_search=48, seed=0)
        vectors = rng.normal(size=(100, 8))
        for i, v in enumerate(vectors):
            index.add(f"v{i}", v)
        late = rng.normal(size=8)
        index.add("late", late)
        results = index.query(late, k=3)
        assert results[0][0] == "late"
