"""Parity tests: vectorized HNSW against the scalar reference path.

The vectorized search batches neighbor distances into one matrix op per
beam expansion; these tests pin down that it builds the same graph,
visits the same number of distances, returns the same neighbors, and
loses no recall versus the scalar implementation.
"""

import numpy as np
import pytest

from repro.index import FlatIndex, HNSWIndex, measure_recall


def _clustered(n: int, d: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(6, d))
    return centers[rng.integers(6, size=n)] + 0.25 * rng.normal(size=(n, d))


@pytest.fixture(scope="module")
def pair():
    vectors = _clustered(600, 24, seed=9)
    ids = [f"v{i}" for i in range(len(vectors))]
    scalar = HNSWIndex(seed=0, vectorized=False)
    scalar.build(ids, vectors)
    vectorized = HNSWIndex(seed=0, vectorized=True)
    vectorized.build(ids, vectors)
    return scalar, vectorized, vectors


class TestVectorizedParity:
    def test_identical_graph_structure(self, pair):
        scalar, vectorized, _ = pair
        assert scalar._neighbors == vectorized._neighbors
        assert scalar._entry_point == vectorized._entry_point
        assert scalar._max_layer == vectorized._max_layer

    def test_identical_distance_counts(self, pair):
        scalar, vectorized, _ = pair
        assert scalar.distance_computations == vectorized.distance_computations

    def test_same_neighbors_per_query(self, pair):
        scalar, vectorized, _ = pair
        rng = np.random.default_rng(4)
        for query in rng.normal(size=(25, 24)):
            scalar_hits = scalar.query(query, k=10)
            vector_hits = vectorized.query(query, k=10)
            assert [i for i, _ in scalar_hits] == [i for i, _ in vector_hits]
            # Scores may differ by float summation order only (~1 ulp).
            assert np.allclose(
                [s for _, s in scalar_hits],
                [s for _, s in vector_hits],
                atol=1e-12,
            )

    def test_recall_not_below_scalar(self, pair):
        scalar, vectorized, vectors = pair
        exact = FlatIndex()
        exact.build([f"v{i}" for i in range(len(vectors))], vectors)
        queries = np.random.default_rng(8).normal(size=(30, 24))
        recall_scalar = measure_recall(scalar, exact, queries, k=10)
        recall_vectorized = measure_recall(vectorized, exact, queries, k=10)
        assert recall_vectorized >= recall_scalar
        assert recall_vectorized > 0.6

    def test_default_is_vectorized(self):
        assert HNSWIndex().vectorized is True

    def test_incremental_add_parity(self):
        vectors = _clustered(120, 12, seed=3)
        scalar = HNSWIndex(m=4, ef_construction=16, ef_search=16,
                           seed=1, vectorized=False)
        vectorized = HNSWIndex(m=4, ef_construction=16, ef_search=16,
                               seed=1, vectorized=True)
        for i, vec in enumerate(vectors):
            scalar.add(f"v{i}", vec)
            vectorized.add(f"v{i}", vec)
        assert scalar._neighbors == vectorized._neighbors
        query = np.random.default_rng(0).normal(size=12)
        assert (
            [i for i, _ in scalar.query(query, k=5)]
            == [i for i, _ in vectorized.query(query, k=5)]
        )
