"""Tests for the hybrid (metadata + content) index."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.index import FlatIndex, HybridIndex


@pytest.fixture()
def channels():
    metadata = FlatIndex()
    content = FlatIndex()
    # Item "a": strong metadata match; item "b": strong content match.
    metadata.build(["a", "b"], np.array([[1.0, 0.0], [0.0, 1.0]]))
    content.build(["a", "b"], np.array([[0.0, 1.0], [1.0, 0.0]]))
    return metadata, content


class TestHybridIndex:
    def test_alpha_one_is_metadata_only(self, channels):
        metadata, content = channels
        hybrid = HybridIndex(metadata, content, alpha=1.0)
        results = hybrid.query(np.array([1.0, 0.0]), np.array([1.0, 0.0]), k=2)
        assert results[0][0] == "a"

    def test_alpha_zero_is_content_only(self, channels):
        metadata, content = channels
        hybrid = HybridIndex(metadata, content, alpha=0.0)
        results = hybrid.query(np.array([1.0, 0.0]), np.array([1.0, 0.0]), k=2)
        assert results[0][0] == "b"

    def test_fusion_sums_channels(self, channels):
        metadata, content = channels
        hybrid = HybridIndex(metadata, content, alpha=0.5)
        results = dict(hybrid.query(np.array([1.0, 0.0]), np.array([0.0, 1.0]), k=2))
        # "a" matches both channels here.
        assert results["a"] > results["b"]

    def test_none_channel_skipped(self, channels):
        metadata, content = channels
        hybrid = HybridIndex(metadata, content, alpha=0.5)
        results = hybrid.query(None, np.array([1.0, 0.0]), k=2)
        assert results[0][0] == "b"

    def test_invalid_alpha(self, channels):
        metadata, content = channels
        with pytest.raises(ConfigError):
            HybridIndex(metadata, content, alpha=1.5)
