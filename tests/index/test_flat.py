"""Tests for the exact flat index."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index import FlatIndex


@pytest.fixture()
def built():
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(50, 8))
    ids = [f"m{i}" for i in range(50)]
    index = FlatIndex()
    index.build(ids, vectors)
    return index, ids, vectors


class TestFlatIndex:
    def test_self_query_top1(self, built):
        index, ids, vectors = built
        for i in (0, 10, 49):
            results = index.query(vectors[i], k=1)
            assert results[0][0] == ids[i]
            assert abs(results[0][1] - 1.0) < 1e-9

    def test_scores_descending(self, built):
        index, _, vectors = built
        results = index.query(vectors[0], k=10)
        scores = [s for _, s in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_larger_than_index(self, built):
        index, _, vectors = built
        assert len(index.query(vectors[0], k=500)) == 50

    def test_empty_index(self):
        assert FlatIndex().query(np.ones(4)) == []

    def test_incremental_add_matches_build(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(10, 4))
        ids = [f"v{i}" for i in range(10)]
        a = FlatIndex()
        a.build(ids, vectors)
        b = FlatIndex()
        for item_id, vec in zip(ids, vectors):
            b.add(item_id, vec)
        q = rng.normal(size=4)
        result_a, result_b = a.query(q, k=5), b.query(q, k=5)
        assert [i for i, _ in result_a] == [i for i, _ in result_b]
        assert np.allclose([s for _, s in result_a], [s for _, s in result_b])

    def test_dim_mismatch(self, built):
        index, _, _ = built
        with pytest.raises(IndexError_):
            index.add("bad", np.ones(3))

    def test_build_length_mismatch(self):
        with pytest.raises(IndexError_):
            FlatIndex().build(["a"], np.ones((2, 3)))

    def test_vector_of(self, built):
        index, ids, vectors = built
        stored = index.vector_of(ids[3])
        expected = vectors[3] / np.linalg.norm(vectors[3])
        assert np.allclose(stored, expected)

    def test_vector_of_unknown(self, built):
        index, _, _ = built
        with pytest.raises(IndexError_):
            index.vector_of("nope")
