"""Tests for the exact flat index."""

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.index import FlatIndex


@pytest.fixture()
def built():
    rng = np.random.default_rng(0)
    vectors = rng.normal(size=(50, 8))
    ids = [f"m{i}" for i in range(50)]
    index = FlatIndex()
    index.build(ids, vectors)
    return index, ids, vectors


class TestFlatIndex:
    def test_self_query_top1(self, built):
        index, ids, vectors = built
        for i in (0, 10, 49):
            results = index.query(vectors[i], k=1)
            assert results[0][0] == ids[i]
            assert abs(results[0][1] - 1.0) < 1e-9

    def test_scores_descending(self, built):
        index, _, vectors = built
        results = index.query(vectors[0], k=10)
        scores = [s for _, s in results]
        assert scores == sorted(scores, reverse=True)

    def test_k_larger_than_index(self, built):
        index, _, vectors = built
        assert len(index.query(vectors[0], k=500)) == 50

    def test_empty_index(self):
        assert FlatIndex().query(np.ones(4)) == []

    def test_incremental_add_matches_build(self):
        rng = np.random.default_rng(1)
        vectors = rng.normal(size=(10, 4))
        ids = [f"v{i}" for i in range(10)]
        a = FlatIndex()
        a.build(ids, vectors)
        b = FlatIndex()
        for item_id, vec in zip(ids, vectors):
            b.add(item_id, vec)
        q = rng.normal(size=4)
        result_a, result_b = a.query(q, k=5), b.query(q, k=5)
        assert [i for i, _ in result_a] == [i for i, _ in result_b]
        assert np.allclose([s for _, s in result_a], [s for _, s in result_b])

    def test_dim_mismatch(self, built):
        index, _, _ = built
        with pytest.raises(IndexError_):
            index.add("bad", np.ones(3))

    def test_build_length_mismatch(self):
        with pytest.raises(IndexError_):
            FlatIndex().build(["a"], np.ones((2, 3)))

    def test_vector_of(self, built):
        index, ids, vectors = built
        stored = index.vector_of(ids[3])
        expected = vectors[3] / np.linalg.norm(vectors[3])
        assert np.allclose(stored, expected)

    def test_vector_of_unknown(self, built):
        index, _, _ = built
        with pytest.raises(IndexError_):
            index.vector_of("nope")


class TestBufferedAdds:
    """The add path buffers rows; every read must see buffered state."""

    def test_len_counts_pending(self):
        index = FlatIndex()
        index.add("a", np.ones(4))
        index.add("b", np.ones(4))
        assert len(index) == 2

    def test_vector_of_pending_row(self):
        index = FlatIndex()
        vec = np.array([3.0, 4.0, 0.0])
        index.add("a", vec)
        assert np.allclose(index.vector_of("a"), vec / 5.0)

    def test_query_between_adds(self):
        rng = np.random.default_rng(2)
        vectors = rng.normal(size=(6, 5))
        index = FlatIndex()
        for i in range(3):
            index.add(f"v{i}", vectors[i])
        first = index.query(vectors[0], k=1)
        assert first[0][0] == "v0"
        for i in range(3, 6):
            index.add(f"v{i}", vectors[i])
        assert index.query(vectors[5], k=1)[0][0] == "v5"
        assert len(index.query(vectors[0], k=10)) == 6

    def test_dim_mismatch_against_pending(self):
        index = FlatIndex()
        index.add("a", np.ones(4))
        with pytest.raises(IndexError_):
            index.add("b", np.ones(3))

    def test_duplicate_id_keeps_first_vector(self):
        index = FlatIndex()
        index.add("x", np.array([1.0, 0.0]))
        index.add("x", np.array([0.0, 1.0]))
        assert np.allclose(index.vector_of("x"), [1.0, 0.0])

    def test_build_resets_previous_adds(self):
        index = FlatIndex()
        index.add("old", np.ones(2))
        index.build(["new"], np.array([[0.0, 1.0]]))
        assert len(index) == 1
        with pytest.raises(IndexError_):
            index.vector_of("old")
        assert np.allclose(index.vector_of("new"), [0.0, 1.0])


class TestFlatIndexConsistency:
    """Buffered adds, concurrent access, and cross-process pickling."""

    def test_search_sees_adds_before_flush(self):
        rng = np.random.default_rng(3)
        index = FlatIndex()
        index.build(["a", "b"], rng.normal(size=(2, 8)))
        late = rng.normal(size=8)
        index.add("late", late)
        # No explicit seal: the query itself must flush the buffer.
        results = index.query(late, k=3)
        assert results[0][0] == "late"
        assert len(index.query(late, k=10)) == 3

    def test_seal_is_idempotent(self):
        rng = np.random.default_rng(4)
        index = FlatIndex()
        index.add("a", rng.normal(size=4))
        index.seal()
        index.seal()
        assert len(index.query(np.ones(4), k=5)) == 1

    def test_query_batch_matches_query_loop(self):
        rng = np.random.default_rng(5)
        vectors = rng.normal(size=(40, 8))
        index = FlatIndex()
        index.build([f"m{i}" for i in range(40)], vectors)
        queries = rng.normal(size=(6, 8))
        batched = index.query_batch(queries, k=7)
        for row, expected in zip(queries, batched):
            assert index.query(row, k=7) == expected

    def test_concurrent_add_and_query_never_corrupts(self):
        """Readers racing writers see consistent views, and every add
        lands exactly once (the old double-materialize duplicated rows)."""
        import threading

        rng = np.random.default_rng(6)
        index = FlatIndex()
        index.build(["seed"], rng.normal(size=(1, 8)))
        probe = rng.normal(size=8)
        errors = []
        barrier = threading.Barrier(8)

        def writer(wid: int) -> None:
            barrier.wait()
            for i in range(25):
                index.add(f"w{wid}-{i}", rng.normal(size=8))

        def reader() -> None:
            barrier.wait()
            for _ in range(50):
                results = index.query(probe, k=10)
                ids = [item_id for item_id, _ in results]
                if len(ids) != len(set(ids)):
                    errors.append(f"duplicate ids in one view: {ids}")

        threads = [
            # Racing the index lock is the point of this test.
            *(threading.Thread(target=writer, args=(wid,)) for wid in range(4)),  # repro: noqa[shared-state-race]
            *(threading.Thread(target=reader) for _ in range(4)),  # repro: noqa[shared-state-race]
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(index) == 1 + 4 * 25
        assert len(index.query(probe, k=1000)) == 1 + 4 * 25

    def test_pickle_roundtrip_preserves_results(self):
        """Shard builds ship indexes across process boundaries."""
        import pickle

        rng = np.random.default_rng(7)
        index = FlatIndex()
        index.build([f"m{i}" for i in range(10)], rng.normal(size=(10, 8)))
        index.add("extra", rng.normal(size=8))
        clone = pickle.loads(pickle.dumps(index))
        probe = rng.normal(size=8)
        assert clone.query(probe, k=5) == index.query(probe, k=5)
        clone.add("post-clone", rng.normal(size=8))  # lock was restored
        assert len(clone.query(probe, k=100)) == 12
