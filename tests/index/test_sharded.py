"""Tests for the shard-partitioned index and its deterministic merge."""

import numpy as np
import pytest

from repro.errors import ConfigError, IndexError_
from repro.index import FlatIndex, ShardedIndex


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(13)
    vectors = rng.normal(size=(60, 12))
    ids = [f"{rng.choice(list('abcd'))}{i:03d}" for i in range(60)]
    queries = rng.normal(size=(5, 12))
    return ids, vectors, queries


class TestShardedFlat:
    def test_flat_backend_matches_global_flat_exactly(self, corpus):
        ids, vectors, queries = corpus
        flat = FlatIndex()
        flat.build(ids, vectors)
        sharded = ShardedIndex(backend="flat", prefix_len=1)
        sharded.build(ids, vectors)
        for query in queries:
            expected = flat.query(query, k=7)
            got = sharded.query(query, k=7)
            assert [i for i, _ in got] == [i for i, _ in expected]
            assert np.allclose(
                [s for _, s in got], [s for _, s in expected]
            )

    def test_explicit_keys_partition(self, corpus):
        ids, vectors, _ = corpus
        keys = ["even" if i % 2 == 0 else "odd" for i in range(len(ids))]
        index = ShardedIndex(backend="flat")
        index.build(ids, vectors, keys=keys)
        assert index.shard_keys == ["even", "odd"]
        assert len(index) == len(ids)

    def test_vector_of_delegates_to_owning_shard(self, corpus):
        ids, vectors, _ = corpus
        index = ShardedIndex(backend="flat", prefix_len=1)
        index.build(ids, vectors)
        # Flat shards store l2-normalized rows, like the global index.
        expected = vectors[3] / np.linalg.norm(vectors[3])
        assert np.allclose(index.vector_of(ids[3]), expected)
        with pytest.raises(IndexError_):
            index.vector_of("zzz-not-there")

    def test_merge_is_worker_count_invariant(self, corpus):
        ids, vectors, queries = corpus
        inline = ShardedIndex(backend="flat", prefix_len=1, workers=1)
        inline.build(ids, vectors)
        waved = ShardedIndex(backend="flat", prefix_len=1, workers=2)
        waved.build(ids, vectors)
        assert inline.shard_keys == waved.shard_keys
        for query in queries:
            assert inline.query(query, k=9) == waved.query(query, k=9)


class TestShardedHNSW:
    def test_hnsw_backend_builds_and_queries(self, corpus):
        ids, vectors, queries = corpus
        index = ShardedIndex(
            backend="hnsw", prefix_len=1,
            m=4, ef_construction=32, ef_search=24, seed=0,
        )
        index.build(ids, vectors)
        for query in queries:
            hits = index.query(query, k=5)
            assert len(hits) == 5
            assert len({i for i, _ in hits}) == 5
            scores = [s for _, s in hits]
            assert scores == sorted(scores, reverse=True)

    def test_hnsw_merge_deterministic_across_builds(self, corpus):
        ids, vectors, queries = corpus
        kwargs = dict(m=4, ef_construction=32, ef_search=24, seed=0)
        first = ShardedIndex(backend="hnsw", prefix_len=1, **kwargs)
        first.build(ids, vectors)
        second = ShardedIndex(backend="hnsw", prefix_len=1, **kwargs)
        second.build(ids, vectors)
        for query in queries:
            assert first.query(query, k=6) == second.query(query, k=6)


class TestValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            ShardedIndex(backend="lsh")

    def test_mismatched_lengths_rejected(self, corpus):
        ids, vectors, _ = corpus
        index = ShardedIndex(backend="flat")
        with pytest.raises(IndexError_):
            index.build(ids[:-1], vectors)
        with pytest.raises(IndexError_):
            index.build(ids, vectors, keys=["a"])
