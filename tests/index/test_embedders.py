"""Tests for model embedders."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.index import (
    BehavioralEmbedder,
    ConcatEmbedder,
    MetadataEmbedder,
    OutputEmbedder,
    WeightStatEmbedder,
    l2_normalize,
)
from repro.lake import ModelCard
from repro.nn import TransformerLM


class TestL2Normalize:
    def test_unit_norm(self):
        v = l2_normalize(np.array([3.0, 4.0]))
        assert abs(np.linalg.norm(v) - 1.0) < 1e-12

    def test_zero_vector_unchanged(self):
        assert np.array_equal(l2_normalize(np.zeros(3)), np.zeros(3))


class TestBehavioralEmbedder:
    def test_unit_vectors(self, probes, foundation_model):
        embedder = BehavioralEmbedder(probes)
        vector = embedder.embed(foundation_model)
        assert vector.shape == (probes.num_probes,)
        assert abs(np.linalg.norm(vector) - 1.0) < 1e-9

    def test_identical_models_identical_embeddings(self, probes, foundation_model):
        from repro.transforms import clone_model

        embedder = BehavioralEmbedder(probes)
        a = embedder.embed(foundation_model)
        b = embedder.embed(clone_model(foundation_model))
        assert np.allclose(a, b)

    def test_lm_profile_in_unit_range(self, probes):
        embedder = BehavioralEmbedder(probes)
        lm = TransformerLM(
            vocab_size=300, d_model=16, num_heads=2, num_layers=1,
            max_seq_len=probes.seq_len, seed=0,
        )
        vector = embedder.embed(lm)
        assert vector.shape == (probes.num_probes,)
        assert np.all(np.isfinite(vector))

    def test_specialist_peaks_on_specialty(self, probes, lake_bundle):
        """A domain specialist's profile mass concentrates on its domain."""
        embedder = BehavioralEmbedder(probes)
        domains = np.asarray(probes.domains)
        best = None
        for model_id, specialty in lake_bundle.truth.specialty.items():
            transform = lake_bundle.truth.transform_of(model_id)
            if specialty is None or transform is None or transform.kind != "finetune":
                continue
            model = lake_bundle.lake.get_model(model_id, force=True)
            profile = embedder.embed(model)
            on_specialty = profile[domains == specialty].mean()
            off = profile[domains != specialty].mean()
            best = (on_specialty, off)
            assert on_specialty >= off
        assert best is not None


class TestOutputEmbedder:
    def test_dim(self, probes, foundation_model):
        embedder = OutputEmbedder(probes)
        vector = embedder.embed(foundation_model)
        assert vector.shape == (probes.num_probes * 8,)

    def test_rejects_lm(self, probes):
        lm = TransformerLM(vocab_size=10, d_model=8, num_heads=2, num_layers=1, seed=0)
        with pytest.raises(ConfigError):
            OutputEmbedder(probes).embed(lm)


class TestWeightStatEmbedder:
    def test_fixed_dim_across_architectures(self, foundation_model, vocabulary):
        from repro.nn import TextClassifier

        embedder = WeightStatEmbedder()
        a = embedder.embed(foundation_model)
        other = TextClassifier(len(vocabulary), 8, dim=20, hidden=(16, 16), seed=3)
        b = embedder.embed(other)
        assert a.shape == b.shape == (embedder.dim,)

    def test_pruning_signature_visible(self, foundation_model):
        from repro.transforms import prune_model

        embedder = WeightStatEmbedder()
        pruned, _ = prune_model(foundation_model, sparsity=0.7)
        base = embedder.embed(foundation_model)
        after = embedder.embed(pruned)
        assert not np.allclose(base, after)

    def test_finetune_child_closer_than_stranger(self, lake_bundle):
        embedder = WeightStatEmbedder()
        truth = lake_bundle.truth
        lake = lake_bundle.lake
        edge = next(
            e for e in truth.edges if e[2].kind == "finetune" and len(e[0]) == 1
        )
        parent_vec = embedder.embed(lake.get_model(edge[0][0], force=True))
        child_vec = embedder.embed(lake.get_model(edge[1], force=True))
        stranger_id = next(
            f for f in truth.foundations if f != edge[0][0]
        )
        stranger_vec = embedder.embed(lake.get_model(stranger_id, force=True))
        assert parent_vec @ child_vec > parent_vec @ stranger_vec


class TestMetadataEmbedder:
    def test_similar_cards_closer(self):
        embedder = MetadataEmbedder(dim=128)
        legal_a = ModelCard(model_name="a", description="legal court contract model")
        legal_b = ModelCard(model_name="b", description="court statute legal expert")
        cooking = ModelCard(model_name="c", description="recipe sauce oven baking")
        sim_legal = embedder.embed_card(legal_a) @ embedder.embed_card(legal_b)
        sim_cross = embedder.embed_card(legal_a) @ embedder.embed_card(cooking)
        assert sim_legal > sim_cross

    def test_invalid_dim(self):
        with pytest.raises(ConfigError):
            MetadataEmbedder(dim=0)


class TestConcatEmbedder:
    def test_concatenates(self, probes, foundation_model):
        behavioral = BehavioralEmbedder(probes)
        weights = WeightStatEmbedder()
        combined = ConcatEmbedder([behavioral, weights], weights=[1.0, 0.5])
        vector = combined.embed(foundation_model)
        assert vector.shape == (behavioral.dim + weights.dim,)
        assert abs(np.linalg.norm(vector) - 1.0) < 1e-9

    def test_validation(self, probes):
        with pytest.raises(ConfigError):
            ConcatEmbedder([])
        with pytest.raises(ConfigError):
            ConcatEmbedder([BehavioralEmbedder(probes)], weights=[1.0, 2.0])
