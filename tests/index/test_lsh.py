"""Tests for the LSH index."""

import numpy as np
import pytest

from repro.errors import ConfigError, IndexError_
from repro.index import FlatIndex, LSHIndex


class TestLSH:
    def test_validation(self):
        with pytest.raises(ConfigError):
            LSHIndex(num_tables=0)

    def test_self_query(self):
        rng = np.random.default_rng(0)
        vectors = rng.normal(size=(30, 8))
        index = LSHIndex(num_tables=6, bits_per_table=6, seed=0)
        index.build([f"v{i}" for i in range(30)], vectors)
        results = index.query(vectors[4], k=1)
        assert results[0][0] == "v4"

    def test_empty(self):
        assert LSHIndex(seed=0).query(np.ones(4)) == []

    def test_dim_mismatch(self):
        index = LSHIndex(seed=0)
        index.add("a", np.ones(4))
        with pytest.raises(IndexError_):
            index.add("b", np.ones(5))

    def test_reasonable_recall_on_clustered_data(self):
        rng = np.random.default_rng(5)
        centers = rng.normal(size=(5, 12)) * 4
        vectors = np.concatenate([
            c + rng.normal(scale=0.2, size=(30, 12)) for c in centers
        ])
        ids = [f"v{i}" for i in range(len(vectors))]
        flat = FlatIndex()
        flat.build(ids, vectors)
        lsh = LSHIndex(num_tables=10, bits_per_table=6, seed=0)
        lsh.build(ids, vectors)
        recalls = []
        for i in range(0, len(ids), 15):
            exact = {x for x, _ in flat.query(vectors[i], k=5)}
            approx = {x for x, _ in lsh.query(vectors[i], k=5)}
            recalls.append(len(exact & approx) / 5)
        assert np.mean(recalls) > 0.6

    def test_fallback_when_no_collision(self):
        """A query colliding with nothing falls back to a full scan."""
        rng = np.random.default_rng(1)
        index = LSHIndex(num_tables=1, bits_per_table=16, seed=0)
        index.build(["a", "b"], rng.normal(size=(2, 6)))
        results = index.query(rng.normal(size=6) * 100, k=2)
        assert len(results) == 2
