"""Tests for the persistent embedding cache and its SearchEngine wiring."""

import numpy as np
import pytest

from repro.core.search import SearchEngine
from repro.index import EmbeddingCache
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    EMBED_CACHE_HITS,
    EMBED_CACHE_MISSES,
    LAKE_MODEL_LOADS,
)


class TestEmbeddingCache:
    def test_miss_then_hit_in_memory(self):
        cache = EmbeddingCache()
        assert cache.get("space", "digest") is None
        cache.put("space", "digest", np.arange(3.0))
        assert np.allclose(cache.get("space", "digest"), [0.0, 1.0, 2.0])

    def test_spaces_are_isolated(self):
        cache = EmbeddingCache()
        cache.put("a", "d", np.ones(2))
        assert cache.get("b", "d") is None

    def test_persists_across_instances(self, tmp_path):
        first = EmbeddingCache(str(tmp_path))
        first.put("weightstat-s4", "abc123", np.array([1.0, 2.0]))
        first.flush()
        second = EmbeddingCache(str(tmp_path))
        assert np.allclose(second.get("weightstat-s4", "abc123"), [1.0, 2.0])

    def test_flush_is_idempotent_and_memory_mode_safe(self, tmp_path):
        EmbeddingCache().flush()
        cache = EmbeddingCache(str(tmp_path))
        cache.flush()
        cache.put("s", "d", np.zeros(1))
        cache.flush()
        cache.flush()
        assert np.allclose(EmbeddingCache(str(tmp_path)).get("s", "d"), [0.0])

    def test_hit_miss_counters(self):
        registry = obs_metrics.get_registry()
        hits = registry.counter(EMBED_CACHE_HITS)
        misses = registry.counter(EMBED_CACHE_MISSES)
        cache = EmbeddingCache()
        h0, m0 = hits.value, misses.value
        cache.get("s", "d")
        assert (hits.value, misses.value) == (h0, m0 + 1)
        cache.put("s", "d", np.ones(1))
        cache.get("s", "d")
        assert (hits.value, misses.value) == (h0 + 1, m0 + 1)


class TestShardedEmbeddingCache:
    def test_round_trip_across_instances(self, tmp_path):
        first = EmbeddingCache(str(tmp_path), prefix_len=2)
        first.put("space", "ab1234", np.array([1.0, 2.0]))
        first.put("space", "cd5678", np.array([3.0, 4.0]))
        first.flush()
        second = EmbeddingCache(str(tmp_path), prefix_len=2)
        assert np.allclose(second.get("space", "ab1234"), [1.0, 2.0])
        assert np.allclose(second.get("space", "cd5678"), [3.0, 4.0])

    def test_one_file_per_shard(self, tmp_path):
        cache = EmbeddingCache(str(tmp_path), prefix_len=2)
        cache.put("space", "ab1234", np.ones(2))
        cache.put("space", "ab9999", np.ones(2))
        cache.put("space", "cd5678", np.ones(2))
        cache.flush()
        shard_dir = tmp_path / "embeddings-space"
        assert sorted(p.name for p in shard_dir.iterdir()) == [
            "ab.npz", "cd.npz",
        ]

    def test_shards_load_lazily(self, tmp_path):
        seeded = EmbeddingCache(str(tmp_path), prefix_len=2)
        seeded.put("space", "ab1234", np.ones(2))
        seeded.put("space", "cd5678", np.ones(2))
        seeded.flush()
        cache = EmbeddingCache(str(tmp_path), prefix_len=2)
        assert cache.get("space", "ab1234") is not None
        loaded = cache._spaces["space"]
        assert "ab" in loaded and "cd" not in loaded

    def test_flush_only_rewrites_dirty_shards(self, tmp_path):
        cache = EmbeddingCache(str(tmp_path), prefix_len=2)
        cache.put("space", "ab1234", np.ones(2))
        cache.flush()
        first_mtime = (tmp_path / "embeddings-space" / "ab.npz").stat().st_mtime_ns
        cache.put("space", "cd5678", np.ones(2))
        cache.flush()
        assert (
            tmp_path / "embeddings-space" / "ab.npz"
        ).stat().st_mtime_ns == first_mtime


class TestSearchEngineCache:
    @pytest.fixture()
    def lake(self, lake_bundle):
        return lake_bundle.lake

    def test_warm_rebuild_loads_no_models(self, lake, probes, tmp_path):
        cache_dir = str(tmp_path / "cache")
        registry = obs_metrics.get_registry()
        loads = registry.counter(LAKE_MODEL_LOADS)

        cold_start = loads.value
        cold = SearchEngine(lake, probes, cache_dir=cache_dir)
        assert loads.value > cold_start  # cold build embeds models

        warm_start = loads.value
        warm = SearchEngine(lake, probes, cache_dir=cache_dir)
        assert loads.value == warm_start  # warm build loads zero models

        for query in ("legal contracts", "medical notes"):
            assert (
                [(h.model_id, round(h.score, 12)) for h in cold.search(query, k=5)]
                == [(h.model_id, round(h.score, 12)) for h in warm.search(query, k=5)]
            )

    def test_warm_rebuild_across_processes_shape(self, lake, probes, tmp_path):
        """The on-disk layout is one npz per embedding space."""
        cache_dir = tmp_path / "cache"
        SearchEngine(lake, probes, cache_dir=str(cache_dir))
        files = sorted(p.name for p in cache_dir.iterdir())
        assert any(f.startswith("embeddings-behavioral-") for f in files)
        assert "embeddings-weightstat-s4.npz" in files

    def test_shared_cache_object(self, lake, probes):
        cache = EmbeddingCache()
        SearchEngine(lake, probes, cache=cache)
        registry = obs_metrics.get_registry()
        loads = registry.counter(LAKE_MODEL_LOADS)
        before = loads.value
        SearchEngine(lake, probes, cache=cache)
        assert loads.value == before

    def test_engine_without_cache_still_works(self, lake, probes):
        engine = SearchEngine(lake, probes)
        assert engine.cache is None
        assert engine.search("legal", k=3)


class TestCacheThreadSafety:
    """Regression tests for the lazy first-touch / flush races.

    Before the cache grew its lock, two threads first-touching the same
    shard both missed ``shards.get``, both read the npz, and the loser's
    ``shards[shard] = vectors`` replaced the dict the winner had already
    put fresh embeddings into — embeddings a later flush then silently
    dropped.  These tests force that interleaving with a gated
    ``np.load`` and assert the put survives.
    """

    def test_put_racing_lazy_load_is_not_lost(self, tmp_path, monkeypatch):
        import threading
        import time

        seeded = EmbeddingCache(str(tmp_path))
        seeded.put("s", "aa11", np.ones(2))
        seeded.flush()

        cache = EmbeddingCache(str(tmp_path))
        load_entered = threading.Event()
        release_load = threading.Event()
        real_load = np.load

        def gated_load(path, *args, **kwargs):
            load_entered.set()
            release_load.wait(timeout=10)
            return real_load(path, *args, **kwargs)

        monkeypatch.setattr(np, "load", gated_load)
        loader = threading.Thread(target=lambda: cache.get("s", "aa11"))
        loader.start()
        assert load_entered.wait(timeout=10)
        # The writer races the in-flight first-touch load; with the
        # cache lock it must wait for the load instead of inserting
        # into a dict the load is about to replace.
        writer = threading.Thread(
            target=lambda: cache.put("s", "bb22", np.full(2, 7.0))
        )
        writer.start()
        time.sleep(0.05)  # let the writer reach the lock
        release_load.set()
        loader.join(timeout=10)
        writer.join(timeout=10)
        monkeypatch.setattr(np, "load", real_load)

        assert np.allclose(cache.get("s", "bb22"), 7.0)
        cache.flush()
        reread = EmbeddingCache(str(tmp_path))
        assert reread.get("s", "bb22") is not None
        assert np.allclose(reread.get("s", "aa11"), 1.0)

    def test_concurrent_first_touch_reads_disk_once(self, tmp_path, monkeypatch):
        import threading
        import time

        seeded = EmbeddingCache(str(tmp_path))
        seeded.put("s", "aa11", np.ones(2))
        seeded.flush()

        cache = EmbeddingCache(str(tmp_path))
        calls = []
        real_load = np.load

        def counting_load(path, *args, **kwargs):
            calls.append(path)
            time.sleep(0.05)  # widen the race window
            return real_load(path, *args, **kwargs)

        monkeypatch.setattr(np, "load", counting_load)
        threads = [
            threading.Thread(target=lambda: cache.get("s", "aa11"))
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        monkeypatch.setattr(np, "load", real_load)
        assert len(calls) == 1  # exactly one thread performed the read

    def test_flush_racing_put_keeps_dirty_mark(self, tmp_path):
        """A put during a flush sweep must not lose its dirty mark."""
        import threading

        cache = EmbeddingCache(str(tmp_path))
        cache.put("s", "aa11", np.ones(2))

        done = threading.Event()

        def flusher():
            for _ in range(20):
                cache.flush()
            done.set()

        def putter():
            for index in range(20):
                cache.put("s", f"d{index:04d}", np.full(2, float(index)))

        threads = [
            threading.Thread(target=flusher),
            threading.Thread(target=putter),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        cache.flush()
        reread = EmbeddingCache(str(tmp_path))
        for index in range(20):
            assert reread.get("s", f"d{index:04d}") is not None, index
