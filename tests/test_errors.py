"""Tests for the error hierarchy contract."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_inherit_repro_error(self):
        for name in (
            "LakeError", "ModelNotFoundError", "DatasetNotFoundError",
            "DuplicateIdError", "HistoryUnavailableError",
            "IntrinsicsUnavailableError", "ShapeError", "ConfigError",
            "QueryError", "IndexError_", "TransformError",
            "IncompatibleModelsError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_not_found_errors_are_key_errors(self):
        """Callers can catch them as KeyError (mapping semantics)."""
        assert issubclass(errors.ModelNotFoundError, KeyError)
        assert issubclass(errors.DatasetNotFoundError, KeyError)

    def test_value_errors(self):
        """Config/shape/query errors double as ValueError."""
        for cls in (errors.ShapeError, errors.ConfigError, errors.QueryError):
            assert issubclass(cls, ValueError)

    def test_messages_carry_ids(self):
        error = errors.ModelNotFoundError("m1234")
        assert "m1234" in str(error)
        assert error.model_id == "m1234"
        error2 = errors.DatasetNotFoundError("d5678")
        assert error2.dataset_id == "d5678"

    def test_incompatible_is_transform_error(self):
        assert issubclass(errors.IncompatibleModelsError, errors.TransformError)

    def test_catching_base_catches_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.QueryError("bad query")
        with pytest.raises(errors.ReproError):
            raise errors.IncompatibleModelsError("no")
