"""Dependency-aware incremental caching: an edit re-analyzes exactly
the edited file plus its reverse-import closure."""

import json

from repro.analysis.graph import GraphCache, analyze_project
from repro.utils.hashing import stable_hash

CHAIN = {
    "src/pkg/app.py": "import pkg.mid\n\nVALUE = pkg.mid.X\n",
    "src/pkg/mid.py": "import pkg.base\n\nX = pkg.base.X\n",
    "src/pkg/base.py": "X = 1\n",
    "src/pkg/loner.py": "Y = 2\n",
}


def as_files(tree):
    return {rel: (src, stable_hash(src)) for rel, src in tree.items()}


def run(tmp_path, tree):
    """One analyze_project round through the persistent cache file."""
    cache = GraphCache(str(tmp_path / "cache.json"))
    report = analyze_project(as_files(tree), None, cache)
    cache.save()
    return report, cache


def test_cold_run_analyzes_everything(tmp_path):
    report, cache = run(tmp_path, CHAIN)
    assert report.files_reanalyzed == len(CHAIN)
    assert cache.module_misses == len(CHAIN)
    assert cache.extraction_misses == len(CHAIN)


def test_warm_run_replays_entirely_from_cache(tmp_path):
    run(tmp_path, CHAIN)
    report, cache = run(tmp_path, CHAIN)
    assert report.files_reanalyzed == 0
    assert cache.module_hits == len(CHAIN)
    assert cache.extraction_hits == len(CHAIN)
    assert cache.extraction_misses == 0


def test_edit_invalidates_only_the_reverse_import_closure(tmp_path):
    run(tmp_path, CHAIN)
    edited = dict(CHAIN)
    edited["src/pkg/base.py"] = "X = 1  # touched\n"
    report, cache = run(tmp_path, edited)
    # base + mid + app re-analyze; loner replays from cache.
    assert report.files_reanalyzed == 3
    assert cache.module_hits == 1
    assert cache.extraction_misses == 1  # only base re-parses


def test_editing_a_leaf_invalidates_only_itself(tmp_path):
    run(tmp_path, CHAIN)
    edited = dict(CHAIN)
    edited["src/pkg/loner.py"] = "Y = 3\n"
    report, _cache = run(tmp_path, edited)
    assert report.files_reanalyzed == 1


def test_editing_the_middle_spares_the_bottom(tmp_path):
    run(tmp_path, CHAIN)
    edited = dict(CHAIN)
    edited["src/pkg/mid.py"] = "import pkg.base\n\nX = pkg.base.X + 0\n"
    report, _cache = run(tmp_path, edited)
    assert report.files_reanalyzed == 2  # mid + app, not base/loner


def test_new_import_edge_shows_up_despite_warm_cache(tmp_path):
    run(tmp_path, CHAIN)
    edited = dict(CHAIN)
    # loner grows an import of app: app's closure is unchanged, loner's is
    # not — the new edge must surface without a stale verdict anywhere.
    edited["src/pkg/loner.py"] = "import pkg.app\n\nY = 2\n"
    report, _cache = run(tmp_path, edited)
    assert report.all_edges == 3
    assert report.files_reanalyzed == 1


def test_project_scope_rules_are_not_served_stale(tmp_path):
    tree = {
        "src/pkg/api.py": "def helper():\n    return 1\n",
        "src/pkg/app.py": "from pkg.api import helper\n\nV = helper()\n",
    }
    report, _cache = run(tmp_path, tree)
    assert [f for f in report.findings if f.rule == "dead-symbol"] == []
    # Deleting the only reference must flip dead-symbol on a warm cache.
    tree["src/pkg/app.py"] = "V = 1\n"
    report, _cache = run(tmp_path, tree)
    assert len(
        [f for f in report.findings if f.rule == "dead-symbol"]
    ) == 1


def test_deleted_files_are_pruned_from_the_cache(tmp_path):
    run(tmp_path, CHAIN)
    smaller = {k: v for k, v in CHAIN.items() if "loner" not in k}
    run(tmp_path, smaller)
    payload = json.loads((tmp_path / "cache.json").read_text())
    assert "src/pkg/loner.py" not in payload["extractions"]
    assert "src/pkg/loner.py" not in payload["module_findings"]


def test_format_version_mismatch_discards_the_cache(tmp_path):
    run(tmp_path, CHAIN)
    path = tmp_path / "cache.json"
    payload = json.loads(path.read_text())
    payload["extract_version"] = -1
    path.write_text(json.dumps(payload))
    report, _cache = run(tmp_path, CHAIN)
    assert report.files_reanalyzed == len(CHAIN)


def test_corrupt_cache_file_degrades_to_a_cold_run(tmp_path):
    (tmp_path / "cache.json").write_text("{not json")
    report, _cache = run(tmp_path, CHAIN)
    assert report.files_reanalyzed == len(CHAIN)


def test_disabled_persistence_still_analyzes(tmp_path):
    cache = GraphCache(None)
    report = analyze_project(as_files(CHAIN), None, cache)
    cache.save()  # must be a no-op, not an error
    assert report.modules == len(CHAIN)
