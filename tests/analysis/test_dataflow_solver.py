"""The worklist solver and its two classic instances."""

import ast

import pytest

from repro.analysis.dataflow import (
    Analysis,
    build_cfg,
    solve,
    solve_liveness,
    solve_reaching,
)


def cfg_of(source):
    tree = ast.parse(source)
    fn = next(
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(fn)


def reaching_before_return(cfg):
    """Definition lines reaching the return statement, per name."""
    analysis, facts = solve_reaching(cfg)
    for block in cfg.blocks:
        for position, element in enumerate(block.elements):
            if isinstance(element.node, ast.Return):
                fact = analysis.at_element(
                    cfg, facts, analysis, block, position
                )
                out = {}
                for definition in fact:
                    out.setdefault(definition.name, set()).add(definition.line)
                return out
    raise AssertionError("no return statement")


def test_reaching_straight_line_keeps_last_definition():
    cfg = cfg_of("def fn():\n    a = 1\n    a = 2\n    return a\n")
    assert reaching_before_return(cfg)["a"] == {3}


def test_reaching_joins_both_branch_arms():
    cfg = cfg_of(
        "def fn(flag):\n"
        "    if flag:\n"
        "        x = 1\n"
        "    else:\n"
        "        x = 2\n"
        "    return x\n"
    )
    assert reaching_before_return(cfg)["x"] == {3, 5}


def test_reaching_loop_carried_definition_survives_the_back_edge():
    cfg = cfg_of(
        "def fn(n):\n"
        "    total = 0\n"
        "    while n:\n"
        "        total = total + n\n"
        "        n = n - 1\n"
        "    return total\n"
    )
    # Both the init and the loop-body rebinding reach the return.
    assert reaching_before_return(cfg)["total"] == {2, 4}


def test_parameters_reach_as_boundary_definitions():
    cfg = cfg_of("def fn(seed):\n    return seed\n")
    assert 1 in reaching_before_return(cfg)["seed"]


def liveness_at_entry(cfg):
    facts = solve_liveness(cfg)
    # Backward analysis: facts_out of the entry block = live at entry.
    return facts[cfg.entry][1]


def test_liveness_read_before_write_is_live_at_entry():
    cfg = cfg_of("def fn():\n    b = a + 1\n    return b\n")
    live = liveness_at_entry(cfg)
    assert "a" in live
    assert "b" not in live


def test_liveness_dead_store_is_not_live():
    cfg = cfg_of("def fn(a):\n    unused = a\n    return a\n")
    # 'unused' is never read afterwards, so it is live nowhere.
    facts = solve_liveness(cfg)
    assert all("unused" not in entry and "unused" not in exit_
               for exit_, entry in facts.values())


def test_liveness_use_in_loop_condition_stays_live_around_the_loop():
    cfg = cfg_of(
        "def fn(n):\n"
        "    while n > 0:\n"
        "        n = n - 1\n"
        "    return n\n"
    )
    assert "n" in liveness_at_entry(cfg)


class _NonMonotone(Analysis):
    """Oscillates forever; the solver must abort, not hang."""

    direction = "forward"

    def bottom(self, cfg):
        return 0

    def join(self, left, right):
        return max(left, right)

    def transfer(self, element, fact):
        return fact + 1  # grows without bound


def test_solver_aborts_on_non_convergence():
    cfg = cfg_of("def fn(n):\n    while n:\n        n = n - 1\n    return n\n")
    with pytest.raises(RuntimeError, match="did not converge"):
        solve(cfg, _NonMonotone())
