"""The perf cost model: loop depth, growth sites, interprocedural depth."""

import ast

from repro.analysis.dataflow.model import ModelIndex
from repro.analysis.dataflow.summaries import SummaryIndex
from repro.analysis.graph import build_project
from repro.analysis.perf import CostModel, intrinsic_depth
from repro.analysis.perf.costmodel import MAX_INTRINSIC_DEPTH
from repro.utils.hashing import stable_hash

REL_PATH = "src/pkg/mod.py"


def file_map(files):
    return {
        rel: (source, stable_hash(source)) for rel, source in files.items()
    }


def function_of(source, qualname="fn"):
    module = ModelIndex(file_map({REL_PATH: source}), ("src",)).model(REL_PATH)
    assert module is not None and not module.parse_error
    return module.functions[qualname]


def cost_of(source, qualname="fn"):
    return CostModel(function_of(source, qualname))


def node_at(cost, line, kind=ast.Call):
    for node in ast.walk(cost.fn.node):
        if isinstance(node, kind) and getattr(node, "lineno", None) == line:
            return node
    raise AssertionError(f"no {kind.__name__} at line {line}")


class TestLoopDepth:
    def test_nesting_depth_counts_natural_loops(self):
        cost = cost_of(
            "def fn(rows):\n"
            "    total = 0\n"
            "    for row in rows:\n"
            "        for cell in row:\n"
            "            total += use(cell)\n"
            "        tally(row)\n"
            "    return total\n"
        )
        assert cost.depth_of(node_at(cost, 2, ast.Assign)) == 0
        assert cost.depth_of(node_at(cost, 5)) == 2
        assert cost.depth_of(node_at(cost, 6)) == 1

    def test_entrance_edge_is_not_a_back_edge(self):
        # The outer back edge creates a path from the inner header back
        # around to its own entrance; only dominance-based back-edge
        # detection keeps the statement *after* the inner loop at the
        # outer depth.
        cost = cost_of(
            "def fn(items):\n"
            "    for item in items:\n"
            "        k = 0\n"
            "        while k < 3:\n"
            "            k += 1\n"
            "        done(item)\n"
            "    return 0\n"
        )
        assert cost.depth_of(node_at(cost, 3, ast.Assign)) == 1
        assert cost.depth_of(node_at(cost, 5, ast.AugAssign)) == 2
        assert cost.depth_of(node_at(cost, 6)) == 1
        assert cost.depth_of(node_at(cost, 7, ast.Return)) == 0

    def test_while_body_is_depth_one(self):
        cost = cost_of(
            "def fn(n):\n"
            "    while n > 0:\n"
            "        n = shrink(n)\n"
            "    return n\n"
        )
        assert cost.depth_of(node_at(cost, 3)) == 1

    def test_for_header_iterable_evaluates_once(self):
        # `expand(row)` runs once per *outer* iteration, not once per
        # inner one — its depth is the header's depth minus one.
        cost = cost_of(
            "def fn(rows):\n"
            "    for row in rows:\n"
            "        for cell in expand(row):\n"
            "            use(cell)\n"
            "    return 0\n"
        )
        assert cost.depth_of(node_at(cost, 3)) == 1
        assert cost.depth_of(node_at(cost, 4)) == 2

    def test_comprehension_adds_one_implicit_loop(self):
        cost = cost_of(
            "def fn(rows):\n"
            "    flat = [use(cell) for row in rows for cell in row]\n"
            "    for row in rows:\n"
            "        pairs = [pair(cell) for cell in row]\n"
            "    return flat\n"
        )
        # Multiple clauses are still one comprehension: the bonus is a
        # flat +1, not one per clause.
        assert cost.depth_of(node_at(cost, 2)) == 1
        assert cost.depth_of(node_at(cost, 4)) == 2


class TestInnermostLoop:
    SOURCE = (
        "def fn(rows):\n"
        "    for row in rows:\n"
        "        for cell in expand(row):\n"
        "            use(cell)\n"
        "    return 0\n"
    )

    def test_body_node_gets_the_inner_loop(self):
        cost = cost_of(self.SOURCE)
        inner = cost.innermost_loop(node_at(cost, 4))
        outer = cost.innermost_loop(node_at(cost, 3))
        assert inner is not None and outer is not None
        # The header's iterable belongs to the *outer* loop, whose
        # natural loop strictly contains the inner one.
        assert inner.blocks < outer.blocks

    def test_top_level_node_has_no_loop(self):
        cost = cost_of(self.SOURCE)
        assert cost.innermost_loop(node_at(cost, 5, ast.Return)) is None


class TestGrowthSites:
    def test_list_and_set_growth_are_distinguished(self):
        cost = cost_of(
            "def fn(items):\n"
            "    out = []\n"
            "    seen = set()\n"
            "    for item in items:\n"
            "        out.append(item)\n"
            "        seen.add(item)\n"
            "    return out\n"
        )
        sites = {site.name: site for site in cost.growth_sites()}
        assert set(sites) == {"out", "seen"}
        assert not sites["out"].keyed
        assert sites["out"].grow_line == 5
        assert sites["seen"].keyed

    def test_growth_outside_any_loop_is_not_a_site(self):
        cost = cost_of(
            "def fn(items):\n"
            "    out = []\n"
            "    out.append(seed())\n"
            "    for item in items:\n"
            "        use(item)\n"
            "    return out\n"
        )
        assert cost.growth_sites() == []


class TestIntrinsicDepth:
    def summaries(self, source):
        files = file_map({REL_PATH: source})
        project = build_project(files, None)
        models = ModelIndex(files, project.source_roots)
        return models.model(REL_PATH), SummaryIndex(project, models)

    def test_call_into_a_looping_callee_compounds_depth(self):
        module, summaries = self.summaries(
            "def helper(items):\n"
            "    for item in items:\n"
            "        use(item)\n"
            "\n"
            "\n"
            "def fn(batches):\n"
            "    for batch in batches:\n"
            "        helper(batch)\n"
        )
        cache = {}
        helper = module.functions["helper"].fq
        fn = module.functions["fn"].fq
        assert intrinsic_depth(helper, summaries, _cache=cache) == 1
        # fn's call site sits at depth 1 and enters helper's depth-1
        # loop: two loop levels deep in total.
        assert intrinsic_depth(fn, summaries, _cache=cache) == 2

    def test_depth_caps_on_deep_call_chains(self):
        # Six nested loop levels through the call chain; the model
        # reports the cap, not the true depth.
        chunks = []
        for index in range(6):
            call = f"f{index + 1}(item)" if index < 5 else "use(item)"
            chunks.append(
                f"def f{index}(items):\n"
                "    for item in items:\n"
                f"        {call}\n"
            )
        module, summaries = self.summaries("\n\n".join(chunks))
        depth = intrinsic_depth(module.functions["f0"].fq, summaries)
        assert depth == MAX_INTRINSIC_DEPTH

    def test_unresolvable_function_is_depth_zero(self):
        _module, summaries = self.summaries("def fn():\n    return 0\n")
        assert intrinsic_depth("no.such.fq", summaries) == 0
