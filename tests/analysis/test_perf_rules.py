"""The perf rule pack: refinements beyond the pos/neg explain examples.

The live positive/negative example pairs are executed by
``test_explain.py``; these tests pin the sharper distinctions each rule
draws — accumulation vs fresh builds, definition-anchored membership,
invariance under loop-local redefinition, cross-depth digest joins.
"""

from repro.analysis.graph import build_project
from repro.analysis.perf import PerfCache, analyze_perf
from repro.utils.hashing import stable_hash

REL_PATH = "src/pkg/mod.py"


def perf_findings(tmp_path, source, rel_path=REL_PATH):
    files = {rel_path: (source, stable_hash(source))}
    project = build_project(files, None)
    cache = PerfCache(tmp_path / "perf-cache.json")
    return analyze_perf(files, project, cache).findings


def fired(tmp_path, source):
    return {f.rule for f in perf_findings(tmp_path, source)}


class TestPythonLoopOverArray:
    def test_elementwise_fill_of_an_array_fires(self, tmp_path):
        findings = perf_findings(
            tmp_path,
            "import numpy as np\n"
            "def fill(n):\n"
            "    out = np.zeros(n)\n"
            "    for i in range(n):\n"
            "        out[i] = i * 2.0\n"
            "    return out\n",
        )
        assert [f.rule for f in findings] == ["python-loop-over-array"]
        assert "fills array 'out'" in findings[0].message
        assert findings[0].line == 4  # reported at the loop statement

    def test_filling_a_plain_dict_is_silent(self, tmp_path):
        assert fired(
            tmp_path,
            "def fill(n):\n"
            "    out = {}\n"
            "    for i in range(n):\n"
            "        out[i] = i * 2.0\n"
            "    return out\n",
        ) == set()


class TestArrayBuildInLoop:
    def test_self_accumulation_fires(self, tmp_path):
        findings = perf_findings(
            tmp_path,
            "import numpy as np\n"
            "def rows(chunks):\n"
            "    out = np.empty((0, 4))\n"
            "    for chunk in chunks:\n"
            "        out = np.concatenate([out, chunk])\n"
            "    return out\n",
        )
        assert [f.rule for f in findings] == ["array-build-in-loop"]
        assert "rebuilds 'out' from itself" in findings[0].message

    def test_fresh_build_per_iteration_is_linear_and_silent(self, tmp_path):
        # The k-fold shape: each iteration concatenates *other* parts
        # into a fresh array — linear in what it builds, not quadratic.
        assert fired(
            tmp_path,
            "import numpy as np\n"
            "def folds(parts, k):\n"
            "    out = []\n"
            "    for i in range(k):\n"
            "        rest = np.concatenate(\n"
            "            [p for j, p in enumerate(parts) if j != i]\n"
            "        )\n"
            "        out.append(rest)\n"
            "    return out\n",
        ) == set()


class TestMemmapMaterialization:
    def test_materializing_inside_a_loop_reports_the_depth(self, tmp_path):
        findings = perf_findings(
            tmp_path,
            "import numpy as np\n"
            "def scan(paths):\n"
            "    total = []\n"
            "    for path in paths:\n"
            "        view = np.memmap(path, dtype='f8', mode='r')\n"
            "        total.append(np.asarray(view))\n"
            "    return total\n",
        )
        rules = {f.rule for f in findings}
        assert "memmap-materialization" in rules
        finding = next(
            f for f in findings if f.rule == "memmap-materialization"
        )
        assert "at loop depth 1" in finding.message

    def test_sliced_copy_stays_out_of_core(self, tmp_path):
        assert fired(
            tmp_path,
            "import numpy as np\n"
            "def head(path):\n"
            "    view = np.memmap(path, dtype='f8', mode='r')\n"
            "    return view[:16].copy()\n",
        ) == set()


class TestQuadraticMembership:
    def test_membership_on_a_never_grown_list_is_silent(self, tmp_path):
        # `banned` is never grown and `out` is never scanned, so neither
        # pairing matches.
        assert fired(
            tmp_path,
            "def keep(items, banned):\n"
            "    out = []\n"
            "    for item in items:\n"
            "        if item in banned:\n"
            "            continue\n"
            "        out.append(item)\n"
            "    return out\n",
        ) == set()

    def test_scanning_the_grown_list_fires_with_the_growth_line(
        self, tmp_path
    ):
        findings = perf_findings(
            tmp_path,
            "def dedup(items):\n"
            "    seen = []\n"
            "    for item in items:\n"
            "        if item in seen:\n"
            "            continue\n"
            "        seen.append(item)\n"
            "    return seen\n",
        )
        assert [f.rule for f in findings] == ["quadratic-membership"]
        assert "grown at line 6" in findings[0].message


class TestHoistablePureCall:
    def test_invariant_keyword_argument_fires(self, tmp_path):
        findings = perf_findings(
            tmp_path,
            "from repro.utils.hashing import stable_hash\n"
            "def tag(records, spec):\n"
            "    out = []\n"
            "    for record in records:\n"
            "        out.append((stable_hash(payload=spec), record))\n"
            "    return out\n",
        )
        assert [f.rule for f in findings] == ["hoistable-pure-call"]

    def test_argument_redefined_in_the_loop_is_not_invariant(self, tmp_path):
        assert fired(
            tmp_path,
            "from repro.utils.hashing import stable_hash\n"
            "def tag(records, spec):\n"
            "    out = []\n"
            "    for record in records:\n"
            "        spec = extend(spec, record)\n"
            "        out.append(stable_hash(spec))\n"
            "    return out\n",
        ) == set()


class TestRepeatedDigest:
    def test_same_payload_at_one_depth_is_silent(self, tmp_path):
        assert fired(
            tmp_path,
            "from repro.utils.hashing import stable_hash\n"
            "def pair(payload):\n"
            "    first = stable_hash(payload)\n"
            "    second = stable_hash(payload)\n"
            "    return first, second\n",
        ) == set()

    def test_digest_through_a_callee_sink_parameter_fires(self, tmp_path):
        # `ident` digests its parameter, so calling it with `payload`
        # inside the loop re-digests what line 4 already hashed.
        findings = perf_findings(
            tmp_path,
            "from repro.utils.hashing import stable_hash\n"
            "\n"
            "def ident(payload):\n"
            "    return stable_hash(payload)\n"
            "\n"
            "def index(blobs, payload):\n"
            "    root = stable_hash(payload)\n"
            "    out = []\n"
            "    for blob in blobs:\n"
            "        out.append((ident(payload), blob, root))\n"
            "    return out\n",
        )
        repeated = [f for f in findings if f.rule == "repeated-digest"]
        assert len(repeated) == 1
        assert "via parameter of" in repeated[0].message
        assert repeated[0].line == 10


def test_pragma_suppresses_a_perf_finding(tmp_path):
    source = (
        "import numpy as np\n"
        "def fill(n):\n"
        "    out = np.zeros(n)\n"
        "    for i in range(n):  # repro: noqa[python-loop-over-array]\n"
        "        out[i] = i * 2.0\n"
        "    return out\n"
    )
    assert fired(tmp_path, source) == set()


def test_findings_are_warnings(tmp_path):
    findings = perf_findings(
        tmp_path,
        "def dedup(items):\n"
        "    seen = []\n"
        "    for item in items:\n"
        "        if item in seen:\n"
        "            continue\n"
        "        seen.append(item)\n"
        "    return seen\n",
    )
    assert findings and all(f.severity == "warning" for f in findings)
