"""The five dataflow rules: positive and negative fixtures per rule.

Each fixture is a tiny in-memory project run through the real engine
(call graph + summaries + CFG solving), so what these tests pin is the
end-to-end behavior of ``repro lint --dataflow``, pragmas included.
"""

from repro.analysis.dataflow import DataflowCache, analyze_dataflow
from repro.analysis.graph import build_project
from repro.utils.hashing import stable_hash


def run_dataflow(tmp_path, files):
    file_map = {
        rel: (source, stable_hash(source)) for rel, source in files.items()
    }
    project = build_project(file_map, None)
    cache = DataflowCache(tmp_path / "df-cache.json")
    return analyze_dataflow(file_map, project, cache)


def by_rule(report, rule):
    return [f for f in report.findings if f.rule == rule]


# -- shared-state-race -------------------------------------------------


def test_pool_task_read_modify_write_on_module_state_races(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/tasks.py": (
            "SEEN = {}\n\n\n"
            "def work(item):\n"
            "    SEEN[item.key] = item\n"
            "    return item\n"
        ),
        "src/pkg/driver.py": (
            "from pkg.tasks import work\n\n\n"
            "def launch(executor, items):\n"
            "    return executor.run_wave(work, items)\n"
        ),
    })
    (finding,) = by_rule(report, "shared-state-race")
    assert finding.path == "src/pkg/driver.py"
    assert finding.line == 5  # the submission site
    assert "SEEN" in finding.message


def test_closure_thread_target_mutating_captured_state_races(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/driver.py": (
            "import threading\n\n\n"
            "def launch(items):\n"
            "    counts = {}\n\n"
            "    def worker(item):\n"
            "        counts[item] = counts.get(item, 0) + 1\n\n"
            "    threads = [\n"
            "        threading.Thread(target=worker, args=(i,))\n"
            "        for i in items\n"
            "    ]\n"
            "    return threads, counts\n"
        ),
    })
    (finding,) = by_rule(report, "shared-state-race")
    assert "counts" in finding.message


def test_injected_race_reproduces_the_real_executor_shape(tmp_path):
    # The exact shape that bit the wave executor: a worker that does a
    # read-modify-write on a module-level cache keyed by digest.
    report = run_dataflow(tmp_path, {
        "src/pkg/cachemod.py": (
            "_CACHE = {}\n\n\n"
            "def remember(digest, record):\n"
            "    if digest not in _CACHE:\n"
            "        _CACHE[digest] = []\n"
            "    _CACHE[digest].append(record)\n"
        ),
        "src/pkg/wave.py": (
            "from pkg.cachemod import remember\n\n\n"
            "def train(spec):\n"
            "    remember(spec.digest, spec)\n"
            "    return spec\n"
        ),
        "src/pkg/run.py": (
            "from pkg.wave import train\n\n\n"
            "def go(pool, specs):\n"
            "    return pool.run_wave(train, specs)\n"
        ),
    })
    (finding,) = by_rule(report, "shared-state-race")
    assert finding.path == "src/pkg/run.py"
    assert "_CACHE" in finding.message
    assert "pkg.cachemod.remember" in finding.message


def test_pure_task_and_read_only_globals_do_not_race(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/tasks.py": (
            "SCALE = 2\n\n\n"
            "def work(item):\n"
            "    return item * SCALE\n"
        ),
        "src/pkg/driver.py": (
            "from pkg.tasks import work\n\n\n"
            "def launch(executor, items):\n"
            "    return executor.run_wave(work, items)\n"
        ),
    })
    assert by_rule(report, "shared-state-race") == []


# -- blocking-call-in-async --------------------------------------------


def test_direct_blocking_call_in_async_def_is_flagged(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/serve.py": (
            "import time\n\n\n"
            "async def handler(request):\n"
            "    time.sleep(1)\n"
            "    return request\n"
        ),
    })
    (finding,) = by_rule(report, "blocking-call-in-async")
    assert finding.line == 5
    assert "time.sleep" in finding.message


def test_blocking_call_behind_sync_helper_is_flagged_with_chain(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/io_helpers.py": (
            "def slurp(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n"
        ),
        "src/pkg/serve.py": (
            "from pkg.io_helpers import slurp\n\n\n"
            "async def handler(path):\n"
            "    return slurp(path)\n"
        ),
    })
    (finding,) = by_rule(report, "blocking-call-in-async")
    assert finding.path == "src/pkg/serve.py"
    assert "pkg.io_helpers.slurp" in finding.message
    assert "open" in finding.message


def test_executor_hop_is_not_a_blocking_call(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/serve.py": (
            "import asyncio\n"
            "import time\n\n\n"
            "def measure():\n"
            "    time.sleep(1)\n"
            "    return 1\n\n\n"
            "async def handler(request):\n"
            "    return await asyncio.to_thread(measure)\n"
        ),
    })
    assert by_rule(report, "blocking-call-in-async") == []


def test_await_on_async_callee_is_not_blocking(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/serve.py": (
            "async def fetch(url):\n"
            "    return url\n\n\n"
            "async def handler(url):\n"
            "    return await fetch(url)\n"
        ),
    })
    assert by_rule(report, "blocking-call-in-async") == []


# -- memmap-escape -----------------------------------------------------


def test_memmap_view_returned_past_with_close_is_flagged(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/store.py": (
            "from repro.utils.serialization import open_arrays_memmap\n\n\n"
            "def peek(path, name):\n"
            "    views = open_arrays_memmap(path)\n"
            "    with open(path + '.lock') as lock:\n"
            "        pass\n"
            "    return views[name]\n"
        ),
    })
    # A plain (unscoped) view returned is the caller's business; the
    # *scoped* repro is below.  This shape must stay silent.
    assert by_rule(report, "memmap-escape") == []


def test_scoped_memmap_view_escaping_its_with_block_is_flagged(tmp_path):
    # The real bug shape: load_lake(materialize=False) views handed out
    # of the with-block that owns the backing file.
    report = run_dataflow(tmp_path, {
        "src/pkg/store.py": (
            "from repro.lake.persist import load_lake\n\n\n"
            "def grab(path, name):\n"
            "    with load_lake(path, materialize=False) as lake:\n"
            "        view = lake.weights[name]\n"
            "    return view\n"
        ),
    })
    (finding,) = by_rule(report, "memmap-escape")
    assert finding.path == "src/pkg/store.py"
    assert "view" in finding.message


def test_scoped_view_stored_on_self_is_flagged(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/store.py": (
            "from repro.utils.serialization import open_arrays_memmap\n\n\n"
            "class Holder:\n"
            "    def load(self, path):\n"
            "        with open_arrays_memmap(path) as views:\n"
            "            self.views = views\n"
        ),
    })
    (finding,) = by_rule(report, "memmap-escape")
    assert "self" in finding.message or "attribute" in finding.message


def test_memmap_view_captured_by_pool_task_is_flagged(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/store.py": (
            "from repro.utils.serialization import open_arrays_memmap\n\n\n"
            "def fan_out(pool, path, names):\n"
            "    views = open_arrays_memmap(path)\n\n"
            "    def task(name):\n"
            "        return views[name].sum()\n\n"
            "    return pool.run_wave(task, names)\n"
        ),
    })
    (finding,) = by_rule(report, "memmap-escape")
    assert "views" in finding.message


def test_materialized_copy_may_leave_the_scope(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/store.py": (
            "from repro.lake.persist import load_lake\n\n\n"
            "def grab(path, name):\n"
            "    with load_lake(path, materialize=False) as lake:\n"
            "        data = lake.weights[name].copy()\n"
            "    return data\n"
        ),
    })
    assert by_rule(report, "memmap-escape") == []


# -- impure-digest-flow ------------------------------------------------


def test_clock_value_flowing_into_digest_is_flagged_with_chain(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/ids.py": (
            "import time\n"
            "from repro.utils.hashing import stable_hash\n\n\n"
            "def make_id(payload):\n"
            "    stamp = time.time()\n"
            "    meta = {'at': stamp, 'payload': payload}\n"
            "    return stable_hash(meta)\n"
        ),
    })
    (finding,) = by_rule(report, "impure-digest-flow")
    assert finding.line == 8  # anchored at the sink, not the source
    assert "time.time" in finding.message
    assert "'stamp'" in finding.message  # the def-use chain is spelled out
    assert "'meta'" in finding.message


def test_impure_helper_two_hops_from_digest_is_flagged(tmp_path):
    # Ported from the retired heuristic impure-digest-path rule: the
    # taint engine must see through two call hops via summaries.
    report = run_dataflow(tmp_path, {
        "src/pkg/clock.py": (
            "import time\n\n\n"
            "def jitter():\n    return time.time()\n"
        ),
        "src/pkg/mid.py": (
            "from pkg.clock import jitter\n\n\n"
            "def salt():\n    return jitter()\n"
        ),
        "src/pkg/ids.py": (
            "from pkg.mid import salt\n"
            "from repro.utils.hashing import stable_hash\n\n\n"
            "def compute_digest(payload):\n"
            "    return stable_hash((payload, salt()))\n"
        ),
    })
    (finding,) = by_rule(report, "impure-digest-flow")
    assert finding.path == "src/pkg/ids.py"
    assert "time.time" in finding.message


def test_env_read_reaching_hashlib_update_is_flagged(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/ids.py": (
            "import hashlib\n"
            "import os\n\n\n"
            "def host_key():\n"
            "    digest = hashlib.sha256()\n"
            "    digest.update(os.environ['HOST'].encode())\n"
            "    return digest.hexdigest()\n"
        ),
    })
    (finding,) = by_rule(report, "impure-digest-flow")
    assert "os.environ" in finding.message


def test_seeded_rng_and_pure_values_stay_clean(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/ids.py": (
            "import numpy as np\n"
            "from repro.utils.hashing import stable_hash\n\n\n"
            "def make_id(payload, seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    noise = rng.normal()\n"
            "    return stable_hash({'payload': payload}), noise\n"
        ),
    })
    assert by_rule(report, "impure-digest-flow") == []


def test_timing_that_never_reaches_a_digest_is_clean(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/bench.py": (
            "import time\n"
            "from repro.utils.hashing import stable_hash\n\n\n"
            "def run(payload):\n"
            "    start = time.perf_counter()\n"
            "    digest = stable_hash(payload)\n"
            "    return digest, time.perf_counter() - start\n"
        ),
    })
    assert by_rule(report, "impure-digest-flow") == []


# -- resource-leak -----------------------------------------------------


def test_handle_not_closed_on_early_return_path_is_flagged(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/reader.py": (
            "import json\n\n\n"
            "def load(path, strict):\n"
            "    handle = open(path)\n"
            "    if strict:\n"
            "        return json.load(handle)\n"
            "    data = json.load(handle)\n"
            "    handle.close()\n"
            "    return data\n"
        ),
    })
    (finding,) = by_rule(report, "resource-leak")
    assert finding.line == 5  # anchored at the acquisition
    assert "'handle'" in finding.message


def test_with_statement_closes_on_every_path(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/reader.py": (
            "import json\n\n\n"
            "def load(path, strict):\n"
            "    with open(path) as handle:\n"
            "        if strict:\n"
            "            return json.load(handle)\n"
            "        return json.load(handle)\n"
        ),
    })
    assert by_rule(report, "resource-leak") == []


def test_close_on_all_paths_is_clean(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/reader.py": (
            "def head(path, n):\n"
            "    handle = open(path)\n"
            "    data = handle.read(n)\n"
            "    handle.close()\n"
            "    return data\n"
        ),
    })
    assert by_rule(report, "resource-leak") == []


def test_returned_handle_transfers_ownership(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/reader.py": (
            "def acquire(path):\n"
            "    handle = open(path)\n"
            "    return handle\n"
        ),
    })
    assert by_rule(report, "resource-leak") == []


def test_exit_stack_registration_counts_as_release(tmp_path):
    report = run_dataflow(tmp_path, {
        "src/pkg/reader.py": (
            "def attach(stack, path):\n"
            "    handle = open(path)\n"
            "    stack.enter_context(handle)\n"
            "    return handle.name\n"
        ),
    })
    assert by_rule(report, "resource-leak") == []


# -- pragmas anchored at the sink --------------------------------------


def test_noqa_on_the_sink_line_suppresses_taint_finding(tmp_path):
    # Multi-line sink statement: the finding anchors at the statement's
    # first line, so that is where the pragma belongs.
    report = run_dataflow(tmp_path, {
        "src/pkg/ids.py": (
            "import time\n"
            "from repro.utils.hashing import stable_hash\n\n\n"
            "def make_id(payload):\n"
            "    stamp = time.time()\n"
            "    return stable_hash(  # repro: noqa[impure-digest-flow]\n"
            "        {'at': stamp, 'payload': payload}\n"
            "    )\n"
        ),
    })
    assert by_rule(report, "impure-digest-flow") == []


def test_noqa_on_the_closing_paren_line_does_not_suppress(tmp_path):
    # Pragmas are per-physical-line; the last line of a multi-line
    # statement is not where the finding anchors.
    report = run_dataflow(tmp_path, {
        "src/pkg/ids.py": (
            "import time\n"
            "from repro.utils.hashing import stable_hash\n\n\n"
            "def make_id(payload):\n"
            "    stamp = time.time()\n"
            "    return stable_hash(\n"
            "        {'at': stamp, 'payload': payload}\n"
            "    )  # repro: noqa[impure-digest-flow]\n"
        ),
    })
    assert len(by_rule(report, "impure-digest-flow")) == 1


def test_noqa_on_the_source_line_does_not_suppress(tmp_path):
    # The finding anchors at the sink; a pragma on the source line is a
    # stale comment, not a suppression.
    report = run_dataflow(tmp_path, {
        "src/pkg/ids.py": (
            "import time\n"
            "from repro.utils.hashing import stable_hash\n\n\n"
            "def make_id(payload):\n"
            "    stamp = time.time()  # repro: noqa[impure-digest-flow]\n"
            "    return stable_hash({'at': stamp, 'payload': payload})\n"
        ),
    })
    assert len(by_rule(report, "impure-digest-flow")) == 1


def test_decorated_async_function_is_analyzed_and_pragma_works(tmp_path):
    # Decorators neither hide the function from the dataflow pass nor
    # move where findings anchor: the noqa still goes on the call line.
    plain = (
        "import functools\n"
        "import time\n\n\n"
        "@functools.wraps(print)\n"
        "async def poll():\n"
        "    time.sleep(1){pragma}\n"
    )
    flagged = run_dataflow(tmp_path, {
        "src/pkg/poll.py": plain.format(pragma=""),
    })
    assert len(by_rule(flagged, "blocking-call-in-async")) == 1
    silenced = run_dataflow(tmp_path, {
        "src/pkg/poll.py": plain.format(
            pragma="  # repro: noqa[blocking-call-in-async]"
        ),
    })
    assert by_rule(silenced, "blocking-call-in-async") == []
