"""CFG construction: shapes, edges, and renderers."""

import ast

from repro.analysis.dataflow import build_cfg, render_cfg_dot, render_cfg_text


def cfg_of(source, name="fn"):
    tree = ast.parse(source)
    fn = next(
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(fn, name)


def reachable(cfg, start=None):
    seen = set()
    stack = [cfg.entry if start is None else start]
    while stack:
        index = stack.pop()
        if index in seen:
            continue
        seen.add(index)
        stack.extend(cfg.blocks[index].succs)
    return seen


def lines_in(cfg, index):
    return [element.lineno for element in cfg.blocks[index].elements]


def test_straight_line_is_entry_body_exit():
    cfg = cfg_of("def fn():\n    a = 1\n    b = a\n    return b\n")
    assert cfg.exit in reachable(cfg)
    body = [b for b in cfg.blocks if b.elements]
    assert len(body) == 1
    assert [e.lineno for e in body[0].elements] == [2, 3, 4]


def test_if_else_forks_and_joins():
    cfg = cfg_of(
        "def fn(flag):\n"
        "    if flag:\n"
        "        x = 1\n"
        "    else:\n"
        "        x = 2\n"
        "    return x\n"
    )
    # The test element must sit in a block with two successors.
    fork = next(
        block for block in cfg.blocks
        if any(e.kind == "test" for e in block.elements)
    )
    assert len(fork.succs) == 2
    # Both arms must reach the block holding the return.
    ret = next(b for b in cfg.blocks if 6 in lines_in(cfg, b.index))
    for arm in fork.succs:
        assert ret.index in reachable(cfg, arm)


def test_while_loop_has_back_edge():
    cfg = cfg_of(
        "def fn(n):\n"
        "    while n > 0:\n"
        "        n -= 1\n"
        "    return n\n"
    )
    header = next(
        block for block in cfg.blocks
        if any(e.kind == "test" for e in block.elements)
    )
    body = next(b for b in cfg.blocks if 3 in lines_in(cfg, b.index))
    assert header.index in reachable(cfg, body.index)  # back edge


def test_break_exits_the_loop_and_continue_reenters_it():
    cfg = cfg_of(
        "def fn(items):\n"
        "    for item in items:\n"
        "        if item < 0:\n"
        "            break\n"
        "        if item == 0:\n"
        "            continue\n"
        "        use(item)\n"
        "    return 1\n"
    )
    brk = next(b for b in cfg.blocks if 4 in lines_in(cfg, b.index))
    cont = next(b for b in cfg.blocks if 6 in lines_in(cfg, b.index))
    after = next(b for b in cfg.blocks if 8 in lines_in(cfg, b.index))
    header = next(
        b for b in cfg.blocks
        if any(e.kind == "for" for e in b.elements)
    )
    assert after.index in reachable(cfg, brk.index)
    assert header.index in reachable(cfg, cont.index)
    # break must NOT flow back through the loop header first.
    assert header.index not in {s for s in brk.succs}


def test_except_and_finally_are_reachable_from_the_body():
    cfg = cfg_of(
        "def fn(path):\n"
        "    try:\n"
        "        data = read(path)\n"
        "    except OSError:\n"
        "        data = None\n"
        "    finally:\n"
        "        log()\n"
        "    return data\n"
    )
    body = next(b for b in cfg.blocks if 3 in lines_in(cfg, b.index))
    handler = next(b for b in cfg.blocks if 5 in lines_in(cfg, b.index))
    fin = next(b for b in cfg.blocks if 7 in lines_in(cfg, b.index))
    assert handler.index in reachable(cfg, body.index)
    assert fin.index in reachable(cfg, body.index)
    assert fin.index in reachable(cfg, handler.index)


def test_return_routes_through_enclosing_finally():
    cfg = cfg_of(
        "def fn():\n"
        "    try:\n"
        "        return 1\n"
        "    finally:\n"
        "        cleanup()\n"
    )
    ret = next(b for b in cfg.blocks if 3 in lines_in(cfg, b.index))
    fin = next(b for b in cfg.blocks if 5 in lines_in(cfg, b.index))
    assert fin.index in reachable(cfg, ret.index)
    assert cfg.exit in reachable(cfg, fin.index)


def test_with_header_element_carries_the_context():
    cfg = cfg_of(
        "def fn(path):\n"
        "    with open(path) as handle:\n"
        "        data = handle.read()\n"
        "    return data\n"
    )
    headers = [
        e for _b, _p, e in cfg.elements() if e.kind == "with"
    ]
    assert len(headers) == 1
    assert headers[0].lineno == 2


def test_comprehension_statement_gets_a_self_edge():
    cfg = cfg_of(
        "def fn(items):\n"
        "    out = [x * 2 for x in items]\n"
        "    return out\n"
    )
    comp = next(b for b in cfg.blocks if 2 in lines_in(cfg, b.index))
    assert comp.index in comp.succs


def test_match_forks_per_case():
    cfg = cfg_of(
        "def fn(cmd):\n"
        "    match cmd:\n"
        "        case 'a':\n"
        "            out = 1\n"
        "        case _:\n"
        "            out = 2\n"
        "    return out\n"
    )
    cases = [e for _b, _p, e in cfg.elements() if e.kind == "match"]
    assert len(cases) == 2
    ret = next(b for b in cfg.blocks if 7 in lines_in(cfg, b.index))
    assert ret.index in reachable(cfg)


def test_while_else_runs_on_normal_exit_and_break_skips_it():
    cfg = cfg_of(
        "def fn(items):\n"
        "    while items:\n"
        "        item = items.pop()\n"
        "        if item < 0:\n"
        "            break\n"
        "    else:\n"
        "        celebrate()\n"
        "    return item\n"
    )
    header = next(
        b for b in cfg.blocks
        if any(e.kind == "test" for e in b.elements)
    )
    orelse = next(b for b in cfg.blocks if 7 in lines_in(cfg, b.index))
    brk = next(b for b in cfg.blocks if 5 in lines_in(cfg, b.index))
    ret = next(b for b in cfg.blocks if 8 in lines_in(cfg, b.index))
    # Normal termination flows through the else clause...
    assert orelse.index in reachable(cfg, header.index)
    assert ret.index in reachable(cfg, orelse.index)
    # ...while break jumps straight past it.
    assert orelse.index not in brk.succs
    assert ret.index in reachable(cfg, brk.index)
    # The loop body still closes the back edge to the header.
    body = next(b for b in cfg.blocks if 3 in lines_in(cfg, b.index))
    assert header.index in reachable(cfg, body.index)


def test_nested_comprehension_is_one_statement_with_a_self_edge():
    cfg = cfg_of(
        "def fn(rows):\n"
        "    out = [[y * 2 for y in row] for row in rows]\n"
        "    return out\n"
    )
    comp = next(b for b in cfg.blocks if 2 in lines_in(cfg, b.index))
    # The inner comprehension has its own scope but no blocks of its
    # own: the statement stays one element with one looping self edge.
    assert comp.index in comp.succs
    assert len([e for e in comp.elements if e.lineno == 2]) == 1
    assert cfg.exit in reachable(cfg)


def test_lambda_in_a_loop_header_adds_no_blocks():
    cfg = cfg_of(
        "def fn(items):\n"
        "    for key in sorted(items, key=lambda p: p[0]):\n"
        "        use(key)\n"
        "    return 0\n"
    )
    headers = [e for _b, _p, e in cfg.elements() if e.kind == "for"]
    assert len(headers) == 1
    # The lambda body is a nested scope, not control flow of fn: every
    # element still maps to a line of fn and the loop shape is intact.
    body = next(b for b in cfg.blocks if 3 in lines_in(cfg, b.index))
    header = next(
        b for b in cfg.blocks
        if any(e.kind == "for" for e in b.elements)
    )
    assert header.index in reachable(cfg, body.index)
    assert cfg.exit in reachable(cfg)


def test_renderers_name_the_function():
    cfg = cfg_of("def fn(a):\n    if a:\n        a = 0\n    return a\n")
    text = render_cfg_text(cfg)
    dot = render_cfg_dot(cfg)
    assert text.startswith("cfg fn (")
    assert "digraph cfg" in dot
    assert "fn" in dot
    assert "->" in dot
