"""``repro lint --explain``: every rule documented with live examples.

The per-file and dataflow examples are *executed* through the real
analyzers — the positive one must fire its rule and the negative one
must stay silent — so the documentation shown by ``--explain`` cannot
drift from the behavior it describes.
"""

import pytest

from repro.analysis.core import all_rules
from repro.analysis.dataflow import DataflowCache, all_dataflow_rules, analyze_dataflow
from repro.analysis.explain import (
    explain_index,
    explain_rule,
    explainable_rules,
    rule_record,
)
from repro.analysis.graph import build_project
from repro.analysis.graph.rules import all_graph_rules
from repro.analysis.perf import PerfCache, all_perf_rules, analyze_perf
from repro.analysis.runner import lint_source
from repro.utils.hashing import stable_hash

#: A rel_path each per-file rule's ``applies_to`` accepts.  Library
#: rules run under src/repro/lake, benchmark rules under benchmarks/.
_EXAMPLE_PATHS = {
    "bench-result-schema": "benchmarks/bench_example.py",
    "raw-artifact-write": "src/repro/lake/example.py",
    "whole-file-read": "src/repro/lake/example.py",
}
_DEFAULT_PATH = "src/repro/lake/example.py"


def test_every_rule_is_explainable():
    names = explainable_rules()
    assert "syntax-error" in names
    for rule in all_rules():
        assert rule.name in names
    for rule in all_graph_rules():
        assert rule.name in names
    for rule in all_dataflow_rules():
        assert rule.name in names
    for rule in all_perf_rules():
        assert rule.name in names
    assert len(names) >= 15


def test_unknown_rule_returns_none():
    assert explain_rule("no-such-rule") is None
    assert rule_record("no-such-rule") is None


def test_rendered_explanation_has_description_and_examples():
    for name in explainable_rules():
        rendered = explain_rule(name)
        assert rendered is not None
        assert rendered.startswith(name)
        assert f"noqa[{name}]" in rendered
        record = rule_record(name)
        if record["example_positive"]:
            assert "Flags:" in rendered
        if record["example_negative"]:
            assert "Passes:" in rendered


@pytest.mark.parametrize(
    "rule", all_rules(), ids=lambda rule: rule.name
)
def test_per_file_rule_examples_are_live(rule):
    assert rule.example_positive, f"{rule.name} has no positive example"
    assert rule.example_negative, f"{rule.name} has no negative example"
    rel_path = _EXAMPLE_PATHS.get(rule.name, _DEFAULT_PATH)
    fired = {f.rule for f in lint_source(rule.example_positive, rel_path)}
    assert rule.name in fired, (
        f"positive example of {rule.name} does not fire it (got {fired})"
    )
    silent = {f.rule for f in lint_source(rule.example_negative, rel_path)}
    assert rule.name not in silent, (
        f"negative example of {rule.name} still fires it"
    )


def _run_dataflow_example(tmp_path, source):
    files = {"src/pkg/example.py": (source, stable_hash(source))}
    project = build_project(files, None)
    cache = DataflowCache(tmp_path / "df-cache.json")
    return {
        f.rule
        for f in analyze_dataflow(files, project, cache).findings
    }


@pytest.mark.parametrize(
    "rule", all_dataflow_rules(), ids=lambda rule: rule.name
)
def test_dataflow_rule_examples_are_live(rule, tmp_path):
    assert rule.example_positive, f"{rule.name} has no positive example"
    assert rule.example_negative, f"{rule.name} has no negative example"
    fired = _run_dataflow_example(tmp_path, rule.example_positive)
    assert rule.name in fired, (
        f"positive example of {rule.name} does not fire it (got {fired})"
    )
    silent = _run_dataflow_example(tmp_path, rule.example_negative)
    assert rule.name not in silent, (
        f"negative example of {rule.name} still fires it"
    )


def _run_perf_example(tmp_path, source):
    files = {"src/pkg/example.py": (source, stable_hash(source))}
    project = build_project(files, None)
    cache = PerfCache(tmp_path / "perf-cache.json")
    return {f.rule for f in analyze_perf(files, project, cache).findings}


@pytest.mark.parametrize(
    "rule", all_perf_rules(), ids=lambda rule: rule.name
)
def test_perf_rule_examples_are_live(rule, tmp_path):
    assert rule.example_positive, f"{rule.name} has no positive example"
    assert rule.example_negative, f"{rule.name} has no negative example"
    fired = _run_perf_example(tmp_path, rule.example_positive)
    assert rule.name in fired, (
        f"positive example of {rule.name} does not fire it (got {fired})"
    )
    silent = _run_perf_example(tmp_path, rule.example_negative)
    assert rule.name not in silent, (
        f"negative example of {rule.name} still fires it"
    )


def test_index_lists_every_rule_grouped_by_pack():
    index = explain_index()
    for pack in ("per-file (ast):", "graph:", "dataflow:", "perf:"):
        assert pack in index
    for name in explainable_rules():
        assert name in index
    assert "repro lint --explain RULE" in index


@pytest.mark.parametrize(
    "rule", all_graph_rules(), ids=lambda rule: rule.name
)
def test_graph_rule_examples_exist(rule):
    # Graph examples span several files (annotated inline), so they are
    # rendered, not executed.
    assert rule.example_positive
    assert rule.example_negative
    rendered = explain_rule(rule.name)
    assert "Flags:" in rendered and "Passes:" in rendered
