"""Cache layer: content-hash keying, fingerprint invalidation, atomicity."""

import json

from repro.analysis import Finding, FindingsCache, rules_fingerprint
from repro.analysis.cache import content_digest


def make_finding(path="src/repro/x.py", rule="no-print"):
    return Finding(path=path, line=3, col=4, rule=rule, message="m")


def test_roundtrip_hit(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = FindingsCache(path, fingerprint="fp")
    digest = content_digest("source")
    cache.put("src/repro/x.py", digest, [make_finding()])
    cache.save()

    fresh = FindingsCache(path, fingerprint="fp")
    assert fresh.get("src/repro/x.py", digest) == [make_finding()]
    assert fresh.hits == 1 and fresh.misses == 0


def test_content_change_misses(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = FindingsCache(path, fingerprint="fp")
    cache.put("src/repro/x.py", content_digest("old"), [make_finding()])
    cache.save()

    fresh = FindingsCache(path, fingerprint="fp")
    assert fresh.get("src/repro/x.py", content_digest("new")) is None
    assert fresh.misses == 1


def test_fingerprint_change_invalidates_whole_cache(tmp_path):
    path = str(tmp_path / "cache.json")
    cache = FindingsCache(path, fingerprint="rules-v1")
    digest = content_digest("source")
    cache.put("src/repro/x.py", digest, [make_finding()])
    cache.save()

    fresh = FindingsCache(path, fingerprint="rules-v2")
    assert fresh.get("src/repro/x.py", digest) is None


def test_corrupt_cache_file_is_ignored(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{not json")
    cache = FindingsCache(str(path), fingerprint="fp")
    assert cache.get("src/repro/x.py", content_digest("s")) is None


def test_pathless_cache_never_persists():
    cache = FindingsCache(None, fingerprint="fp")
    cache.put("src/repro/x.py", content_digest("s"), [])
    cache.save()  # must be a no-op, not an error
    assert cache.get("src/repro/x.py", content_digest("s")) == []


def test_save_is_valid_json_with_fingerprint(tmp_path):
    path = tmp_path / "cache.json"
    cache = FindingsCache(str(path), fingerprint=rules_fingerprint())
    cache.put("a.py", content_digest("s"), [make_finding(path="a.py")])
    cache.save()
    payload = json.loads(path.read_text())
    assert payload["fingerprint"] == rules_fingerprint()
    assert "a.py" in payload["files"]


def test_rules_fingerprint_is_deterministic():
    assert rules_fingerprint() == rules_fingerprint()
