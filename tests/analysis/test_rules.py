"""Per-rule fixtures: one flagged (positive) and one clean (negative)
source per rule, run through the real single-file pipeline."""

import textwrap

import pytest

from repro.analysis import lint_source, rule_names

LIB = "src/repro/lake/example.py"
BENCH = "benchmarks/bench_example.py"
TEST = "tests/lake/test_example.py"


def findings_for(source, rel_path, rule):
    source = textwrap.dedent(source)
    return [f for f in lint_source(source, rel_path) if f.rule == rule]


# Each entry: rule -> (rel_path, positive source, negative source).
CASES = {
    "unseeded-random": (
        LIB,
        """
        import random
        import numpy as np

        JITTER = random.random()
        NOISE = np.random.normal(0.0, 1.0)
        """,
        """
        import random
        import numpy as np

        random.seed(0)
        _RNG = np.random.default_rng(7)

        def draw(rng):
            return rng.normal(0.0, 1.0)
        """,
    ),
    "time-in-digest": (
        LIB,
        """
        import hashlib
        import time

        def weights_digest(blob):
            stamp = time.time()
            return hashlib.sha256(blob + str(stamp).encode()).hexdigest()
        """,
        """
        import hashlib
        import time

        def weights_digest(blob):
            return hashlib.sha256(blob).hexdigest()

        def wall_clock():
            return time.time()
        """,
    ),
    "unordered-digest-iteration": (
        LIB,
        """
        import hashlib
        import json

        def content_digest(items, meta):
            hasher = hashlib.sha256()
            for item in set(items):
                hasher.update(item.encode())
            hasher.update(json.dumps(meta).encode())
            return hasher.hexdigest()
        """,
        """
        import hashlib
        import json

        def content_digest(items, meta):
            hasher = hashlib.sha256()
            for item in sorted(set(items)):
                hasher.update(item.encode())
            hasher.update(json.dumps(meta, sort_keys=True).encode())
            return hasher.hexdigest()
        """,
    ),
    "pool-task": (
        LIB,
        """
        from repro.parallel import WaveExecutor

        def run_all(tasks):
            def train(task):
                return task.fit()
            with WaveExecutor(workers=4) as executor:
                return executor.run_wave(train, tasks)
        """,
        """
        from repro.parallel import WaveExecutor

        def train(task):
            return task.fit()

        def run_all(tasks):
            with WaveExecutor(workers=4) as executor:
                return executor.run_wave(train, tasks)
        """,
    ),
    "no-print": (
        LIB,
        """
        def report(stats):
            print(stats)
        """,
        """
        from repro.obs.logging import get_logger

        _log = get_logger("lake.example")

        def report(stats):
            _log.info("stats.computed", stats=stats)
        """,
    ),
    "obs-logger": (
        LIB,
        """
        import logging

        _log = logging.getLogger("repro.lake.example")
        """,
        """
        from repro.obs.logging import get_logger

        _log = get_logger("lake.example")
        """,
    ),
    "span-context": (
        LIB,
        """
        from repro.obs.tracing import trace

        def search(query):
            span = trace("search.query", q=query)
            span.__enter__()
            return query
        """,
        """
        from repro.obs.tracing import trace

        def search(query):
            with trace("search.query", q=query):
                return query
        """,
    ),
    "bench-result-schema": (
        BENCH,
        """
        import json

        def write_report(report, path):
            with open(path, "w") as handle:
                json.dump(report, handle, indent=2)
        """,
        """
        from repro.obs.timeseries import BenchResult, append_result

        def write_report(results_dir, metrics):
            result = BenchResult(bench="example", mode="full", metrics=metrics)
            return append_result(results_dir, result)
        """,
    ),
    "mutable-default": (
        TEST,
        """
        def collect(item, bucket=[]):
            bucket.append(item)
            return bucket
        """,
        """
        def collect(item, bucket=None):
            if bucket is None:
                bucket = []
            bucket.append(item)
            return bucket
        """,
    ),
    "bare-except": (
        TEST,
        """
        def load(path):
            try:
                return open(path).read()
            except:
                return None
        """,
        """
        def load(path):
            try:
                return open(path).read()
            except OSError:
                return None
        """,
    ),
    "raw-artifact-write": (
        LIB,
        """
        import json
        import numpy as np

        def save_manifest(path, payload):
            with open(path, "w") as handle:
                json.dump(payload, handle)

        def save_blob(path, arrays):
            np.savez(path, **arrays)
        """,
        """
        import json

        from repro.reliability.atomic import atomic_write_json, atomic_write_npz

        def save_manifest(path, payload):
            atomic_write_json(path, payload)

        def save_blob(path, arrays):
            atomic_write_npz(path, arrays)

        def load_manifest(path):
            with open(path) as handle:
                return json.load(handle)
        """,
    ),
    "whole-file-read": (
        LIB,
        """
        import pathlib

        import numpy as np

        def load_blob(path):
            return np.load(path)

        def read_raw(path):
            return pathlib.Path(path).read_bytes()
        """,
        """
        import numpy as np

        from repro.utils.serialization import open_arrays_memmap

        def load_blob(path):
            return open_arrays_memmap(path)

        def load_archive(path):
            return np.load(path, mmap_mode="r")
        """,
    ),
    "swallowed-exception": (
        LIB,
        """
        def load(store, key):
            try:
                return store[key]
            except KeyError:
                pass
            return None
        """,
        """
        from repro.obs.logging import get_logger

        _log = get_logger("lake.example")

        def load(store, key):
            try:
                return store[key]
            except KeyError:
                _log.warning("load.missing", key=key)
            return None
        """,
    ),
}


def test_every_registered_rule_has_a_case():
    assert sorted(CASES) == rule_names()


@pytest.mark.parametrize("rule", sorted(CASES))
def test_positive_fixture_is_flagged(rule):
    rel_path, positive, _negative = CASES[rule]
    found = findings_for(positive, rel_path, rule)
    assert found, f"{rule} missed its positive fixture"
    assert all(f.rule == rule and f.path == rel_path for f in found)
    assert all(f.line >= 1 for f in found)


@pytest.mark.parametrize("rule", sorted(CASES))
def test_negative_fixture_is_clean(rule):
    rel_path, _positive, negative = CASES[rule]
    assert findings_for(negative, rel_path, rule) == [], (
        f"{rule} false-positived on its negative fixture"
    )


# -- scoping -----------------------------------------------------------


def test_no_print_exempts_cli_and_tests():
    source = "print('hello')\n"
    assert lint_source(source, "src/repro/cli.py") == []
    assert lint_source(source, "tests/lake/test_example.py") == []
    assert [f.rule for f in lint_source(source, BENCH)] == ["no-print"]


def test_obs_logger_exempt_inside_obs_package():
    source = "import logging\nlog = logging.getLogger('repro')\n"
    assert findings_for(source, "src/repro/obs/logging.py", "obs-logger") == []
    assert findings_for(source, LIB, "obs-logger")


def test_unseeded_random_allows_calls_inside_functions():
    source = """
    import random

    def sample():
        return random.random()
    """
    assert findings_for(source, LIB, "unseeded-random") == []


def test_pool_task_flags_lambda_and_bound_method():
    source = """
    class Trainer:
        def fit(self, task):
            return task

        def run(self, executor, tasks):
            return executor.run_wave(self.fit, tasks)

    def run_inline(executor, tasks):
        return executor.run_wave(lambda t: t, tasks)
    """
    found = findings_for(source, LIB, "pool-task")
    assert len(found) == 2


def test_pool_task_checks_initializer_keyword():
    source = """
    from repro.parallel import WaveExecutor

    def build(shared):
        return WaveExecutor(workers=2, initializer=lambda: shared)
    """
    assert len(findings_for(source, LIB, "pool-task")) == 1


def test_raw_artifact_write_scoped_to_artifact_layers():
    source = 'with open("x.json", "w") as handle:\n    handle.write("{}")\n'
    assert findings_for(
        source, "src/repro/core/search/engine.py", "raw-artifact-write"
    ) == []
    assert findings_for(
        source, "src/repro/reliability/atomic.py", "raw-artifact-write"
    ) == []
    assert findings_for(source, "src/repro/index/cache.py", "raw-artifact-write")
    assert findings_for(source, "src/repro/lake/persist.py", "raw-artifact-write")


def test_whole_file_read_scoped_and_pragma_suppressible():
    source = "import numpy as np\nblob = np.load('x.npz')\n"
    assert findings_for(
        source, "src/repro/core/search/engine.py", "whole-file-read"
    ) == []
    assert findings_for(source, LIB, "whole-file-read")
    suppressed = (
        "import numpy as np\n"
        "blob = np.load('x.npz')  # repro: noqa[whole-file-read]\n"
    )
    assert findings_for(suppressed, LIB, "whole-file-read") == []


def test_raw_artifact_write_ignores_read_and_dynamic_modes():
    source = """
    def read(path, mode):
        with open(path) as handle:
            first = handle.read()
        with open(path, "rb") as handle:
            second = handle.read()
        with open(path, mode) as handle:
            third = handle.read()
        return first, second, third
    """
    assert findings_for(source, LIB, "raw-artifact-write") == []


def test_syntax_error_becomes_finding():
    findings = lint_source("def broken(:\n", LIB)
    assert [f.rule for f in findings] == ["syntax-error"]
    assert findings[0].severity == "error"
