"""The ``repro lint`` subcommand: exit codes, JSON output, cache flag."""

import json
import textwrap

import pytest

from repro.cli import main


@pytest.fixture()
def tree(tmp_path):
    def build(files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return tmp_path

    return build


CLEAN = "X = 1\n"
PRINTING = "def report(x):\n    print(x)\n"


def test_lint_clean_tree_exits_zero(tree, capsys):
    root = tree({"src/repro/lake/mod.py": CLEAN})
    code = main(["lint", "--root", str(root), "--no-cache", "src"])
    assert code == 0
    assert "0 errors" in capsys.readouterr().out


def test_lint_violation_exits_one(tree, capsys):
    root = tree({"src/repro/lake/mod.py": PRINTING})
    code = main(["lint", "--root", str(root), "--no-cache", "src"])
    assert code == 1
    out = capsys.readouterr().out
    assert "[no-print]" in out
    assert "src/repro/lake/mod.py:2" in out


def test_lint_json_output_parses(tree, capsys):
    root = tree({"src/repro/lake/mod.py": PRINTING})
    code = main(["lint", "--root", str(root), "--no-cache", "--json", "src"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 1
    assert payload["findings"][0]["rule"] == "no-print"


def test_lint_missing_path_is_config_error(tree, capsys):
    root = tree({})
    code = main(["lint", "--root", str(root), "--no-cache", "nope"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_lint_writes_and_reuses_cache(tree, capsys):
    root = tree({"src/repro/lake/mod.py": CLEAN})
    assert main(["lint", "--root", str(root), "src"]) == 0
    assert (root / ".repro-lint-cache.json").exists()
    assert main(["lint", "--root", str(root), "src"]) == 0
    assert "cache 1 hits / 0 misses" in capsys.readouterr().out


def test_lint_strict_fails_on_warning(tree):
    root = tree({
        "src/repro/lake/mod.py": """
        def load(store, key):
            try:
                return store[key]
            except KeyError:
                pass
            return None
        """,
    })
    assert main(["lint", "--root", str(root), "--no-cache", "src"]) == 0
    assert main(
        ["lint", "--root", str(root), "--no-cache", "--strict", "src"]
    ) == 1


def test_lint_on_this_repository_is_clean():
    """Self-hosting gate: the repo's own tree must lint clean in strict mode."""
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))
    assert main([
        "lint", "--root", repo_root, "--strict", "--no-cache",
        "src", "tests", "benchmarks",
    ]) == 0


def test_lint_explain_known_rule(capsys):
    assert main(["lint", "--explain", "resource-leak"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("resource-leak")
    assert "Flags:" in out and "Passes:" in out
    assert "noqa[resource-leak]" in out


def test_lint_explain_unknown_rule_lists_known_ones(capsys):
    assert main(["lint", "--explain", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err
    assert "impure-digest-flow" in err


def test_lint_bare_explain_lists_every_pack(capsys):
    assert main(["lint", "--explain"]) == 0
    out = capsys.readouterr().out
    for pack in ("per-file (ast):", "graph:", "dataflow:", "perf:"):
        assert pack in out
    assert "python-loop-over-array" in out
    assert "resource-leak" in out


#: One perf warning: an elementwise fill of a numpy array.
PERF_SMELL = (
    "import numpy as np\n"
    "def fill(n):\n"
    "    out = np.zeros(n)\n"
    "    for i in range(n):\n"
    "        out[i] = i * 2.0\n"
    "    return out\n"
)


def test_lint_perf_flag_runs_the_perf_pack(tree, capsys):
    root = tree({"src/repro/lake/mod.py": PERF_SMELL})
    assert main([
        "lint", "--root", str(root), "--no-cache", "--perf", "src",
    ]) == 0  # warnings are non-fatal outside --strict
    out = capsys.readouterr().out
    assert "[python-loop-over-array]" in out
    assert "perf:" in out


def test_lint_strict_implies_perf_and_no_perf_disables_it(tree, capsys):
    root = tree({
        "src/repro/lake/mod.py": PERF_SMELL,
        # Reference the function so strict mode's graph pack (dead
        # symbols) stays quiet and the perf warning is the only finding.
        "src/repro/lake/use.py": (
            "from repro.lake.mod import fill\n\nTABLE = fill(4)\n"
        ),
    })
    assert main([
        "lint", "--root", str(root), "--no-cache", "--strict", "src",
    ]) == 1
    assert "[python-loop-over-array]" in capsys.readouterr().out
    assert main([
        "lint", "--root", str(root), "--no-cache", "--strict", "--no-perf",
        "src",
    ]) == 0


class TestBaselineUpdate:
    def test_fresh_findings_become_todo_entries(self, tree, capsys):
        import json as json_mod

        root = tree({"src/repro/lake/mod.py": PERF_SMELL})
        assert main([
            "lint", "--root", str(root), "--no-cache", "--perf",
            "--baseline-update", "src",
        ]) == 0
        ledger = json_mod.loads((root / ".repro-lint.json").read_text())
        entries = ledger["suppressions"]
        assert [e["rule"] for e in entries] == ["python-loop-over-array"]
        assert entries[0]["path"] == "src/repro/lake/mod.py"
        assert entries[0]["reason"].startswith("TODO")
        # The rewritten ledger applies immediately: non-strict passes
        # with the finding suppressed...
        capsys.readouterr()
        assert main([
            "lint", "--root", str(root), "--no-cache", "--perf", "src",
        ]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...but --strict still rejects the unjustified TODO reason.
        assert main([
            "lint", "--root", str(root), "--no-cache", "--strict", "src",
        ]) == 1
        assert "TODO" in capsys.readouterr().out

    def test_stale_entries_are_dropped(self, tree):
        import json as json_mod

        root = tree({"src/repro/lake/mod.py": CLEAN})
        (root / ".repro-lint.json").write_text(json_mod.dumps({
            "version": 1,
            "suppressions": [{
                "rule": "no-print",
                "path": "src/repro/lake/gone.py",
                "reason": "matched a file that no longer exists",
            }],
        }))
        assert main([
            "lint", "--root", str(root), "--no-cache", "--baseline-update",
            "src",
        ]) == 0
        ledger = json_mod.loads((root / ".repro-lint.json").read_text())
        assert ledger["suppressions"] == []

    def test_skipped_phase_entries_survive_the_rewrite(self, tree):
        import json as json_mod

        root = tree({"src/repro/lake/mod.py": CLEAN})
        (root / ".repro-lint.json").write_text(json_mod.dumps({
            "version": 1,
            "suppressions": [{
                "rule": "python-loop-over-array",
                "path": "src/repro/lake/other.py",
                "reason": "perf entry; this run never evaluates the rule",
            }],
        }))
        # Without --perf the perf pack never ran, so its entries never
        # had a chance to match and must not be dropped as stale.
        assert main([
            "lint", "--root", str(root), "--no-cache", "--baseline-update",
            "src",
        ]) == 0
        ledger = json_mod.loads((root / ".repro-lint.json").read_text())
        assert [e["rule"] for e in ledger["suppressions"]] == [
            "python-loop-over-array"
        ]


class TestPerfAuditCli:
    TRACE_SPAN = {
        "name": "lake.mod.fill",
        "span_id": 1,
        "parent_id": None,
        "trace_id": 1,
        "start_unix": 0.0,
        "duration": 0.5,
        "status": "ok",
        "attributes": {},
    }

    def test_static_audit_lists_findings(self, tree, capsys):
        root = tree({"src/repro/lake/mod.py": PERF_SMELL})
        assert main(["perf-audit", "--root", str(root), "src"]) == 0
        out = capsys.readouterr().out
        assert "python-loop-over-array" in out
        assert "no trace loaded" in out

    def test_trace_demotes_cold_findings_in_json(self, tree, capsys):
        root = tree({
            "src/repro/lake/mod.py": PERF_SMELL,
            "src/repro/index/prep.py": PERF_SMELL.replace("fill", "prep"),
        })
        trace = root / "trace.jsonl"
        trace.write_text(json.dumps(self.TRACE_SPAN) + "\n")
        assert main([
            "perf-audit", "--root", str(root), "--trace", str(trace),
            "--json", "src",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traced"] is True
        by_path = {f["path"]: f for f in payload["findings"]}
        # The span names lake.mod.fill: the lake finding is hot, the
        # index one is statically identical but cold — demoted to info.
        assert by_path["src/repro/lake/mod.py"]["hotness_seconds"] > 0
        assert by_path["src/repro/index/prep.py"]["demoted"] is True
        assert by_path["src/repro/index/prep.py"]["severity"] == "info"
