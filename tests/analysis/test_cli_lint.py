"""The ``repro lint`` subcommand: exit codes, JSON output, cache flag."""

import json
import textwrap

import pytest

from repro.cli import main


@pytest.fixture()
def tree(tmp_path):
    def build(files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return tmp_path

    return build


CLEAN = "X = 1\n"
PRINTING = "def report(x):\n    print(x)\n"


def test_lint_clean_tree_exits_zero(tree, capsys):
    root = tree({"src/repro/lake/mod.py": CLEAN})
    code = main(["lint", "--root", str(root), "--no-cache", "src"])
    assert code == 0
    assert "0 errors" in capsys.readouterr().out


def test_lint_violation_exits_one(tree, capsys):
    root = tree({"src/repro/lake/mod.py": PRINTING})
    code = main(["lint", "--root", str(root), "--no-cache", "src"])
    assert code == 1
    out = capsys.readouterr().out
    assert "[no-print]" in out
    assert "src/repro/lake/mod.py:2" in out


def test_lint_json_output_parses(tree, capsys):
    root = tree({"src/repro/lake/mod.py": PRINTING})
    code = main(["lint", "--root", str(root), "--no-cache", "--json", "src"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["errors"] == 1
    assert payload["findings"][0]["rule"] == "no-print"


def test_lint_missing_path_is_config_error(tree, capsys):
    root = tree({})
    code = main(["lint", "--root", str(root), "--no-cache", "nope"])
    assert code == 2
    assert "error" in capsys.readouterr().err


def test_lint_writes_and_reuses_cache(tree, capsys):
    root = tree({"src/repro/lake/mod.py": CLEAN})
    assert main(["lint", "--root", str(root), "src"]) == 0
    assert (root / ".repro-lint-cache.json").exists()
    assert main(["lint", "--root", str(root), "src"]) == 0
    assert "cache 1 hits / 0 misses" in capsys.readouterr().out


def test_lint_strict_fails_on_warning(tree):
    root = tree({
        "src/repro/lake/mod.py": """
        def load(store, key):
            try:
                return store[key]
            except KeyError:
                pass
            return None
        """,
    })
    assert main(["lint", "--root", str(root), "--no-cache", "src"]) == 0
    assert main(
        ["lint", "--root", str(root), "--no-cache", "--strict", "src"]
    ) == 1


def test_lint_on_this_repository_is_clean():
    """Self-hosting gate: the repo's own tree must lint clean in strict mode."""
    import os

    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)
    )))
    assert main([
        "lint", "--root", repo_root, "--strict", "--no-cache",
        "src", "tests", "benchmarks",
    ]) == 0


def test_lint_explain_known_rule(capsys):
    assert main(["lint", "--explain", "resource-leak"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("resource-leak")
    assert "Flags:" in out and "Passes:" in out
    assert "noqa[resource-leak]" in out


def test_lint_explain_unknown_rule_lists_known_ones(capsys):
    assert main(["lint", "--explain", "bogus"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule" in err
    assert "impure-digest-flow" in err
