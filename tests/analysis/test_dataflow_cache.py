"""Incremental dataflow caching: exact reverse-closure invalidation."""

from repro.analysis.dataflow import DataflowCache, analyze_dataflow
from repro.analysis.dataflow import engine as engine_mod
from repro.analysis.graph import build_project
from repro.utils.hashing import stable_hash


BASE = {
    "src/pkg/leaf.py": "def width():\n    return 3\n",
    "src/pkg/mid.py": (
        "from pkg.leaf import width\n\n\n"
        "def padded():\n    return width() + 1\n"
    ),
    "src/pkg/top.py": (
        "from pkg.mid import padded\n\n\n"
        "def total():\n    return padded() * 2\n"
    ),
    "src/pkg/island.py": "def alone():\n    return 0\n",
}


def file_map(files):
    return {
        rel: (source, stable_hash(source)) for rel, source in files.items()
    }


def sweep(tmp_path, files):
    mapped = file_map(files)
    project = build_project(mapped, None)
    cache = DataflowCache(tmp_path / "df-cache.json")
    report = analyze_dataflow(mapped, project, cache)
    cache.save()
    return report


def test_cold_sweep_analyzes_everything(tmp_path):
    report = sweep(tmp_path, BASE)
    assert report.files_reanalyzed == len(BASE)
    assert report.cache_hits == 0


def test_warm_rerun_reanalyzes_nothing(tmp_path):
    sweep(tmp_path, BASE)
    report = sweep(tmp_path, BASE)
    assert report.files_reanalyzed == 0
    assert report.cache_hits == len(BASE)


def test_one_edit_invalidates_exactly_the_reverse_closure(tmp_path):
    sweep(tmp_path, BASE)
    edited = dict(BASE)
    edited["src/pkg/leaf.py"] = "def width():\n    return 4\n"
    report = sweep(tmp_path, edited)
    # leaf itself, mid (imports leaf), top (imports mid) — island is
    # untouched and must come straight from the cache.
    assert report.files_reanalyzed == 3
    assert report.cache_hits == 1


def test_editing_an_island_invalidates_only_itself(tmp_path):
    sweep(tmp_path, BASE)
    edited = dict(BASE)
    edited["src/pkg/island.py"] = "def alone():\n    return 1\n"
    report = sweep(tmp_path, edited)
    assert report.files_reanalyzed == 1
    assert report.cache_hits == len(BASE) - 1


def test_engine_version_bump_invalidates_everything(tmp_path, monkeypatch):
    sweep(tmp_path, BASE)
    monkeypatch.setattr(engine_mod, "ENGINE_VERSION", engine_mod.ENGINE_VERSION + 1)
    report = sweep(tmp_path, BASE)
    assert report.files_reanalyzed == len(BASE)
    assert report.cache_hits == 0


def test_cached_findings_replay_identically(tmp_path):
    files = dict(BASE)
    files["src/pkg/leaky.py"] = (
        "import json\n\n\n"
        "def load(path, strict):\n"
        "    handle = open(path)\n"
        "    if strict:\n"
        "        return json.load(handle)\n"
        "    data = json.load(handle)\n"
        "    handle.close()\n"
        "    return data\n"
    )
    cold = sweep(tmp_path, files)
    warm = sweep(tmp_path, files)
    assert warm.files_reanalyzed == 0
    assert warm.findings == cold.findings
    assert [f.rule for f in cold.findings] == ["resource-leak"]
