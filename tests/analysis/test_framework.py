"""Framework behavior: pragmas, baseline ledger, stable JSON output."""

import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    LintConfig,
    lint_source,
    load_baseline,
    render_json,
    run_lint,
)
from repro.errors import ConfigError

LIB = "src/repro/lake/example.py"

_PRINTING = 'def report(x):\n    print(x)\n'


# -- pragma suppression ------------------------------------------------


def test_named_pragma_suppresses_only_that_rule():
    source = 'def report(x):\n    print(x)  # repro: noqa[no-print]\n'
    assert lint_source(source, LIB) == []


def test_bare_pragma_suppresses_everything_on_the_line():
    source = 'def report(x):\n    print(x)  # repro: noqa\n'
    assert lint_source(source, LIB) == []


def test_pragma_for_other_rule_does_not_suppress():
    source = 'def report(x):\n    print(x)  # repro: noqa[bare-except]\n'
    assert [f.rule for f in lint_source(source, LIB)] == ["no-print"]


def test_pragma_on_other_line_does_not_suppress():
    source = '# repro: noqa[no-print]\ndef report(x):\n    print(x)\n'
    assert [f.rule for f in lint_source(source, LIB)] == ["no-print"]


_TWO_RULES_ONE_LINE = "def g(x, acc=[]): print(x)  # repro: noqa[{spec}]\n"


def test_pragma_accepts_multiple_comma_separated_rules():
    source = _TWO_RULES_ONE_LINE.format(spec="mutable-default,no-print")
    assert lint_source(source, LIB) == []


def test_multi_rule_pragma_tolerates_spaces():
    source = _TWO_RULES_ONE_LINE.format(spec=" mutable-default , no-print ")
    assert lint_source(source, LIB) == []


def test_multi_rule_pragma_suppresses_only_named_rules():
    source = _TWO_RULES_ONE_LINE.format(spec="mutable-default")
    assert [f.rule for f in lint_source(source, LIB)] == ["no-print"]


def test_several_pragmas_on_one_line_union_their_rules():
    source = (
        "def g(x, acc=[]): print(x)"
        "  # repro: noqa[mutable-default]  # repro: noqa[no-print]\n"
    )
    assert lint_source(source, LIB) == []


def test_bare_pragma_wins_over_named_pragmas_on_the_line():
    source = (
        "def g(x, acc=[]): print(x)"
        "  # repro: noqa[mutable-default]  # repro: noqa\n"
    )
    assert lint_source(source, LIB) == []


def test_pragma_on_decorated_function_goes_on_the_def_line():
    # A decorated function's findings anchor at the ``def`` line (the
    # AST lineno skips decorators), so that is where the noqa belongs.
    source = (
        "import functools\n\n\n"
        "@functools.cache\n"
        "def g(acc=[]):  # repro: noqa[mutable-default]\n"
        "    return acc\n"
    )
    assert lint_source(source, LIB) == []


def test_pragma_on_decorator_line_does_not_suppress_the_def():
    source = (
        "import functools\n\n\n"
        "@functools.cache  # repro: noqa[mutable-default]\n"
        "def g(acc=[]):\n"
        "    return acc\n"
    )
    assert [f.rule for f in lint_source(source, LIB)] == ["mutable-default"]


# -- baseline ----------------------------------------------------------


def make_tree(tmp_path, files):
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return tmp_path


def test_baseline_suppresses_matching_rule_and_path(tmp_path):
    root = make_tree(tmp_path, {"src/repro/lake/example.py": _PRINTING})
    (root / ".repro-lint.json").write_text(json.dumps({
        "version": 1,
        "suppressions": [{
            "rule": "no-print",
            "path": "src/repro/lake/*.py",
            "reason": "legacy module, migration tracked elsewhere",
        }],
    }))
    result = run_lint(LintConfig(paths=["src"], root=str(root), use_cache=False))
    assert result.findings == []
    assert [f.rule for f in result.baseline_suppressed] == ["no-print"]
    assert result.unused_baseline == []
    assert result.exit_code(strict=True) == 0


def test_stale_baseline_entry_fails_strict_only(tmp_path):
    root = make_tree(tmp_path, {"src/repro/lake/clean.py": "X = 1\n"})
    (root / ".repro-lint.json").write_text(json.dumps({
        "version": 1,
        "suppressions": [{
            "rule": "no-print",
            "path": "src/repro/lake/clean.py",
            "reason": "was printing once",
        }],
    }))
    result = run_lint(LintConfig(paths=["src"], root=str(root), use_cache=False))
    assert len(result.unused_baseline) == 1
    assert result.exit_code(strict=False) == 0
    assert result.exit_code(strict=True) == 1


def test_entries_for_skipped_phases_are_not_stale(tmp_path):
    # A dataflow-rule entry can only match when the dataflow phase runs;
    # a per-file-only sweep must not report it as stale (else every
    # scoped run would demand ledger churn).
    root = make_tree(tmp_path, {"src/repro/lake/clean.py": "X = 1\n"})
    (root / ".repro-lint.json").write_text(json.dumps({
        "version": 1,
        "suppressions": [{
            "rule": "resource-leak",
            "path": "src/repro/lake/clean.py",
            "reason": "handle outlives the helper by design",
        }],
    }))
    config = LintConfig(paths=["src"], root=str(root), use_cache=False)
    assert not config.dataflow
    result = run_lint(config)
    assert result.unused_baseline == []
    assert result.exit_code(strict=True) == 0
    # With the phase on, the unmatched entry is stale again.
    with_dataflow = run_lint(LintConfig(
        paths=["src"], root=str(root), use_cache=False, dataflow=True,
    ))
    assert [entry.rule for entry in with_dataflow.unused_baseline] == [
        "resource-leak"
    ]
    assert with_dataflow.exit_code(strict=True) == 1


def test_baseline_cannot_suppress_exempt_rule(tmp_path):
    # raw-artifact-write is baseline-exempt: the ledger entry neither
    # hides the finding nor counts as used.
    raw_write = (
        'def save(path, data):\n'
        '    with open(path, "w") as handle:\n'
        '        handle.write(data)\n'
    )
    root = make_tree(tmp_path, {"src/repro/lake/example.py": raw_write})
    (root / ".repro-lint.json").write_text(json.dumps({
        "version": 1,
        "suppressions": [{
            "rule": "raw-artifact-write",
            "path": "src/repro/lake/*.py",
            "reason": "attempting to grandfather a corruption bug",
        }],
    }))
    result = run_lint(LintConfig(paths=["src"], root=str(root), use_cache=False))
    assert [f.rule for f in result.findings] == ["raw-artifact-write"]
    assert result.baseline_suppressed == []
    assert [entry.rule for entry in result.unused_baseline] == [
        "raw-artifact-write"
    ]
    assert result.exit_code(strict=False) == 1


def test_baseline_entry_requires_reason(tmp_path):
    path = tmp_path / ".repro-lint.json"
    path.write_text(json.dumps({
        "version": 1,
        "suppressions": [{"rule": "no-print", "path": "x.py", "reason": " "}],
    }))
    with pytest.raises(ConfigError, match="reason"):
        load_baseline(str(path))


def test_missing_baseline_is_empty():
    assert load_baseline("/nonexistent/.repro-lint.json").entries == []


def test_baseline_entry_matching_is_rule_scoped():
    entry = BaselineEntry(rule="no-print", path="src/repro/*.py", reason="r")
    baseline = Baseline([entry])
    findings = lint_source('def f(x):\n    print(x)\n', "src/repro/mod.py")
    kept, suppressed, unused = baseline.apply(findings)
    assert kept == [] and len(suppressed) == 1 and unused == []


# -- exit codes and JSON stability ------------------------------------


def test_error_finding_fails_even_non_strict(tmp_path):
    root = make_tree(tmp_path, {"src/repro/lake/example.py": _PRINTING})
    result = run_lint(LintConfig(paths=["src"], root=str(root), use_cache=False))
    assert result.exit_code(strict=False) == 1


def test_warning_finding_fails_only_strict(tmp_path):
    source = """
    def load(store, key):
        try:
            return store[key]
        except KeyError:
            pass
        return None
    """
    root = make_tree(tmp_path, {"src/repro/lake/example.py": source})
    result = run_lint(LintConfig(paths=["src"], root=str(root), use_cache=False))
    assert [f.severity for f in result.findings] == ["warning"]
    assert result.exit_code(strict=False) == 0
    assert result.exit_code(strict=True) == 1


def test_json_report_is_stable_across_runs(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/lake/a.py": _PRINTING,
        "src/repro/lake/b.py": 'def g(x, acc=[]):\n    print(x)\n',
    })
    config = LintConfig(paths=["src"], root=str(root), use_cache=False)
    first = render_json(run_lint(config))
    second = render_json(run_lint(config))
    assert first == second
    payload = json.loads(first)
    assert payload["version"] == 1
    assert payload["summary"]["files_scanned"] == 2
    assert payload["summary"]["errors"] == 3
    locations = [
        (f["path"], f["line"], f["col"], f["rule"])
        for f in payload["findings"]
    ]
    assert locations == sorted(locations)


def test_findings_identical_with_and_without_cache(tmp_path):
    root = make_tree(tmp_path, {
        "src/repro/lake/a.py": _PRINTING,
        "src/repro/lake/b.py": "Y = 2\n",
    })
    cached = LintConfig(paths=["src"], root=str(root))
    uncached = LintConfig(paths=["src"], root=str(root), use_cache=False)
    cold = run_lint(cached)
    warm = run_lint(cached)
    plain = run_lint(uncached)
    assert cold.findings == warm.findings == plain.findings
    assert warm.cache_hits == 2
