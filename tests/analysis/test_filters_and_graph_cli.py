"""Rule filters (--select / --ignore), lint --graph, and `repro graph`."""

import json
import textwrap

import pytest

from repro.analysis import LintConfig, run_lint
from repro.cli import main
from repro.errors import ConfigError

ARCH = """
version = 1

[project]
source-roots = ["src"]

[[layers]]
name = "low"
modules = ["repro.low"]

[[layers]]
name = "high"
modules = ["repro.high"]
"""

#: One no-print error (line 2) + one mutable-default error (line 1).
MIXED = "def g(x, acc=[]):\n    print(x)\n    return acc\n"


@pytest.fixture()
def tree(tmp_path):
    def build(files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
        return tmp_path

    return build


# -- --select / --ignore (runner level) --------------------------------


def test_select_keeps_only_named_rules(tree):
    root = tree({"src/repro/lake/mod.py": MIXED})
    result = run_lint(LintConfig(
        paths=["src"], root=str(root), use_cache=False, select=["no-print"],
    ))
    assert [f.rule for f in result.findings] == ["no-print"]


def test_ignore_drops_named_rules(tree):
    root = tree({"src/repro/lake/mod.py": MIXED})
    result = run_lint(LintConfig(
        paths=["src"], root=str(root), use_cache=False, ignore=["no-print"],
    ))
    assert [f.rule for f in result.findings] == ["mutable-default"]


def test_ignore_beats_select(tree):
    root = tree({"src/repro/lake/mod.py": MIXED})
    result = run_lint(LintConfig(
        paths=["src"], root=str(root), use_cache=False,
        select=["no-print"], ignore=["no-print"],
    ))
    assert result.findings == []


def test_unknown_rule_name_is_a_config_error(tree):
    root = tree({"src/repro/lake/mod.py": "X = 1\n"})
    with pytest.raises(ConfigError, match="no-such-rule"):
        run_lint(LintConfig(
            paths=["src"], root=str(root), use_cache=False,
            select=["no-such-rule"],
        ))


def test_select_accepts_graph_rule_names(tree):
    root = tree({
        "src/repro/low.py": "import repro.high\n",
        "src/repro/high.py": "X = 1\n",
        ".repro-arch.toml": ARCH,
    })
    result = run_lint(LintConfig(
        paths=["src"], root=str(root), use_cache=False,
        graph=True, select=["layering-violation"],
    ))
    assert [f.rule for f in result.findings] == ["layering-violation"]


def test_stale_baseline_outside_filter_is_not_reported(tree):
    root = tree({"src/repro/lake/mod.py": MIXED})
    (root / ".repro-lint.json").write_text(json.dumps({
        "version": 1,
        "suppressions": [{
            "rule": "bare-except",
            "path": "src/repro/lake/mod.py",
            "reason": "long gone",
        }],
    }))
    narrowed = run_lint(LintConfig(
        paths=["src"], root=str(root), use_cache=False, select=["no-print"],
    ))
    assert narrowed.unused_baseline == []
    full = run_lint(LintConfig(paths=["src"], root=str(root), use_cache=False))
    assert len(full.unused_baseline) == 1


# -- lint --graph end to end -------------------------------------------


def test_lint_graph_reports_layering_violation(tree, capsys):
    root = tree({
        "src/repro/low.py": "import repro.high\n",
        "src/repro/high.py": "X = 1\n",
        ".repro-arch.toml": ARCH,
    })
    code = main(["lint", "--root", str(root), "--no-cache", "--graph", "src"])
    assert code == 1
    out = capsys.readouterr().out
    assert "[layering-violation]" in out
    assert "graph: 2 modules" in out


def test_strict_implies_graph_and_no_graph_disables_it(tree, capsys):
    root = tree({
        "src/repro/low.py": "import repro.high\n",
        "src/repro/high.py": "X = 1\n",
        ".repro-arch.toml": ARCH,
    })
    assert main(
        ["lint", "--root", str(root), "--no-cache", "--strict", "src"]
    ) == 1
    assert "[layering-violation]" in capsys.readouterr().out
    assert main([
        "lint", "--root", str(root), "--no-cache", "--strict",
        "--no-graph", "src",
    ]) == 0


def test_lint_graph_json_carries_graph_summary(tree, capsys):
    root = tree({"src/repro/mod.py": "X = 1\n"})
    code = main([
        "lint", "--root", str(root), "--no-cache", "--graph", "--json", "src",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["graph"]["modules"] == 1
    assert payload["graph"]["cycles"] == 0
    assert payload["graph"]["fingerprint"]


def test_lint_select_flag_round_trips(tree, capsys):
    root = tree({"src/repro/lake/mod.py": MIXED})
    code = main([
        "lint", "--root", str(root), "--no-cache",
        "--select", "mutable-default", "src",
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "[mutable-default]" in out
    assert "[no-print]" not in out


def test_lint_unknown_select_exits_config_error(tree, capsys):
    root = tree({"src/repro/lake/mod.py": "X = 1\n"})
    code = main([
        "lint", "--root", str(root), "--no-cache", "--select", "bogus", "src",
    ])
    assert code == 2
    assert "unknown rule name" in capsys.readouterr().err


# -- repro graph -------------------------------------------------------


GRAPH_TREE = {
    "src/repro/low.py": "X = 1\n",
    "src/repro/high.py": "import repro.low\n",
    ".repro-arch.toml": ARCH,
}


def test_graph_json_document(tree, capsys):
    root = tree(GRAPH_TREE)
    assert main(["graph", "--root", str(root), "src"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["module_count"] == 2
    assert payload["cycles"] == []
    assert payload["layers"] == [["repro.low"], ["repro.high"]]
    modules = {entry["name"]: entry for entry in payload["modules"]}
    assert modules["repro.high"]["imports"] == ["repro.low"]
    assert modules["repro.low"]["contract_layer"] == "low"


def test_graph_json_closures_flag(tree, capsys):
    root = tree(GRAPH_TREE)
    assert main(["graph", "--root", str(root), "--closures", "src"]) == 0
    payload = json.loads(capsys.readouterr().out)
    modules = {entry["name"]: entry for entry in payload["modules"]}
    assert modules["repro.low"]["reverse_closure"] == [
        "repro.high", "repro.low"
    ]


def test_graph_dot_output(tree, capsys):
    root = tree(GRAPH_TREE)
    assert main(["graph", "--root", str(root), "--dot", "src"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph repro_imports")
    assert '"repro.high" -> "repro.low"' in out
    assert "cluster" in out  # contract layers render as clusters


def test_graph_out_writes_file(tree, tmp_path, capsys):
    root = tree(GRAPH_TREE)
    target = tmp_path / "graph.dot"
    assert main([
        "graph", "--root", str(root), "--dot", "--out", str(target), "src",
    ]) == 0
    assert target.read_text().startswith("digraph repro_imports")
    assert capsys.readouterr().out == ""


# -- lint --dataflow end to end ----------------------------------------


LEAKY = (
    "import json\n\n\n"
    "def load(path, strict):\n"
    "    handle = open(path)\n"
    "    if strict:\n"
    "        return json.load(handle)\n"
    "    data = json.load(handle)\n"
    "    handle.close()\n"
    "    return data\n"
)


def test_lint_dataflow_reports_resource_leak(tree, capsys):
    root = tree({"src/repro/reader.py": LEAKY})
    code = main([
        "lint", "--root", str(root), "--no-cache", "--dataflow", "src",
    ])
    assert code == 1
    out = capsys.readouterr().out
    assert "[resource-leak]" in out
    assert "dataflow: 1 modules" in out


def test_strict_implies_dataflow_and_no_dataflow_disables_it(tree, capsys):
    root = tree({"src/repro/reader.py": LEAKY})
    assert main(
        ["lint", "--root", str(root), "--no-cache", "--strict", "src"]
    ) == 1
    assert "[resource-leak]" in capsys.readouterr().out
    assert main([
        "lint", "--root", str(root), "--no-cache", "--strict",
        "--no-dataflow", "src",
    ]) == 0


def test_lint_dataflow_json_carries_dataflow_summary(tree, capsys):
    root = tree({"src/repro/mod.py": "def f():\n    return 1\n"})
    code = main([
        "lint", "--root", str(root), "--no-cache", "--dataflow", "--json",
        "src",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["dataflow"]["modules"] == 1
    assert payload["dataflow"]["functions"] == 1
    assert payload["dataflow"]["fingerprint"]


def test_lint_dataflow_select_filter_applies(tree, capsys):
    root = tree({"src/repro/reader.py": LEAKY})
    code = main([
        "lint", "--root", str(root), "--no-cache", "--dataflow",
        "--ignore", "resource-leak", "src",
    ])
    assert code == 0


# -- repro graph --cfg -------------------------------------------------


CFG_TREE = {
    "src/repro/calc.py": (
        "def double(n):\n"
        "    if n < 0:\n"
        "        return 0\n"
        "    return n * 2\n"
    ),
}


def test_graph_cfg_text_render(tree, capsys):
    root = tree(CFG_TREE)
    assert main(["graph", "--root", str(root), "--cfg", "double", "src"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("cfg repro.calc.double")
    assert "[entry]" in out and "[exit]" in out


def test_graph_cfg_dot_render(tree, capsys):
    root = tree(CFG_TREE)
    assert main([
        "graph", "--root", str(root), "--cfg", "repro.calc.double",
        "--dot", "src",
    ]) == 0
    out = capsys.readouterr().out
    assert out.startswith("digraph cfg")
    assert "repro.calc.double" in out


def test_graph_cfg_unknown_function_is_an_error(tree, capsys):
    root = tree(CFG_TREE)
    code = main(["graph", "--root", str(root), "--cfg", "nope", "src"])
    assert code == 2
    assert "no function named" in capsys.readouterr().err


def test_graph_cfg_out_writes_file(tree, tmp_path, capsys):
    root = tree(CFG_TREE)
    target = tmp_path / "cfg.dot"
    assert main([
        "graph", "--root", str(root), "--cfg", "double", "--dot",
        "--out", str(target), "src",
    ]) == 0
    assert target.read_text().startswith("digraph cfg")


#: The same qualname in two modules: only path:qualname can pick one.
SHADOWED_TREE = {
    "src/repro/alpha.py": "def clamp(n):\n    return max(n, 0)\n",
    "src/repro/beta.py": (
        "def clamp(n):\n"
        "    if n > 9:\n"
        "        return 9\n"
        "    return n\n"
    ),
}


def test_graph_cfg_path_qualname_pins_the_file(tree, capsys):
    root = tree(SHADOWED_TREE)
    assert main([
        "graph", "--root", str(root),
        "--cfg", "src/repro/beta.py:clamp", "src",
    ]) == 0
    out = capsys.readouterr().out
    # Bare `clamp` would resolve to alpha (first in sorted file order);
    # the path form must land on beta's definition.
    assert out.startswith("cfg repro.beta.clamp")


def test_graph_cfg_path_qualname_wrong_file_is_an_error(tree, capsys):
    root = tree(SHADOWED_TREE)
    code = main([
        "graph", "--root", str(root),
        "--cfg", "src/repro/alpha.py:missing", "src",
    ])
    assert code == 2
    assert "no function named" in capsys.readouterr().err
