"""Import-graph construction: cycles, layers, closures, resolution."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.graph import ImportGraph, extract_facts, module_name_for


def build_graph(files):
    """files: rel_path -> source."""
    facts = {
        rel: extract_facts(rel, source) for rel, source in files.items()
    }
    return ImportGraph(facts)


# -- module naming -----------------------------------------------------


def test_module_name_strips_source_root_and_init():
    assert module_name_for("src/repro/lake/store.py") == "repro.lake.store"
    assert module_name_for("src/repro/lake/__init__.py") == "repro.lake"
    assert module_name_for("tests/analysis/test_x.py") == "tests.analysis.test_x"


# -- cycle edge cases --------------------------------------------------


def test_self_import_is_a_cycle():
    graph = build_graph({"src/pkg/a.py": "import pkg.a\n"})
    assert graph.cycles() == [["pkg.a"]]


def test_two_cycle_detected():
    graph = build_graph({
        "src/pkg/a.py": "import pkg.b\n",
        "src/pkg/b.py": "import pkg.a\n",
    })
    assert graph.cycles() == [["pkg.a", "pkg.b"]]


def test_diamond_is_not_a_cycle():
    graph = build_graph({
        "src/pkg/top.py": "import pkg.left\nimport pkg.right\n",
        "src/pkg/left.py": "import pkg.base\n",
        "src/pkg/right.py": "import pkg.base\n",
        "src/pkg/base.py": "X = 1\n",
    })
    assert graph.cycles() == []
    layers = graph.topological_layers()
    assert layers[0] == ["pkg.base"]
    assert sorted(layers[1]) == ["pkg.left", "pkg.right"]
    assert layers[2] == ["pkg.top"]


def test_three_cycle_shares_one_layer():
    graph = build_graph({
        "src/pkg/a.py": "import pkg.b\n",
        "src/pkg/b.py": "import pkg.c\n",
        "src/pkg/c.py": "import pkg.a\n",
    })
    assert graph.cycles() == [["pkg.a", "pkg.b", "pkg.c"]]
    layers = graph.topological_layers()
    assert layers == [["pkg.a", "pkg.b", "pkg.c"]]


def test_lazy_import_does_not_create_a_cycle():
    """A function-body import is the sanctioned cycle-breaker."""
    graph = build_graph({
        "src/pkg/a.py": "import pkg.b\n",
        "src/pkg/b.py": "def late():\n    import pkg.a\n    return pkg.a\n",
    })
    assert graph.cycles() == []
    # ... but the lazy edge still exists for closures and layering.
    assert "pkg.a" in graph.all_edges["pkg.b"]
    assert "pkg.a" not in graph.edges["pkg.b"]


def test_namespace_package_modules_resolve():
    """Modules under a directory without __init__.py still form edges."""
    graph = build_graph({
        "src/ns/sub/mod.py": "X = 1\n",
        "src/ns/sub/user.py": "import ns.sub.mod\n",
    })
    assert "ns.sub.mod" in graph.edges["ns.sub.user"]
    assert graph.cycles() == []


def test_namespace_package_symbol_import_stays_unresolved():
    """`from ns.sub import name` has no ns.sub module to land on; the
    conservative answer is no edge rather than a guessed one."""
    graph = build_graph({
        "src/ns/sub/mod.py": "X = 1\n",
        "src/ns/sub/user.py": "from ns.sub import thing\n",
    })
    assert graph.edges["ns.sub.user"] == set()


def test_from_import_of_symbol_lands_on_defining_module():
    graph = build_graph({
        "src/pkg/__init__.py": "",
        "src/pkg/mod.py": "def f():\n    return 1\n",
        "src/pkg/user.py": "from pkg.mod import f\n",
        "src/pkg/pkguser.py": "from pkg import mod\n",
    })
    assert graph.edges["pkg.user"] == {"pkg.mod"}
    assert graph.edges["pkg.pkguser"] == {"pkg.mod"}


def test_external_imports_contribute_no_edges():
    graph = build_graph({
        "src/pkg/a.py": "import os\nimport numpy as np\nfrom json import dumps\n",
    })
    assert graph.edges["pkg.a"] == set()


# -- closures ----------------------------------------------------------


def test_forward_and_reverse_closures():
    graph = build_graph({
        "src/pkg/app.py": "import pkg.mid\n",
        "src/pkg/mid.py": "import pkg.base\n",
        "src/pkg/base.py": "X = 1\n",
        "src/pkg/loner.py": "Y = 2\n",
    })
    assert graph.forward_closure("pkg.app") == {
        "pkg.app", "pkg.mid", "pkg.base"
    }
    assert graph.reverse_closure("pkg.base") == {
        "pkg.base", "pkg.mid", "pkg.app"
    }
    assert graph.reverse_closure("pkg.loner") == {"pkg.loner"}


def test_fingerprint_tracks_topology_not_content():
    files = {
        "src/pkg/a.py": "import pkg.b\nX = 1\n",
        "src/pkg/b.py": "Y = 2\n",
    }
    first = build_graph(files).fingerprint()
    files["src/pkg/b.py"] = "Y = 3\n"  # content change, same topology
    assert build_graph(files).fingerprint() == first
    files["src/pkg/b.py"] = "import pkg.a\n"  # new edge
    assert build_graph(files).fingerprint() != first


# -- property: layers are a valid linearization ------------------------


@st.composite
def random_project(draw):
    """A random module set with random (possibly cyclic) imports."""
    count = draw(st.integers(min_value=1, max_value=8))
    names = list(string.ascii_lowercase[:count])
    files = {}
    for position, name in enumerate(names):
        targets = draw(
            st.lists(
                st.sampled_from(names),
                max_size=min(count, 4),
                unique=True,
            )
        )
        body = "".join(
            f"import pkg.{target}\n" for target in targets if target != name
        )
        files[f"src/pkg/{name}.py"] = body or "X = 1\n"
    return files


@settings(max_examples=60, deadline=None)
@given(random_project())
def test_topological_layers_are_a_valid_linearization(files):
    graph = build_graph(files)
    layers = graph.topological_layers()
    # Every module appears exactly once.
    flat = [module for layer in layers for module in layer]
    assert sorted(flat) == sorted(graph.modules)
    depth_of = {
        module: depth
        for depth, layer in enumerate(layers)
        for module in layer
    }
    for importer, targets in graph.edges.items():
        for imported in targets:
            if graph.scc_of(importer) is graph.scc_of(imported):
                # Cycle members share a layer.
                assert depth_of[importer] == depth_of[imported]
            else:
                # Across SCCs an import always points strictly downward.
                assert depth_of[importer] > depth_of[imported]
