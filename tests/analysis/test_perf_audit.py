"""``perf-audit``: the hotness join between findings and trace spans.

A loaded profile splits static findings into hot (ranked by measured
self-time) and cold (demoted to info, never dropped); without one the
audit is a static ranking at full severity.
"""

import json

from repro.analysis.graph import build_project
from repro.analysis.perf import (
    PerfCache,
    analyze_perf,
    audit_findings,
    render_audit_json,
    render_audit_text,
)
from repro.obs.analyze import analyze_trace, load_trace
from repro.utils.hashing import stable_hash

#: Two modules with the same finding shape; the trace only exercises one.
FILES = {
    "src/repro/hotscan.py": (
        "import numpy as np\n"
        "def scan(n):\n"
        "    out = np.zeros(n)\n"
        "    for i in range(n):\n"
        "        out[i] = i * 2.0\n"
        "    return out\n"
    ),
    "src/repro/coldprep.py": (
        "import numpy as np\n"
        "def prep(n):\n"
        "    out = np.zeros(n)\n"
        "    for i in range(n):\n"
        "        out[i] = i * 3.0\n"
        "    return out\n"
    ),
}


def mapped_files():
    return {
        rel: (source, stable_hash(source)) for rel, source in FILES.items()
    }


def findings_of(tmp_path):
    files = mapped_files()
    project = build_project(files, None)
    cache = PerfCache(tmp_path / "perf-cache.json")
    return analyze_perf(files, project, cache).findings


def write_trace(tmp_path, names):
    path = tmp_path / "trace.jsonl"
    with open(path, "w") as handle:
        for index, name in enumerate(names):
            handle.write(json.dumps({
                "name": name,
                "span_id": index,
                "parent_id": None,
                "trace_id": 1,
                "start_unix": float(index),
                "duration": 0.25,
                "status": "ok",
                "attributes": {},
            }) + "\n")
    return str(path)


def test_untraced_audit_keeps_static_severity(tmp_path):
    findings = findings_of(tmp_path)
    assert len(findings) == 2
    report = audit_findings(findings, mapped_files())
    assert not report.traced
    assert report.demoted == 0
    assert all(e.finding.severity == "warning" for e in report.entries)
    assert "no trace loaded" in render_audit_text(report)


def test_traced_audit_ranks_hot_and_demotes_cold(tmp_path):
    findings = findings_of(tmp_path)
    trace_report = analyze_trace(load_trace(
        write_trace(tmp_path, ["repro.hotscan.scan", "repro.hotscan.scan"])
    ))
    report = audit_findings(
        findings, mapped_files(), trace_report=trace_report
    )
    assert report.traced and report.span_count == 2
    hot, cold = report.entries  # hottest first
    assert hot.finding.path == "src/repro/hotscan.py"
    assert hot.hotness > 0
    assert hot.spans == ("repro.hotscan.scan",)
    assert hot.finding.severity == "warning"
    # Statically identical, dynamically cold: demoted, not dropped.
    assert cold.finding.path == "src/repro/coldprep.py"
    assert cold.demoted
    assert cold.finding.severity == "info"
    assert report.demoted == 1
    text = render_audit_text(report)
    assert "1 demoted" in text
    assert "hotness 0" in text


def test_audit_anchors_findings_to_their_function(tmp_path):
    report = audit_findings(findings_of(tmp_path), mapped_files())
    functions = {e.finding.path: e.function for e in report.entries}
    assert functions["src/repro/hotscan.py"].endswith("scan")
    assert functions["src/repro/coldprep.py"].endswith("prep")


def test_audit_json_payload_round_trips(tmp_path):
    findings = findings_of(tmp_path)
    trace_report = analyze_trace(load_trace(
        write_trace(tmp_path, ["repro.hotscan.scan"])
    ))
    payload = render_audit_json(audit_findings(
        findings, mapped_files(), trace_report=trace_report
    ))
    payload = json.loads(json.dumps(payload))  # must be serializable
    assert payload["traced"] is True
    assert payload["demoted"] == 1
    by_path = {f["path"]: f for f in payload["findings"]}
    assert by_path["src/repro/hotscan.py"]["hotness_seconds"] > 0
    assert by_path["src/repro/coldprep.py"]["demoted"] is True


def test_top_limits_the_rendered_entries(tmp_path):
    report = audit_findings(findings_of(tmp_path), mapped_files())
    text = render_audit_text(report, top=1)
    assert "and 1 more" in text
    payload = render_audit_json(report, top=1)
    assert len(payload["findings"]) == 1
