"""Layer-contract parsing and violation semantics (.repro-arch.toml)."""

import pytest

from repro.analysis.graph import LayerContract, load_contract
from repro.errors import ConfigError

CONTRACT = """
version = 1

[project]
source-roots = ["src"]

[[layers]]
name = "base"
modules = ["app.util"]

[[layers]]
name = "mid"
modules = ["app.engine"]

[[layers]]
name = "tool"
modules = ["app.tool"]
may-import = ["base"]

[[layers]]
name = "top"
modules = ["app.main"]

[[forbid]]
from = "app.main"
to = "app.util.secrets"
reason = "entry points read config, never raw secrets"
"""


@pytest.fixture()
def contract(tmp_path):
    path = tmp_path / ".repro-arch.toml"
    path.write_text(CONTRACT, encoding="utf-8")
    loaded = load_contract(path)
    assert loaded is not None
    return loaded


def test_missing_file_returns_none(tmp_path):
    assert load_contract(tmp_path / "nope.toml") is None


def test_bad_version_rejected(tmp_path):
    path = tmp_path / "arch.toml"
    path.write_text("version = 99\n", encoding="utf-8")
    with pytest.raises(ConfigError):
        load_contract(path)


def test_forbid_without_reason_rejected(tmp_path):
    path = tmp_path / "arch.toml"
    path.write_text(
        'version = 1\n[[layers]]\nname = "a"\nmodules = ["x"]\n'
        '[[forbid]]\nfrom = "x"\nto = "y"\n',
        encoding="utf-8",
    )
    with pytest.raises(ConfigError):
        load_contract(path)


def test_layer_of_uses_longest_prefix(contract):
    assert contract.layer_of("app.util").name == "base"
    assert contract.layer_of("app.util.hashing").name == "base"
    assert contract.layer_of("app.engine.search").name == "mid"
    assert contract.layer_of("other.module") is None


def test_downward_and_same_layer_imports_allowed(contract):
    assert contract.violation("app.engine", "app.util") is None
    assert contract.violation("app.main", "app.engine") is None
    assert contract.violation("app.util.a", "app.util.b") is None


def test_upward_import_is_a_violation(contract):
    message = contract.violation("app.util", "app.engine")
    assert message is not None
    assert "base" in message and "mid" in message


def test_may_import_is_an_exhaustive_allow_list(contract):
    # tool may import base (listed) and itself (implicit)...
    assert contract.violation("app.tool", "app.util") is None
    assert contract.violation("app.tool.sub", "app.tool") is None
    # ...but not mid, even though mid sits below tool.
    assert contract.violation("app.tool", "app.engine") is not None


def test_forbid_beats_layer_allowance(contract):
    # main -> util is downward and would normally be fine.
    message = contract.violation("app.main", "app.util.secrets")
    assert message is not None
    assert "never raw secrets" in message


def test_unmatched_modules_are_unconstrained(contract):
    assert contract.violation("tests.test_x", "app.main") is None
    assert contract.violation("app.main", "tests.test_x") is None


def test_digest_is_stable_and_content_sensitive(contract, tmp_path):
    first = contract.digest()
    assert first == contract.digest()
    path = tmp_path / "other.toml"
    path.write_text(
        CONTRACT.replace('"app.engine"', '"app.motor"'), encoding="utf-8"
    )
    other = load_contract(path)
    assert other is not None and other.digest() != first


def test_layer_contract_importable():
    assert LayerContract is not None
