"""The interprocedural graph rules, positive and negative cases."""

from repro.analysis.graph import GraphCache, analyze_project, load_contract
from repro.utils.hashing import stable_hash

LAYERED = """
version = 1

[project]
source-roots = ["src"]

[[layers]]
name = "low"
modules = ["pkg.low"]

[[layers]]
name = "high"
modules = ["pkg.high"]
"""


def run_rules(tmp_path, files, contract_text=None):
    contract = None
    if contract_text is not None:
        arch = tmp_path / "arch.toml"
        arch.write_text(contract_text, encoding="utf-8")
        contract = load_contract(arch)
    cache = GraphCache(tmp_path / "graph-cache.json")
    file_map = {
        rel: (source, stable_hash(source)) for rel, source in files.items()
    }
    return analyze_project(file_map, contract, cache)


def by_rule(report, rule):
    return [f for f in report.findings if f.rule == rule]


# -- import-cycle ------------------------------------------------------


def test_import_cycle_flags_every_member(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/a.py": "import pkg.b\n",
        "src/pkg/b.py": "import pkg.a\n",
    })
    findings = by_rule(report, "import-cycle")
    assert sorted(f.path for f in findings) == [
        "src/pkg/a.py", "src/pkg/b.py"
    ]
    assert "pkg.a -> pkg.b -> pkg.a" in findings[0].message


def test_self_import_message_names_the_module(tmp_path):
    report = run_rules(tmp_path, {"src/pkg/a.py": "import pkg.a\n"})
    (finding,) = by_rule(report, "import-cycle")
    assert "imports itself" in finding.message


def test_lazy_import_breaks_the_cycle(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/a.py": "import pkg.b\n",
        "src/pkg/b.py": "def late():\n    import pkg.a\n    return pkg.a\n",
    })
    assert by_rule(report, "import-cycle") == []


# -- layering-violation ------------------------------------------------


def test_upward_import_violates_contract(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/low.py": "import pkg.high\n",
        "src/pkg/high.py": "X = 1\n",
    }, LAYERED)
    (finding,) = by_rule(report, "layering-violation")
    assert finding.path == "src/pkg/low.py"
    assert "pkg.low imports pkg.high" in finding.message


def test_lazy_upward_import_still_violates_contract(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/low.py": (
            "def late():\n    import pkg.high\n    return pkg.high\n"
        ),
        "src/pkg/high.py": "X = 1\n",
    }, LAYERED)
    assert len(by_rule(report, "layering-violation")) == 1


def test_downward_import_is_clean(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/low.py": "X = 1\n",
        "src/pkg/high.py": "import pkg.low\n",
    }, LAYERED)
    assert by_rule(report, "layering-violation") == []


def test_no_contract_means_no_layering_findings(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/low.py": "import pkg.high\n",
        "src/pkg/high.py": "X = 1\n",
    })
    assert by_rule(report, "layering-violation") == []


def test_pragma_suppresses_graph_finding(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/low.py": (
            "import pkg.high  # repro: noqa[layering-violation]\n"
        ),
        "src/pkg/high.py": "X = 1\n",
    }, LAYERED)
    assert by_rule(report, "layering-violation") == []


# -- pool-task-closure -------------------------------------------------


def test_imported_module_level_lambda_task_is_flagged(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/tasks.py": "work = lambda item: item\n",
        "src/pkg/driver.py": (
            "from pkg.tasks import work\n\n\n"
            "def launch(executor, items):\n"
            "    return executor.run_wave(work, items)\n"
        ),
    })
    (finding,) = by_rule(report, "pool-task-closure")
    assert finding.path == "src/pkg/driver.py"
    assert "lambda" in finding.message


def test_task_transitively_mutating_global_state_is_flagged(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/state.py": (
            "COUNT = 0\n\n\n"
            "def bump():\n    global COUNT\n    COUNT += 1\n"
        ),
        "src/pkg/tasks.py": (
            "from pkg.state import bump\n\n\n"
            "def work(item):\n    bump()\n    return item\n"
        ),
        "src/pkg/driver.py": (
            "from pkg.tasks import work\n\n\n"
            "def launch(executor, items):\n"
            "    return executor.run_wave(work, items)\n"
        ),
    })
    (finding,) = by_rule(report, "pool-task-closure")
    assert "pkg.state.bump" in finding.message
    assert "'global'" in finding.message


def test_initializer_may_install_global_state(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/setup.py": (
            "_CONTEXT = None\n\n\n"
            "def init_context(cfg):\n"
            "    global _CONTEXT\n    _CONTEXT = cfg\n"
        ),
        "src/pkg/driver.py": (
            "from pkg.setup import init_context\n"
            "from repro.parallel import WaveExecutor\n\n\n"
            "def build(cfg):\n"
            "    return WaveExecutor(initializer=init_context)\n"
        ),
    })
    assert by_rule(report, "pool-task-closure") == []


def test_clean_pool_task_is_clean(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/tasks.py": "def work(item):\n    return item * 2\n",
        "src/pkg/driver.py": (
            "from pkg.tasks import work\n\n\n"
            "def launch(executor, items):\n"
            "    return executor.run_wave(work, items)\n"
        ),
    })
    assert by_rule(report, "pool-task-closure") == []


# -- dead-symbol -------------------------------------------------------


def test_unreferenced_public_symbol_is_flagged(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/api.py": (
            "def orphan():\n    return 1\n\n\n"
            "def used():\n    return 2\n"
        ),
        "src/pkg/app.py": "from pkg.api import used\n\nVALUE = used()\n",
    })
    (finding,) = by_rule(report, "dead-symbol")
    assert "'orphan'" in finding.message


def test_own_all_does_not_keep_a_symbol_alive(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/api.py": (
            '__all__ = ["orphan"]\n\n\n'
            "def orphan():\n    return 1\n"
        ),
    })
    assert len(by_rule(report, "dead-symbol")) == 1


def test_reexport_from_another_module_keeps_symbol_alive(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/api.py": "def helper():\n    return 1\n",
        "src/pkg/__init__.py": '__all__ = ["helper"]\n',
    })
    assert by_rule(report, "dead-symbol") == []


def test_decorated_private_and_test_symbols_are_exempt(tmp_path):
    report = run_rules(tmp_path, {
        "src/pkg/api.py": (
            "from pkg.reg import register\n\n\n"
            "@register\n"
            "def hooked():\n    return 1\n\n\n"
            "def _internal():\n    return 2\n\n\n"
            "def main():\n    return 3\n"
        ),
        "src/pkg/reg.py": "def register(fn):\n    return fn\n",
        "tests/test_pkg.py": "def test_nothing():\n    assert True\n",
    })
    assert by_rule(report, "dead-symbol") == []
