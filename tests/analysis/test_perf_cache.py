"""Incremental perf caching: exact reverse-closure invalidation.

Mirrors the dataflow cache contract — the perf pack keys its own file
on the same dependency digest plus the perf rule fingerprint and engine
version, so the two packs invalidate independently.
"""

from repro.analysis.perf import PerfCache, analyze_perf
from repro.analysis.perf import engine as engine_mod
from repro.analysis.perf import rules as rules_mod
from repro.analysis.graph import build_project
from repro.utils.hashing import stable_hash


BASE = {
    "src/pkg/leaf.py": "def width():\n    return 3\n",
    "src/pkg/mid.py": (
        "from pkg.leaf import width\n\n\n"
        "def padded():\n    return width() + 1\n"
    ),
    "src/pkg/top.py": (
        "from pkg.mid import padded\n\n\n"
        "def total():\n    return padded() * 2\n"
    ),
    "src/pkg/island.py": "def alone():\n    return 0\n",
}


def file_map(files):
    return {
        rel: (source, stable_hash(source)) for rel, source in files.items()
    }


def sweep(tmp_path, files):
    mapped = file_map(files)
    project = build_project(mapped, None)
    cache = PerfCache(tmp_path / "perf-cache.json")
    report = analyze_perf(mapped, project, cache)
    cache.save()
    return report


def test_cold_sweep_analyzes_everything(tmp_path):
    report = sweep(tmp_path, BASE)
    assert report.files_reanalyzed == len(BASE)
    assert report.cache_hits == 0


def test_warm_rerun_reanalyzes_nothing(tmp_path):
    sweep(tmp_path, BASE)
    report = sweep(tmp_path, BASE)
    assert report.files_reanalyzed == 0
    assert report.cache_hits == len(BASE)


def test_one_edit_invalidates_exactly_the_reverse_closure(tmp_path):
    sweep(tmp_path, BASE)
    edited = dict(BASE)
    edited["src/pkg/leaf.py"] = "def width():\n    return 4\n"
    report = sweep(tmp_path, edited)
    # leaf itself, mid (imports leaf), top (imports mid) — island is
    # untouched and must come straight from the cache.
    assert report.files_reanalyzed == 3
    assert report.cache_hits == 1


def test_engine_version_bump_invalidates_everything(tmp_path, monkeypatch):
    sweep(tmp_path, BASE)
    monkeypatch.setattr(
        engine_mod, "PERF_ENGINE_VERSION", engine_mod.PERF_ENGINE_VERSION + 1
    )
    report = sweep(tmp_path, BASE)
    assert report.files_reanalyzed == len(BASE)
    assert report.cache_hits == 0


def test_rule_version_bump_invalidates_everything(tmp_path, monkeypatch):
    sweep(tmp_path, BASE)
    rule = rules_mod._REGISTRY["repeated-digest"]
    monkeypatch.setattr(rule, "version", rule.version + 1)
    report = sweep(tmp_path, BASE)
    assert report.files_reanalyzed == len(BASE)
    assert report.cache_hits == 0


def test_cached_findings_replay_identically(tmp_path):
    files = dict(BASE)
    files["src/pkg/hot.py"] = (
        "import numpy as np\n\n\n"
        "def fill(n):\n"
        "    out = np.zeros(n)\n"
        "    for i in range(n):\n"
        "        out[i] = i * 2.0\n"
        "    return out\n"
    )
    cold = sweep(tmp_path, files)
    warm = sweep(tmp_path, files)
    assert warm.files_reanalyzed == 0
    assert warm.findings == cold.findings
    assert [f.rule for f in cold.findings] == ["python-loop-over-array"]
