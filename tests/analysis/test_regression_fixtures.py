"""Seeded regression fixtures: realistic "plausible PR" code planted
with exactly the bugs the determinism and pool-safety rules exist to
catch.  Each fixture mimics how this repo actually writes the relevant
subsystem (generator waves, weight-store digests), so a pass here means
the rules catch the regression shape, not just a toy snippet.
"""

import textwrap

from repro.analysis import LintConfig, lint_source, run_lint

#: A weight-store "optimization" that stamps digests with the wall
#: clock and iterates an unsorted set — both real determinism breaks:
#: re-generated lakes would stop being bit-identical.
DETERMINISM_REGRESSION = """
import hashlib
import time

from repro.utils.serialization import to_jsonable


class WeightStore:
    def __init__(self):
        self._blobs = {}

    def put_digest(self, state):
        hasher = hashlib.sha256()
        for key in {name for name in state}:
            hasher.update(state[key].tobytes())
        hasher.update(str(time.time()).encode("utf-8"))
        return hasher.hexdigest()[:16]
"""

#: A generator "cleanup" that inlines the wave task as a closure over
#: the bundle — works at workers=1, explodes (or ships the whole lake
#: through pickle) at workers=N.
POOL_REGRESSION = """
from repro.parallel import WaveExecutor, topological_waves


class LakeGenerator:
    def generate(self, plan, bundle, workers):
        results = {}

        def run_task(task):
            # closes over bundle: unpicklable / drags the lake along
            return task.fit(bundle.base_dataset)

        with WaveExecutor(workers=workers) as executor:
            for wave in topological_waves(plan.dependencies):
                tasks = [plan.tasks[key] for key in wave]
                wave_results = executor.run_wave(run_task, tasks)
                results.update(zip(wave, wave_results))
        return results
"""


def rules_hit(source, rel_path):
    return {f.rule for f in lint_source(textwrap.dedent(source), rel_path)}


def test_determinism_rules_catch_seeded_store_regression():
    hit = rules_hit(DETERMINISM_REGRESSION, "src/repro/lake/store.py")
    assert "time-in-digest" in hit
    assert "unordered-digest-iteration" in hit


def test_pool_safety_rule_catches_seeded_generator_regression():
    hit = rules_hit(POOL_REGRESSION, "src/repro/lake/generator.py")
    assert "pool-task" in hit


def test_clean_variants_of_the_same_code_pass():
    determinism_fixed = DETERMINISM_REGRESSION.replace(
        "for key in {name for name in state}:",
        "for key in sorted(state):",
    ).replace(
        '        hasher.update(str(time.time()).encode("utf-8"))\n', ""
    )
    assert rules_hit(determinism_fixed, "src/repro/lake/store.py") == set()

    pool_fixed = """
    from repro.parallel import WaveExecutor, topological_waves


    def run_task(task):
        return task.fit()


    class LakeGenerator:
        def generate(self, plan, workers):
            results = {}
            with WaveExecutor(workers=workers) as executor:
                for wave in topological_waves(plan.dependencies):
                    tasks = [plan.tasks[key] for key in wave]
                    wave_results = executor.run_wave(run_task, tasks)
                    results.update(zip(wave, wave_results))
            return results
    """
    assert rules_hit(pool_fixed, "src/repro/lake/generator.py") == set()


def test_regression_caught_through_full_runner(tmp_path):
    """End to end: the planted regression fails a strict tree lint."""
    target = tmp_path / "src" / "repro" / "lake" / "store.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(DETERMINISM_REGRESSION))
    result = run_lint(
        LintConfig(paths=["src"], root=str(tmp_path), use_cache=False)
    )
    assert result.exit_code(strict=True) == 1
    assert {f.rule for f in result.errors} >= {
        "time-in-digest", "unordered-digest-iteration",
    }
