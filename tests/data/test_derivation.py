"""Tests for dataset derivation operators and provenance records."""

import numpy as np
import pytest

from repro.data import (
    augment_with_noise,
    filter_by_domain,
    merge_datasets,
    sample_dataset,
)
from repro.errors import ConfigError


class TestSample:
    def test_size(self, small_dataset):
        result, record = sample_dataset(small_dataset, 0.5, seed=0)
        assert len(result) == round(0.5 * len(small_dataset))
        assert record.operation == "sample"

    def test_provenance_digests(self, small_dataset):
        result, record = sample_dataset(small_dataset, 0.5, seed=0)
        assert record.source_digests == (small_dataset.content_digest(),)
        assert record.result_digest == result.content_digest()

    def test_deterministic(self, small_dataset):
        a, _ = sample_dataset(small_dataset, 0.4, seed=9)
        b, _ = sample_dataset(small_dataset, 0.4, seed=9)
        assert np.array_equal(a.tokens, b.tokens)

    def test_invalid_fraction(self, small_dataset):
        with pytest.raises(ConfigError):
            sample_dataset(small_dataset, 0.0)


class TestFilter:
    def test_keeps_only_requested(self, small_dataset):
        result, record = filter_by_domain(small_dataset, ["legal"])
        assert set(result.domains) == {"legal"}
        assert record.operation == "filter_domain"

    def test_no_match_raises(self, small_dataset):
        with pytest.raises(ConfigError):
            filter_by_domain(small_dataset, ["travel"])


class TestAugment:
    def test_labels_preserved(self, small_dataset):
        result, _ = augment_with_noise(small_dataset, 0.2, seed=0)
        assert np.array_equal(result.labels, small_dataset.labels)

    def test_padding_untouched(self, small_dataset):
        result, _ = augment_with_noise(small_dataset, 0.5, seed=0)
        assert np.array_equal(result.tokens == 0, small_dataset.tokens == 0)

    def test_swap_rate_approximate(self, small_dataset):
        result, _ = augment_with_noise(small_dataset, 0.3, seed=0)
        nonpad = small_dataset.tokens != 0
        changed = (result.tokens != small_dataset.tokens) & nonpad
        rate = changed.sum() / nonpad.sum()
        assert 0.2 < rate < 0.35  # some swaps pick the same token

    def test_zero_noise_identity(self, small_dataset):
        result, _ = augment_with_noise(small_dataset, 0.0, seed=0)
        assert np.array_equal(result.tokens, small_dataset.tokens)


class TestMerge:
    def test_concatenates(self, small_dataset):
        first = small_dataset.subset(range(10))
        second = small_dataset.subset(range(10, 25))
        merged, record = merge_datasets(first, second)
        assert len(merged) == 25
        assert len(record.source_digests) == 2

    def test_seq_len_mismatch_raises(self, small_dataset, tokenizer):
        from repro.data import make_domain_dataset

        other = make_domain_dataset(["legal"], 3, seq_len=10, seed=0, tokenizer=tokenizer)
        with pytest.raises(ConfigError):
            merge_datasets(small_dataset, other)
