"""Tests for the synthetic corpus generator."""

import numpy as np
import pytest

from repro.data.corpus import CorpusGenerator
from repro.data.domains import get_domain
from repro.errors import ConfigError


class TestGenerateDocument:
    def test_deterministic(self):
        a = CorpusGenerator(seed=3).generate_corpus("legal", 5)
        b = CorpusGenerator(seed=3).generate_corpus("legal", 5)
        assert [d.tokens for d in a] == [f.tokens for f in b]

    def test_seed_changes_output(self):
        a = CorpusGenerator(seed=3).generate_corpus("legal", 5)
        b = CorpusGenerator(seed=4).generate_corpus("legal", 5)
        assert [d.tokens for d in a] != [f.tokens for f in b]

    def test_domain_words_dominate(self):
        docs = CorpusGenerator(seed=0, mixture_noise=0.0).generate_corpus("medical", 10)
        medical_words = set(get_domain("medical").content_words())
        legal_words = set(get_domain("legal").content_words())
        all_tokens = [t for d in docs for t in d.tokens]
        medical_count = sum(1 for t in all_tokens if t in medical_words)
        legal_count = sum(1 for t in all_tokens if t in legal_words)
        assert medical_count > 0
        assert legal_count == 0

    def test_mixture_noise_leaks_other_domains(self):
        generator = CorpusGenerator(seed=0, mixture_noise=0.3)
        docs = generator.generate_corpus(
            "medical", 20, noise_domains=["legal", "medical"]
        )
        legal_words = set(get_domain("legal").content_words())
        leaked = sum(1 for d in docs for t in d.tokens if t in legal_words)
        assert leaked > 0

    def test_invalid_sentences(self):
        with pytest.raises(ConfigError):
            CorpusGenerator(seed=0).generate_document("legal", 0)

    def test_invalid_noise(self):
        with pytest.raises(ConfigError):
            CorpusGenerator(seed=0, mixture_noise=1.5)

    def test_doc_ids_unique(self):
        docs = CorpusGenerator(seed=0).generate_corpus("news", 10)
        ids = [d.doc_id for d in docs]
        assert len(set(ids)) == len(ids)


class TestMixedCorpus:
    def test_round_robin_order(self):
        generator = CorpusGenerator(seed=0)
        docs = generator.generate_mixed_corpus(["legal", "news"], 3)
        assert [d.domain for d in docs] == ["legal", "news"] * 3

    def test_counts(self):
        generator = CorpusGenerator(seed=0)
        docs = generator.generate_mixed_corpus(["legal", "news", "code"], 4)
        assert len(docs) == 12
