"""Tests for domain specifications."""

import pytest

from repro.data.domains import (
    ALL_DOMAINS,
    DOMAIN_NAMES,
    domain_index,
    get_domain,
)
from repro.errors import ConfigError


class TestDomainRegistry:
    def test_eight_domains(self):
        assert len(ALL_DOMAINS) == 8
        assert "legal" in DOMAIN_NAMES and "medical" in DOMAIN_NAMES

    def test_get_domain(self):
        legal = get_domain("legal")
        assert legal.name == "legal"
        assert "court" in legal.nouns

    def test_unknown_domain_raises(self):
        with pytest.raises(ConfigError):
            get_domain("astrology")

    def test_domain_index_stable(self):
        assert domain_index(DOMAIN_NAMES[0]) == 0
        assert domain_index(DOMAIN_NAMES[-1]) == len(DOMAIN_NAMES) - 1

    def test_content_words_nonempty_and_typed(self):
        for domain in ALL_DOMAINS:
            assert len(domain.nouns) >= 10
            assert len(domain.verbs) >= 8
            assert len(domain.adjectives) >= 6

    def test_content_words_mostly_disjoint(self):
        """Domain vocabularies must be separable for tasks to work."""
        for i, a in enumerate(ALL_DOMAINS):
            for b in ALL_DOMAINS[i + 1 :]:
                overlap = set(a.content_words()) & set(b.content_words())
                assert not overlap, f"{a.name}/{b.name} share {overlap}"
