"""Tests for probe sets."""

import numpy as np
import pytest

from repro.data.probes import make_feature_probes, make_lm_prompts, make_text_probes
from repro.errors import ConfigError


class TestTextProbes:
    def test_balanced_coverage(self, tokenizer):
        probes = make_text_probes(probes_per_domain=2, tokenizer=tokenizer)
        from repro.data.domains import DOMAIN_NAMES

        for domain in DOMAIN_NAMES:
            assert probes.domains.count(domain) == 2

    def test_deterministic(self, tokenizer):
        a = make_text_probes(probes_per_domain=2, seed=5, tokenizer=tokenizer)
        b = make_text_probes(probes_per_domain=2, seed=5, tokenizer=tokenizer)
        assert np.array_equal(a.tokens, b.tokens)

    def test_domain_subset(self, tokenizer):
        probes = make_text_probes(
            probes_per_domain=3, domain_names=["legal", "news"], tokenizer=tokenizer
        )
        assert set(probes.domains) == {"legal", "news"}

    def test_invalid_count(self, tokenizer):
        with pytest.raises(ConfigError):
            make_text_probes(probes_per_domain=0, tokenizer=tokenizer)


class TestFeatureProbes:
    def test_shape(self):
        probes = make_feature_probes(10, 6, seed=1)
        assert probes.shape == (10, 6)

    def test_deterministic(self):
        assert np.array_equal(
            make_feature_probes(5, 4, seed=2), make_feature_probes(5, 4, seed=2)
        )

    def test_invalid(self):
        with pytest.raises(ConfigError):
            make_feature_probes(0, 4)


class TestLMPrompts:
    def test_starts_with_bos(self, tokenizer):
        prompts = make_lm_prompts(prompts_per_domain=1, tokenizer=tokenizer)
        assert np.all(prompts.tokens[:, 0] == tokenizer.vocabulary.bos_id)

    def test_prompt_length(self, tokenizer):
        prompts = make_lm_prompts(
            prompts_per_domain=1, prompt_len=5, tokenizer=tokenizer
        )
        assert prompts.tokens.shape[1] == 5
