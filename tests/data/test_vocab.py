"""Tests for the vocabulary."""

import pytest

from repro.data.vocab import (
    PAD_TOKEN,
    UNK_TOKEN,
    Vocabulary,
    build_default_vocabulary,
)
from repro.errors import ConfigError


class TestVocabulary:
    def test_pad_is_zero(self):
        vocab = Vocabulary(["apple", "banana"])
        assert vocab.pad_id == 0
        assert vocab.token_of(0) == PAD_TOKEN

    def test_round_trip(self):
        vocab = Vocabulary(["apple", "banana"])
        ids = vocab.encode(["banana", "apple"])
        assert vocab.decode(ids) == ["banana", "apple"]

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["apple"])
        assert vocab.id_of("mystery") == vocab.unk_id

    def test_duplicates_collapsed(self):
        vocab = Vocabulary(["apple", "apple", "banana"])
        assert len(vocab) == 4 + 2  # specials + uniques

    def test_out_of_range_raises(self):
        vocab = Vocabulary(["apple"])
        with pytest.raises(ConfigError):
            vocab.token_of(99)

    def test_contains(self):
        vocab = Vocabulary(["apple"])
        assert "apple" in vocab
        assert UNK_TOKEN in vocab
        assert "pear" not in vocab


class TestDefaultVocabulary:
    def test_deterministic(self):
        a = build_default_vocabulary()
        b = build_default_vocabulary()
        assert a.tokens() == b.tokens()

    def test_covers_all_domain_words(self):
        from repro.data.domains import ALL_DOMAINS

        vocab = build_default_vocabulary()
        for domain in ALL_DOMAINS:
            for word in domain.content_words():
                assert word in vocab, word

    def test_reasonable_size(self):
        vocab = build_default_vocabulary()
        assert 200 < len(vocab) < 500
