"""Tests for the tokenizer."""

import numpy as np
import pytest

from repro.data.corpus import Document
from repro.data.tokenizer import Tokenizer
from repro.data.vocab import Vocabulary
from repro.errors import ConfigError


@pytest.fixture()
def tok():
    return Tokenizer(Vocabulary(["alpha", "beta", "gamma"]))


class TestEncode:
    def test_round_trip(self, tok):
        ids = tok.encode(["alpha", "gamma"])
        assert tok.decode(ids) == ["alpha", "gamma"]

    def test_special_tokens(self, tok):
        ids = tok.encode(["alpha"], add_special=True)
        assert ids[0] == tok.vocabulary.bos_id
        assert ids[-1] == tok.vocabulary.eos_id

    def test_decode_skips_special(self, tok):
        ids = tok.encode(["alpha"], add_special=True)
        assert tok.decode(ids) == ["alpha"]
        assert len(tok.decode(ids, skip_special=False)) == 3

    def test_encode_text(self, tok):
        assert tok.encode_text("alpha beta") == tok.encode(["alpha", "beta"])

    def test_unknown_becomes_unk(self, tok):
        ids = tok.encode(["delta"])
        assert ids == [tok.vocabulary.unk_id]


class TestPadBatch:
    def test_pads_and_truncates(self, tok):
        batch = tok.pad_batch([[5], [5, 6, 7, 8]], max_length=3)
        assert batch.shape == (2, 3)
        assert batch[0].tolist() == [5, 0, 0]
        assert batch[1].tolist() == [5, 6, 7]

    def test_invalid_length(self, tok):
        with pytest.raises(ConfigError):
            tok.pad_batch([[1]], max_length=0)

    def test_encode_documents(self, tok):
        docs = [Document(tokens=["alpha", "beta"], domain="x")]
        batch = tok.encode_documents(docs, max_length=4)
        assert batch.shape == (1, 4)
        assert batch[0, 0] == tok.vocabulary.id_of("alpha")
