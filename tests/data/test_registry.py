"""Tests for the dataset registry and its lineage graph."""

import pytest

from repro.data import (
    DatasetRegistry,
    augment_with_noise,
    filter_by_domain,
    sample_dataset,
)
from repro.errors import DatasetNotFoundError


@pytest.fixture()
def populated(small_dataset):
    registry = DatasetRegistry()
    root = registry.register(small_dataset)
    sampled, record1 = sample_dataset(small_dataset, 0.5, seed=1)
    mid = registry.register(sampled, record1)
    augmented, record2 = augment_with_noise(sampled, 0.1, seed=2)
    leaf = registry.register(augmented, record2)
    return registry, root, mid, leaf


class TestRegistration:
    def test_content_addressing_idempotent(self, small_dataset):
        registry = DatasetRegistry()
        a = registry.register(small_dataset)
        b = registry.register(small_dataset)
        assert a == b
        assert len(registry) == 1

    def test_get_unknown_raises(self):
        registry = DatasetRegistry()
        with pytest.raises(DatasetNotFoundError):
            registry.get("nope")

    def test_derivation_with_unknown_source_raises(self, small_dataset):
        registry = DatasetRegistry()
        sampled, record = sample_dataset(small_dataset, 0.5, seed=1)
        with pytest.raises(DatasetNotFoundError):
            registry.register(sampled, record)  # source never registered

    def test_find_by_name(self, small_dataset):
        registry = DatasetRegistry()
        registry.register(small_dataset)
        assert registry.find_by_name(small_dataset.name)


class TestLineage:
    def test_parents_children(self, populated):
        registry, root, mid, leaf = populated
        assert registry.parents(mid) == [root]
        assert registry.children(mid) == [leaf]

    def test_ancestors_descendants(self, populated):
        registry, root, mid, leaf = populated
        assert registry.ancestors(leaf) == {root, mid}
        assert registry.descendants(root) == {mid, leaf}

    def test_versions_of_is_symmetric_closure(self, populated):
        registry, root, mid, leaf = populated
        assert registry.versions_of(root) == {root, mid, leaf}
        assert registry.versions_of(leaf) == {root, mid, leaf}

    def test_derivation_path(self, populated):
        registry, root, mid, leaf = populated
        assert registry.derivation_path(root, leaf) == [root, mid, leaf]
        assert registry.derivation_path(leaf, root) is None

    def test_unrelated_datasets_not_versions(self, populated, tokenizer):
        from repro.data import make_domain_dataset

        registry, root, _, _ = populated
        other = make_domain_dataset(["travel"], 4, seed=9, tokenizer=tokenizer)
        other_digest = registry.register(other)
        assert other_digest not in registry.versions_of(root)
