"""Tests for dataset construction and splitting."""

import numpy as np
import pytest

from repro.data import make_domain_dataset, make_lm_sequences
from repro.data.datasets import TextDataset
from repro.errors import ConfigError


class TestTextDataset:
    def test_alignment_enforced(self):
        with pytest.raises(ConfigError):
            TextDataset(
                tokens=np.zeros((3, 4), dtype=np.int64),
                labels=np.zeros(2, dtype=np.int64),
                domains=["a", "b", "c"],
            )

    def test_digest_content_based(self, tokenizer):
        a = make_domain_dataset(["legal"], 5, seed=0, tokenizer=tokenizer, name="x")
        b = make_domain_dataset(["legal"], 5, seed=0, tokenizer=tokenizer, name="y")
        assert a.content_digest() == b.content_digest()  # names differ, content same

    def test_digest_changes_with_content(self, tokenizer):
        a = make_domain_dataset(["legal"], 5, seed=0, tokenizer=tokenizer)
        b = make_domain_dataset(["legal"], 5, seed=1, tokenizer=tokenizer)
        assert a.content_digest() != b.content_digest()

    def test_subset(self, small_dataset):
        sub = small_dataset.subset([0, 2, 4])
        assert len(sub) == 3
        assert sub.domains == [small_dataset.domains[i] for i in (0, 2, 4)]

    def test_split_partitions(self, small_dataset):
        train, test = small_dataset.split(0.75, seed=0)
        assert len(train) + len(test) == len(small_dataset)
        assert len(train) == round(0.75 * len(small_dataset))

    def test_split_deterministic(self, small_dataset):
        a_train, _ = small_dataset.split(0.5, seed=3)
        b_train, _ = small_dataset.split(0.5, seed=3)
        assert np.array_equal(a_train.tokens, b_train.tokens)

    def test_split_invalid_fraction(self, small_dataset):
        with pytest.raises(ConfigError):
            small_dataset.split(1.5)

    def test_domain_histogram(self, small_dataset):
        hist = small_dataset.domain_histogram()
        assert sum(hist.values()) == len(small_dataset)
        assert set(hist) == {"legal", "medical", "news", "code"}


class TestMakeDomainDataset:
    def test_balanced(self, tokenizer):
        ds = make_domain_dataset(["legal", "news"], 7, seed=0, tokenizer=tokenizer)
        assert ds.domain_histogram() == {"legal": 7, "news": 7}

    def test_labels_are_domain_indices(self, tokenizer):
        from repro.data.domains import domain_index

        ds = make_domain_dataset(["legal", "news"], 3, seed=0, tokenizer=tokenizer)
        for label, domain in zip(ds.labels, ds.domains):
            assert label == domain_index(domain)

    def test_empty_domains_raises(self, tokenizer):
        with pytest.raises(ConfigError):
            make_domain_dataset([], 3, tokenizer=tokenizer)


class TestMakeLMSequences:
    def test_starts_with_bos(self, tokenizer):
        ds = make_lm_sequences(["legal"], 4, seq_len=12, seed=0, tokenizer=tokenizer)
        assert np.all(ds.tokens[:, 0] == tokenizer.vocabulary.bos_id)

    def test_shape(self, tokenizer):
        ds = make_lm_sequences(["legal", "news"], 3, seq_len=10, seed=0, tokenizer=tokenizer)
        assert ds.tokens.shape == (6, 10)
