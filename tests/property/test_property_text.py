"""Property-based tests for the text/tokenizer/search substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search.keyword import BM25Index
from repro.data.tokenizer import Tokenizer
from repro.data.vocab import Vocabulary
from repro.interp.watermark import WatermarkConfig, detect_watermark

words = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


class TestVocabularyProperties:
    @given(st.lists(words, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_encode_decode_round_trip(self, tokens):
        vocab = Vocabulary(tokens)
        tokenizer = Tokenizer(vocab)
        ids = tokenizer.encode(tokens)
        assert tokenizer.decode(ids) == tokens

    @given(st.lists(words, min_size=1, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_ids_unique_and_stable(self, tokens):
        vocab = Vocabulary(tokens)
        ids = [vocab.id_of(t) for t in set(tokens)]
        assert len(set(ids)) == len(ids)

    @given(st.lists(words, min_size=1, max_size=10), words)
    @settings(max_examples=60, deadline=None)
    def test_unknown_token_maps_to_unk(self, tokens, probe):
        vocab = Vocabulary(tokens)
        if probe not in tokens:
            assert vocab.id_of(probe) == vocab.unk_id


class TestPadBatchProperties:
    @given(
        st.lists(st.lists(st.integers(4, 50), max_size=12), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_shape_and_content(self, id_lists, max_length):
        tokenizer = Tokenizer(Vocabulary(["a"]))
        batch = tokenizer.pad_batch(id_lists, max_length)
        assert batch.shape == (len(id_lists), max_length)
        for row, ids in zip(batch, id_lists):
            clipped = ids[:max_length]
            assert row[: len(clipped)].tolist() == clipped
            assert all(v == 0 for v in row[len(clipped):])


class TestBM25Properties:
    @given(st.lists(st.lists(words, min_size=1, max_size=8), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_scores_positive_and_query_subset(self, documents):
        index = BM25Index()
        for i, doc in enumerate(documents):
            index.add(f"d{i}", " ".join(doc))
        results = index.query(" ".join(documents[0]), k=10)
        assert results  # the document itself must match its own words
        assert all(score > 0 for _, score in results)

    @given(st.lists(words, min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_self_retrieval(self, doc):
        index = BM25Index()
        index.add("target", " ".join(doc))
        index.add("noise", "zzz yyy xxx www")
        results = index.query(" ".join(doc), k=2)
        assert results[0][0] == "target"


class TestWatermarkProperties:
    @given(
        st.lists(st.integers(0, 59), min_size=2, max_size=60),
        st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_green_fraction_bounds(self, tokens, key):
        config = WatermarkConfig(gamma=0.5, delta=2.0, key=key)
        result = detect_watermark(tokens, 60, config=config)
        assert 0.0 <= result.green_fraction <= 1.0
        assert result.num_scored == len(tokens) - 1

    @given(st.lists(st.integers(0, 59), min_size=2, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_detection_deterministic(self, tokens):
        config = WatermarkConfig(key=7)
        a = detect_watermark(tokens, 60, config=config)
        b = detect_watermark(tokens, 60, config=config)
        assert a.z_score == b.z_score
