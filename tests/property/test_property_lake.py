"""Property-based tests for lake data structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.audit import propagate_risk
from repro.core.versioning import VersionGraph
from repro.lake import ModelCard
from repro.transforms import TransformRecord
from repro.utils.serialization import arrays_to_bytes, bytes_to_arrays

field_text = st.one_of(st.none(), st.text(max_size=30))


class TestCardProperties:
    @given(
        field_text, field_text, field_text,
        st.lists(st.sampled_from(["legal", "medical", "news"]), max_size=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_completeness_bounds_and_monotonicity(
        self, description, intended, training, domains
    ):
        card = ModelCard(
            model_name="x", description=description,
            intended_use=intended, training_data=training,
            training_domains=domains,
        )
        value = card.completeness()
        assert 0.0 <= value <= 1.0
        # Filling one more empty field never lowers completeness.
        filled = card.copy()
        filled.limitations = "documented"
        assert filled.completeness() >= value

    @given(field_text, field_text)
    @settings(max_examples=60, deadline=None)
    def test_copy_digest_identity(self, description, intended):
        card = ModelCard(model_name="x", description=description, intended_use=intended)
        assert card.copy().digest() == card.digest()


class TestSerializationRoundTrip:
    @given(
        st.dictionaries(
            st.text(alphabet="abcxyz_./", min_size=1, max_size=10),
            st.integers(min_value=1, max_value=6),
            min_size=1, max_size=4,
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_arrays_round_trip(self, spec, seed):
        rng = np.random.default_rng(seed)
        arrays = {name: rng.normal(size=size) for name, size in spec.items()}
        restored = bytes_to_arrays(arrays_to_bytes(arrays))
        assert set(restored) == set(arrays)
        for name in arrays:
            assert np.array_equal(restored[name], arrays[name])


def chain_graph(num_nodes, kinds):
    graph = VersionGraph()
    for i in range(num_nodes - 1):
        graph.add_edge(
            f"n{i}", f"n{i + 1}", TransformRecord(kind=kinds[i % len(kinds)])
        )
    return graph


class TestRiskProperties:
    @given(
        st.integers(min_value=2, max_value=8),
        st.lists(
            st.sampled_from(["finetune", "lora", "distill", "merge", "quantize"]),
            min_size=1, max_size=4,
        ),
        st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_risk_never_amplifies(self, num_nodes, kinds, seed_risk):
        graph = chain_graph(num_nodes, kinds)
        assessment = propagate_risk(graph, {"n0": seed_risk})
        for node, value in assessment.risk.items():
            assert 0.0 <= value <= seed_risk + 1e-12

    @given(
        st.integers(min_value=3, max_value=8),
        st.lists(
            st.sampled_from(["finetune", "lora", "distill"]), min_size=1, max_size=3
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_risk_monotone_along_chain(self, num_nodes, kinds):
        graph = chain_graph(num_nodes, kinds)
        assessment = propagate_risk(graph, {"n0": 1.0})
        values = [assessment.risk.get(f"n{i}", 0.0) for i in range(num_nodes)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
