"""Property-based tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn.autograd import Tensor

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False,
    width=64,
)


def small_arrays(max_dims=2, max_side=4):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


class TestAlgebraicProperties:
    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_addition_commutes(self, data):
        a = Tensor(data)
        b = Tensor(data * 2 + 1)
        assert np.allclose((a + b).data, (b + a).data)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_softmax_simplex(self, data):
        t = Tensor(data)
        out = t.softmax(axis=-1).data
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_relu_idempotent(self, data):
        t = Tensor(data)
        once = t.relu().data
        twice = t.relu().relu().data
        assert np.array_equal(once, twice)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, data):
        t = Tensor(data)
        assert np.allclose((-(-t)).data, t.data)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_sum_linearity_of_gradient(self, data):
        """grad of (2x).sum() is exactly 2 everywhere."""
        t = Tensor(data, requires_grad=True)
        (t * 2).sum().backward()
        assert np.allclose(t.grad, 2.0)

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_gradient_accumulation_additivity(self, data):
        """Backward twice accumulates exactly double the gradient."""
        t1 = Tensor(data, requires_grad=True)
        t1.sum().backward()
        once = t1.grad.copy()
        t1.sum().backward()
        assert np.allclose(t1.grad, 2 * once)

    @given(small_arrays(max_dims=2))
    @settings(max_examples=30, deadline=None)
    def test_reshape_roundtrip_preserves_gradient(self, data):
        t = Tensor(data, requires_grad=True)
        t.reshape(-1).reshape(*data.shape).sum().backward()
        assert np.allclose(t.grad, 1.0)
