"""Property-based tests for nearest-neighbor indexes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index import FlatIndex, HNSWIndex


def vectors_strategy(n_min=2, n_max=20, dim=6):
    return st.lists(
        st.lists(
            st.floats(min_value=-5, max_value=5, allow_nan=False, width=32),
            min_size=dim, max_size=dim,
        ),
        min_size=n_min, max_size=n_max,
    )


class TestFlatIndexProperties:
    @given(vectors_strategy())
    @settings(max_examples=40, deadline=None)
    def test_self_query_returns_self_or_duplicate(self, rows):
        vectors = np.array(rows)
        # Skip degenerate all-zero rows (cosine undefined).
        if np.any(np.linalg.norm(vectors, axis=1) < 1e-9):
            return
        index = FlatIndex()
        ids = [f"v{i}" for i in range(len(vectors))]
        index.build(ids, vectors)
        top_id, top_score = index.query(vectors[0], k=1)[0]
        # The top hit must score at least as high as the query itself.
        assert top_score >= 1.0 - 1e-9

    @given(vectors_strategy(), st.integers(min_value=1, max_value=25))
    @settings(max_examples=40, deadline=None)
    def test_result_count_bounded(self, rows, k):
        vectors = np.array(rows)
        index = FlatIndex()
        index.build([f"v{i}" for i in range(len(vectors))], vectors)
        results = index.query(vectors[0], k=k)
        assert len(results) == min(k, len(vectors))

    @given(vectors_strategy())
    @settings(max_examples=40, deadline=None)
    def test_scores_monotone(self, rows):
        vectors = np.array(rows)
        index = FlatIndex()
        index.build([f"v{i}" for i in range(len(vectors))], vectors)
        results = index.query(vectors[0], k=len(vectors))
        scores = [s for _, s in results]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))


class TestHNSWProperties:
    @given(vectors_strategy(n_min=3, n_max=15), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_all_elements_reachable(self, rows, seed):
        """Every inserted element is returned by a wide-enough search."""
        vectors = np.array(rows)
        if np.any(np.linalg.norm(vectors, axis=1) < 1e-9):
            return
        index = HNSWIndex(m=4, ef_construction=16, seed=seed)
        ids = [f"v{i}" for i in range(len(vectors))]
        index.build(ids, vectors)
        results = index.query(vectors[0], k=len(vectors), ef=4 * len(vectors))
        assert {i for i, _ in results} == set(ids)

    @given(vectors_strategy(n_min=3, n_max=12))
    @settings(max_examples=25, deadline=None)
    def test_results_subset_of_inserted(self, rows):
        vectors = np.array(rows)
        index = HNSWIndex(m=4, ef_construction=16, seed=0)
        ids = [f"v{i}" for i in range(len(vectors))]
        index.build(ids, vectors)
        results = index.query(np.ones(vectors.shape[1]), k=5)
        assert {i for i, _ in results} <= set(ids)
