"""Property-based tests for ranking metrics and hashing invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.benchmarking import (
    edge_precision_recall,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.utils.hashing import stable_hash

ids = st.lists(
    st.text(alphabet="abcdef", min_size=1, max_size=4), min_size=1, max_size=10,
    unique=True,
)


class TestMetricBounds:
    @given(ids, ids, st.integers(min_value=1, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_precision_recall_in_unit_interval(self, ranked, relevant, k):
        relevant_set = set(relevant)
        assert 0.0 <= precision_at_k(ranked, relevant_set, k) <= 1.0
        assert 0.0 <= recall_at_k(ranked, relevant_set, k) <= 1.0

    @given(ids, ids)
    @settings(max_examples=60, deadline=None)
    def test_reciprocal_rank_bounds(self, ranked, relevant):
        value = reciprocal_rank(ranked, set(relevant))
        assert 0.0 <= value <= 1.0

    @given(ids, st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_ndcg_bounds(self, ranked, k):
        gains = {item: float(len(item)) for item in ranked}
        value = ndcg_at_k(ranked, gains, k)
        assert 0.0 <= value <= 1.0 + 1e-12

    @given(ids, st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_ideal_ranking_is_optimal(self, ranked, k):
        gains = {item: float(i) for i, item in enumerate(ranked)}
        ideal = sorted(ranked, key=lambda x: -gains[x])
        assert ndcg_at_k(ideal, gains, k) >= ndcg_at_k(ranked, gains, k) - 1e-12


class TestEdgeMetricProperties:
    @given(
        st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10),
        st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_perfect_prediction_gives_ones(self, predicted, truth):
        p, r, f = edge_precision_recall(truth, truth)
        assert p == r == f == 1.0

    @given(
        st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10),
        st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_f1_between_precision_and_recall_bounds(self, predicted, truth):
        p, r, f = edge_precision_recall(predicted, truth)
        assert 0.0 <= f <= 1.0
        assert f <= max(p, r) + 1e-12


class TestHashingProperties:
    @given(st.dictionaries(st.text(max_size=6), st.integers(), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_dict_order_invariance(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert stable_hash(mapping) == stable_hash(reordered)

    @given(st.lists(st.integers(), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_list_order_sensitivity(self, items):
        if items != sorted(items):
            assert stable_hash(items) != stable_hash(sorted(items))
