"""Legacy setup shim: lets ``pip install -e .`` work in offline
environments that lack the ``wheel`` package (pip falls back to
``setup.py develop``). All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
