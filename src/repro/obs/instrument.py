"""Instrumentation glue for the lake's hot paths.

Central home for the metric names recorded across the library (so the
namespace stays coherent and greppable) plus the small decorators and
context managers hot paths use.  ``repro.obs`` must stay import-free of
the rest of ``repro`` — hot-path modules import *from here*, never the
reverse — which is what lets every layer instrument itself without
creating cycles.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Optional, TypeVar

from repro.obs import metrics as _metrics
from repro.obs.tracing import OBS_EXPORT_ERRORS, trace

__all__ = [
    "timed",
    "time_block",
    # observability self-monitoring (defined in tracing to avoid a cycle)
    "OBS_EXPORT_ERRORS",
    # weight store
    "WEIGHT_STORE_CACHE_HITS",
    "WEIGHT_STORE_CACHE_MISSES",
    "WEIGHT_STORE_PUTS",
    "WEIGHT_STORE_DEDUP_HITS",
    "WEIGHT_STORE_BYTES",
    # lake
    "LAKE_MODELS_ADDED",
    "LAKE_MODEL_LOADS",
    "LAKE_GENERATED_MODELS",
    # search
    "SEARCH_QUERIES",
    "SEARCH_LATENCY",
    "SEARCH_ENGINE_BUILDS",
    # serve
    "SERVE_REQUESTS",
    "SERVE_ERRORS",
    "SERVE_REJECTED",
    "SERVE_IN_FLIGHT",
    "SERVE_QUEUE_DEPTH",
    "SERVE_BATCHES",
    "SERVE_BATCH_SIZE",
    "SERVE_SEARCH_LATENCY",
    "SERVE_MODEL_LATENCY",
    "SERVE_STATS_LATENCY",
    "SERVE_HEALTH_LATENCY",
    # index
    "HNSW_DISTANCE_COMPS",
    "HNSW_INSERTS",
    "HNSW_QUERIES",
    "EMBED_CACHE_HITS",
    "EMBED_CACHE_MISSES",
    # parallel execution
    "PARALLEL_WAVES",
    "PARALLEL_TASKS",
    "PARALLEL_WAVE_SECONDS",
    "PARALLEL_WORKERS",
    # training
    "TRAIN_EPOCHS",
    "TRAIN_EPOCH_SECONDS",
    "TRAIN_LOSS",
    # inference agent
    "INFERENCE_REQUESTS",
    "INFERENCE_CANDIDATES_VERIFIED",
    # static analysis
    "LINT_FILES",
    "LINT_CACHE_HITS",
    "LINT_CACHE_MISSES",
    "LINT_FINDINGS",
    "LINT_RUN_SECONDS",
    # whole-program graph analysis
    "GRAPH_MODULES",
    "GRAPH_EDGES",
    "GRAPH_BUILD_SECONDS",
    "GRAPH_FILES_REANALYZED",
    "GRAPH_CACHE_HITS",
    "GRAPH_CACHE_MISSES",
    "GRAPH_FINDINGS",
    # reliability: atomic writes, retries, checkpoints
    "RELIABILITY_ATOMIC_WRITES",
    "RELIABILITY_ATOMIC_BYTES",
    "RELIABILITY_POOL_REBUILDS",
    "RELIABILITY_TASK_RETRIES",
    "RELIABILITY_CHECKPOINT_STORES",
    "RELIABILITY_CHECKPOINT_HITS",
    "RELIABILITY_INJECTED_FAULTS",
    # integrity verification
    "FSCK_RUNS",
    "FSCK_FILES_SCANNED",
    "FSCK_FINDINGS",
    "FSCK_REPAIRS",
    "FSCK_RUN_SECONDS",
]

F = TypeVar("F", bound=Callable[..., Any])

WEIGHT_STORE_CACHE_HITS = "lake.weight_store.cache_hits"
WEIGHT_STORE_CACHE_MISSES = "lake.weight_store.cache_misses"
WEIGHT_STORE_PUTS = "lake.weight_store.puts"
WEIGHT_STORE_DEDUP_HITS = "lake.weight_store.dedup_hits"
WEIGHT_STORE_BYTES = "lake.weight_store.bytes"

LAKE_MODELS_ADDED = "lake.models_added"
LAKE_MODEL_LOADS = "lake.model_loads"
LAKE_GENERATED_MODELS = "lake.generate.models"

SEARCH_QUERIES = "search.queries"
SEARCH_LATENCY = "search.latency_seconds"
SEARCH_ENGINE_BUILDS = "search.engine_builds"

SERVE_REQUESTS = "serve.requests"
SERVE_ERRORS = "serve.errors"
SERVE_REJECTED = "serve.rejected"
SERVE_IN_FLIGHT = "serve.in_flight"
SERVE_QUEUE_DEPTH = "serve.batch.queue_depth"
SERVE_BATCHES = "serve.batch.dispatches"
SERVE_BATCH_SIZE = "serve.batch.size"
SERVE_SEARCH_LATENCY = "serve.search.latency_seconds"
SERVE_MODEL_LATENCY = "serve.model.latency_seconds"
SERVE_STATS_LATENCY = "serve.stats.latency_seconds"
SERVE_HEALTH_LATENCY = "serve.healthz.latency_seconds"

HNSW_DISTANCE_COMPS = "index.hnsw.distance_computations"
HNSW_INSERTS = "index.hnsw.inserts"
HNSW_QUERIES = "index.hnsw.queries"
EMBED_CACHE_HITS = "index.embed_cache.hits"
EMBED_CACHE_MISSES = "index.embed_cache.misses"

PARALLEL_WAVES = "parallel.waves"
PARALLEL_TASKS = "parallel.tasks"
PARALLEL_WAVE_SECONDS = "parallel.wave_seconds"
PARALLEL_WORKERS = "parallel.workers"

TRAIN_EPOCHS = "nn.train.epochs"
TRAIN_EPOCH_SECONDS = "nn.train.epoch_seconds"
TRAIN_LOSS = "nn.train.loss"

INFERENCE_REQUESTS = "inference.requests"
INFERENCE_CANDIDATES_VERIFIED = "inference.candidates_verified"

LINT_FILES = "analysis.lint.files"
LINT_CACHE_HITS = "analysis.lint.cache_hits"
LINT_CACHE_MISSES = "analysis.lint.cache_misses"
LINT_FINDINGS = "analysis.lint.findings"
LINT_RUN_SECONDS = "analysis.lint.run_seconds"

RELIABILITY_ATOMIC_WRITES = "reliability.atomic.writes"
RELIABILITY_ATOMIC_BYTES = "reliability.atomic.bytes"
RELIABILITY_POOL_REBUILDS = "reliability.pool_rebuilds"
RELIABILITY_TASK_RETRIES = "reliability.task_retries"
RELIABILITY_CHECKPOINT_STORES = "reliability.checkpoint.stores"
RELIABILITY_CHECKPOINT_HITS = "reliability.checkpoint.hits"
RELIABILITY_INJECTED_FAULTS = "reliability.injected_faults"

FSCK_RUNS = "fsck.runs"
FSCK_FILES_SCANNED = "fsck.files_scanned"
FSCK_FINDINGS = "fsck.findings"
FSCK_REPAIRS = "fsck.repairs"
FSCK_RUN_SECONDS = "fsck.run_seconds"

GRAPH_MODULES = "analysis.graph.modules"
GRAPH_EDGES = "analysis.graph.edges"
GRAPH_BUILD_SECONDS = "analysis.graph.build_seconds"
GRAPH_FILES_REANALYZED = "analysis.graph.files_reanalyzed"
GRAPH_CACHE_HITS = "analysis.graph.cache_hits"
GRAPH_CACHE_MISSES = "analysis.graph.cache_misses"
GRAPH_FINDINGS = "analysis.graph.findings"

DATAFLOW_MODULES = "analysis.dataflow.modules"
DATAFLOW_FUNCTIONS = "analysis.dataflow.functions"
DATAFLOW_FILES_REANALYZED = "analysis.dataflow.files_reanalyzed"
DATAFLOW_CACHE_HITS = "analysis.dataflow.cache_hits"
DATAFLOW_CACHE_MISSES = "analysis.dataflow.cache_misses"
DATAFLOW_FINDINGS = "analysis.dataflow.findings"
DATAFLOW_RUN_SECONDS = "analysis.dataflow.run_seconds"

PERF_MODULES = "analysis.perf.modules"
PERF_FUNCTIONS = "analysis.perf.functions"
PERF_FILES_REANALYZED = "analysis.perf.files_reanalyzed"
PERF_CACHE_HITS = "analysis.perf.cache_hits"
PERF_CACHE_MISSES = "analysis.perf.cache_misses"
PERF_FINDINGS = "analysis.perf.findings"
PERF_RUN_SECONDS = "analysis.perf.run_seconds"


def timed(
    histogram_name: str,
    span_name: Optional[str] = None,
    counter_name: Optional[str] = None,
) -> Callable[[F], F]:
    """Decorator: record the call's duration into ``histogram_name``.

    Optionally opens a span (``span_name``) around the call and bumps
    ``counter_name`` once per call.  Duration is recorded whether or not
    tracing is enabled — histograms are always on; spans are the
    opt-in, exporter-gated layer.
    """

    def decorate(fn: F) -> F:
        label = span_name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if counter_name is not None:
                _metrics.inc(counter_name)
            start = time.perf_counter()
            with trace(label):
                result = fn(*args, **kwargs)
            _metrics.observe(histogram_name, time.perf_counter() - start)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate


class time_block:
    """``with time_block("name"):`` — histogram-record a block's duration."""

    __slots__ = ("_name", "_start")

    def __init__(self, histogram_name: str):
        self._name = histogram_name
        self._start = 0.0

    def __enter__(self) -> "time_block":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        _metrics.observe(self._name, time.perf_counter() - self._start)
        return False
