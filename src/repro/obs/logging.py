"""Structured logging: key=value (or JSON) records over stdlib ``logging``.

Every logger lives under the ``"repro"`` namespace, so one
:func:`configure` call controls the whole library.  Call sites log an
*event name* plus fields, never a pre-formatted sentence::

    log = get_logger("search.engine")
    log.info("query.completed", method="hybrid", k=5, hits=3)

which renders as ``search.engine query.completed method=hybrid k=5
hits=3`` — or as one JSON object per line when configured with
``json=True`` — so log records stay machine-parseable alongside the
JSONL span stream.
"""

from __future__ import annotations

import json as _json
import logging as _logging
import sys
from typing import Any, Dict, Optional, TextIO

__all__ = ["configure", "get_logger", "StructuredLogger"]

_ROOT_NAME = "repro"


def _render_value(value: Any) -> str:
    text = str(value)
    if " " in text or "=" in text or not text:
        return repr(text)
    return text


class _KeyValueFormatter(_logging.Formatter):
    """``<logger> <event> key=value ...`` lines."""

    def format(self, record: _logging.LogRecord) -> str:
        fields: Dict[str, Any] = getattr(record, "fields", {}) or {}
        parts = [record.name, record.getMessage()]
        parts.extend(f"{key}={_render_value(val)}" for key, val in fields.items())
        line = " ".join(parts)
        if record.exc_info:
            line = f"{line}\n{self.formatException(record.exc_info)}"
        return line


class _JsonFormatter(_logging.Formatter):
    """One JSON object per record: logger, level, event, fields."""

    def format(self, record: _logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "logger": record.name,
            "level": record.levelname.lower(),
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", {}) or {}
        if fields:
            payload["fields"] = fields
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return _json.dumps(payload, sort_keys=True, default=str)


def configure(
    level: str = "INFO",
    json: bool = False,
    stream: Optional[TextIO] = None,
) -> _logging.Logger:
    """(Re)configure the library-wide logger; idempotent.

    Replaces any handlers previously installed by this function, so
    repeated calls (e.g. one per CLI invocation in tests) never stack
    duplicate handlers.
    """
    root = _logging.getLogger(_ROOT_NAME)
    root.setLevel(level.upper() if isinstance(level, str) else level)
    handler = _logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(_JsonFormatter() if json else _KeyValueFormatter())
    root.handlers = [handler]
    root.propagate = False
    return root


class StructuredLogger:
    """Thin wrapper binding an event name plus keyword fields per call."""

    __slots__ = ("_logger",)

    def __init__(self, logger: _logging.Logger):
        self._logger = logger

    def _log(self, level: int, event: str, fields: Dict[str, Any]) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields: Any) -> None:
        self._log(_logging.DEBUG, event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log(_logging.INFO, event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log(_logging.WARNING, event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log(_logging.ERROR, event, fields)

    @property
    def raw(self) -> _logging.Logger:
        return self._logger


def get_logger(name: str) -> StructuredLogger:
    """A structured logger under the ``repro`` namespace."""
    if name != _ROOT_NAME and not name.startswith(_ROOT_NAME + "."):
        name = f"{_ROOT_NAME}.{name}"
    return StructuredLogger(_logging.getLogger(name))
