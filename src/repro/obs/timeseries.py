"""Schema-versioned benchmark results and the perf trajectory.

The ROADMAP's north star — "as fast as the hardware allows" — is only
checkable if performance numbers survive as *comparable series*, not
ad-hoc JSON blobs.  Following the benchmark-maintenance playbook
(PAPERS.md: results must be versioned, attributable to a host, and
monitored for drift), every benchmark run becomes a
:class:`BenchResult`:

* ``schema_version`` — readers reject records they do not understand
  instead of mis-parsing them;
* ``host`` facts (``cpu_count``, platform, python) — numbers from a
  1-core container and a 16-core CI runner are different series and
  must never gate each other;
* a flat ``metrics`` dict — the measured values, with direction
  (lower/higher-is-better) inferred from conventional metric naming.

Results append to a per-benchmark *trajectory* file under
``benchmarks/results/trajectory/`` via the crash-safe atomic writer, so
a killed benchmark run never corrupts the recorded history.
:func:`check_regression` compares a fresh result against the median of
the comparable baseline entries (same bench, same mode, same
``cpu_count``) and flags any metric that moved beyond its tolerance in
the *worse* direction — the gate ``repro bench --check`` enforces.

This module lives under ``repro.obs`` but is declared in the *compute*
layer (.repro-arch.toml): unlike the rest of the package it depends on
:mod:`repro.reliability.atomic` for durable writes, so it must sit
above the foundation layer and is deliberately not re-exported from
``repro.obs``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ConfigError

__all__ = [
    "SCHEMA_VERSION",
    "BenchResult",
    "MetricCheck",
    "RegressionReport",
    "host_facts",
    "metric_direction",
    "trajectory_path",
    "load_trajectory",
    "append_result",
    "check_regression",
]

SCHEMA_VERSION = 1

#: How many of the most recent comparable entries form the baseline.
BASELINE_WINDOW = 5

#: Default allowed worse-direction drift (25%) before a metric fails.
DEFAULT_TOLERANCE = 1.25

_LOWER_IS_BETTER = ("seconds", "latency", "_us", "_ms", "_ns", "bytes", "peak")
_HIGHER_IS_BETTER = ("speedup", "throughput", "qps", "accuracy", "recall", "hit_rate", "per_second")

#: Absolute moves smaller than this never gate, whatever the ratio says:
#: a 10ms -> 21ms cold build is scheduler noise, not a regression.
_NOISE_FLOORS = (("_us", 100.0), ("_ms", 5.0), ("seconds", 0.05))


def _noise_floor(name: str) -> float:
    lowered = name.lower()
    for token, floor in _NOISE_FLOORS:
        if token in lowered:
            return floor
    return 0.0


def metric_direction(name: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` is better, or ``None`` if unknowable.

    Inferred from conventional suffixes; metrics with no inferable
    direction (``models``, ``vectors`` — scale facts, not performance)
    are recorded but never gated.
    """
    lowered = name.lower()
    if any(token in lowered for token in _HIGHER_IS_BETTER):
        return "higher"
    if any(token in lowered for token in _LOWER_IS_BETTER):
        return "lower"
    return None


def host_facts() -> Dict[str, Any]:
    """The facts that decide whether two results are comparable."""
    return {
        "cpu_count": os.cpu_count() or 1,
        "platform": platform.system().lower(),
        "machine": platform.machine(),
        "python": ".".join(str(part) for part in sys.version_info[:3]),
    }


@dataclass
class BenchResult:
    """One benchmark run: what ran, where, and what it measured."""

    bench: str
    mode: str
    metrics: Dict[str, float]
    host: Dict[str, Any] = field(default_factory=host_facts)
    recorded_at: str = ""
    schema_version: int = SCHEMA_VERSION

    def __post_init__(self) -> None:
        if not self.recorded_at:
            self.recorded_at = time.strftime("%Y-%m-%dT%H:%M:%S%z")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": self.schema_version,
            "bench": self.bench,
            "mode": self.mode,
            "recorded_at": self.recorded_at,
            "host": dict(self.host),
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "BenchResult":
        version = record.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ConfigError(
                f"unsupported BenchResult schema_version {version!r} "
                f"(this reader understands {SCHEMA_VERSION})"
            )
        try:
            return cls(
                bench=record["bench"],
                mode=record["mode"],
                metrics=dict(record["metrics"]),
                host=dict(record["host"]),
                recorded_at=record["recorded_at"],
                schema_version=version,
            )
        except KeyError as exc:
            raise ConfigError(f"BenchResult record missing field {exc}") from exc


def trajectory_path(results_dir: str, bench: str) -> str:
    return os.path.join(results_dir, "trajectory", f"{bench}.json")


def load_trajectory(results_dir: str, bench: str) -> List[BenchResult]:
    """All recorded results for ``bench``, oldest first."""
    path = trajectory_path(results_dir, bench)
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        document = json.load(handle)
    if document.get("schema_version") != SCHEMA_VERSION:
        raise ConfigError(
            f"{path}: unsupported trajectory schema_version "
            f"{document.get('schema_version')!r}"
        )
    return [BenchResult.from_dict(entry) for entry in document.get("entries", [])]


def append_result(results_dir: str, result: BenchResult) -> str:
    """Append one result to its trajectory file (atomic write)."""
    # Lazy import: keeps obs importable before the compute layer exists
    # (this module is compute-layer precisely because of this writer).
    from repro.reliability.atomic import atomic_write_json

    entries = [r.to_dict() for r in load_trajectory(results_dir, result.bench)]
    entries.append(result.to_dict())
    path = trajectory_path(results_dir, result.bench)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    atomic_write_json(
        path,
        {
            "schema_version": SCHEMA_VERSION,
            "bench": result.bench,
            "entries": entries,
        },
        indent=1,
        sort_keys=True,
    )
    return path


@dataclass
class MetricCheck:
    """One metric's verdict against its baseline."""

    metric: str
    status: str  # ok | regressed | improved | no-baseline | untracked
    current: float
    baseline: Optional[float] = None
    ratio: Optional[float] = None
    direction: Optional[str] = None
    tolerance: float = DEFAULT_TOLERANCE


@dataclass
class RegressionReport:
    """All metric verdicts for one fresh result."""

    bench: str
    checks: List[MetricCheck]
    baseline_count: int

    @property
    def regressions(self) -> List[MetricCheck]:
        return [check for check in self.checks if check.status == "regressed"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def to_text(self) -> str:
        lines = [
            f"{self.bench}: {self.baseline_count} comparable baseline run(s)"
        ]
        for check in self.checks:
            if check.baseline is None:
                detail = f"current {check.current:.6g} ({check.status})"
            else:
                detail = (
                    f"current {check.current:.6g} vs baseline "
                    f"{check.baseline:.6g} (x{check.ratio:.2f}, "
                    f"{check.direction} is better) -> {check.status}"
                )
            lines.append(f"  {check.metric:<32} {detail}")
        return "\n".join(lines)


def _comparable(result: BenchResult, history: List[BenchResult]) -> List[BenchResult]:
    """Baseline entries that may legitimately gate ``result``."""
    return [
        entry for entry in history
        if entry.mode == result.mode
        and entry.host.get("cpu_count") == result.host.get("cpu_count")
    ]


def check_regression(
    result: BenchResult,
    history: List[BenchResult],
    tolerances: Optional[Mapping[str, float]] = None,
    default_tolerance: float = DEFAULT_TOLERANCE,
) -> RegressionReport:
    """Judge ``result`` against the trajectory it extends.

    For each metric with an inferable direction, the baseline is the
    median over the last :data:`BASELINE_WINDOW` comparable entries
    (same mode and host ``cpu_count`` — cross-host numbers are separate
    series).  A metric fails when it is worse than ``tolerance`` times
    the baseline; no comparable history means ``no-baseline`` and the
    check passes, so a fresh host records its first point instead of
    failing forever.
    """
    tolerances = tolerances or {}
    baseline_entries = _comparable(result, history)[-BASELINE_WINDOW:]
    checks: List[MetricCheck] = []
    for metric, current in sorted(result.metrics.items()):
        direction = metric_direction(metric)
        tolerance = float(tolerances.get(metric, default_tolerance))
        if direction is None:
            checks.append(MetricCheck(
                metric=metric, status="untracked", current=current,
                tolerance=tolerance,
            ))
            continue
        samples = [
            entry.metrics[metric]
            for entry in baseline_entries
            if metric in entry.metrics
        ]
        if not samples:
            checks.append(MetricCheck(
                metric=metric, status="no-baseline", current=current,
                direction=direction, tolerance=tolerance,
            ))
            continue
        baseline = statistics.median(samples)
        if baseline == 0:
            ratio = 1.0 if current == 0 else float("inf")
        else:
            ratio = current / baseline
        if direction == "lower":
            status = "regressed" if ratio > tolerance else (
                "improved" if ratio < 1 / tolerance else "ok"
            )
        else:
            status = "regressed" if ratio < 1 / tolerance else (
                "improved" if ratio > tolerance else "ok"
            )
        if status == "regressed" and abs(current - baseline) < _noise_floor(metric):
            # Ratio blew past tolerance but the absolute move is below
            # the metric's noise floor — tiny smoke-mode timings jitter
            # by integer multiples without meaning anything.
            status = "ok"
        checks.append(MetricCheck(
            metric=metric, status=status, current=current,
            baseline=baseline, ratio=ratio, direction=direction,
            tolerance=tolerance,
        ))
    return RegressionReport(
        bench=result.bench, checks=checks, baseline_count=len(baseline_entries)
    )
