"""Offline analysis of exported trace files.

A JSONL trace (the CLI's ``--trace FILE``) records every finished span
of a run; this module turns that flat record stream back into trees and
answers the two questions a perf investigation starts with:

* **Where did the wall clock go?**  The *critical path* walks from the
  root span down through the longest child at each level — the chain of
  operations that bounded the run's latency.  Shortening anything off
  this path cannot make the run faster.
* **Which operation is worth optimizing?**  *Self time* is a span's
  duration minus its children's — the time spent in the operation
  itself rather than delegated downward.  Aggregating self time by
  operation name ranks hotspots without double-counting parents.

:func:`folded_stacks` emits the ``stack;path value`` folded format that
standard flamegraph renderers (e.g. Brendan Gregg's ``flamegraph.pl``
or speedscope) consume, valued in self-time microseconds.

Cross-process traces work unchanged: by the time worker spans land in
the file they are already re-parented into the coordinator's tree
(:mod:`repro.obs.propagate`), so analysis never needs to know which
process ran what — though ``attributes`` still say, for spans that
recorded it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigError

__all__ = [
    "TraceSpan",
    "OpStats",
    "TraceReport",
    "load_trace",
    "analyze_trace",
    "folded_stacks",
    "render_report",
]


@dataclass
class TraceSpan:
    """One span record parsed back from a trace file."""

    name: str
    span_id: int
    parent_id: Optional[int]
    trace_id: int
    start_unix: float
    duration: float
    status: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    cpu_time: Optional[float] = None
    alloc_peak: Optional[int] = None
    alloc_net: Optional[int] = None
    #: Duration minus children's durations; filled by :func:`analyze_trace`.
    self_time: float = 0.0
    children: List["TraceSpan"] = field(default_factory=list)


@dataclass
class OpStats:
    """Aggregate over every span sharing one operation name."""

    name: str
    count: int = 0
    total: float = 0.0
    self_total: float = 0.0
    max_duration: float = 0.0
    errors: int = 0
    cpu_total: float = 0.0
    alloc_peak_max: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TraceReport:
    """Everything :func:`analyze_trace` derives from one trace file."""

    spans: List[TraceSpan]
    roots: List[TraceSpan]
    #: Root-to-leaf chain of the longest spans, one entry per level.
    critical_path: List[TraceSpan]
    #: Per-operation aggregates, sorted by total self time descending.
    operations: List[OpStats]
    total_duration: float
    span_count: int
    trace_count: int
    profiled: bool


def load_trace(path: str) -> List[TraceSpan]:
    """Parse a JSONL trace file into span records.

    Raises :class:`~repro.errors.ConfigError` on unparsable lines or
    records missing required fields, naming the offending line — a
    trace that lies is worse than no trace.
    """
    spans: List[TraceSpan] = []
    try:
        handle = open(path)
    except OSError as exc:
        raise ConfigError(f"cannot read trace file {path}: {exc}") from exc
    with handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigError(
                    f"{path}:{line_no}: not valid JSON ({exc})"
                ) from exc
            try:
                spans.append(TraceSpan(
                    name=record["name"],
                    span_id=record["span_id"],
                    parent_id=record.get("parent_id"),
                    trace_id=record["trace_id"],
                    start_unix=record.get("start_unix", 0.0),
                    duration=record["duration"],
                    status=record.get("status", "ok"),
                    attributes=record.get("attributes", {}),
                    cpu_time=record.get("cpu_time"),
                    alloc_peak=record.get("alloc_peak"),
                    alloc_net=record.get("alloc_net"),
                ))
            except KeyError as exc:
                raise ConfigError(
                    f"{path}:{line_no}: span record missing field {exc}"
                ) from exc
    return spans


def analyze_trace(spans: List[TraceSpan]) -> TraceReport:
    """Rebuild span trees and derive critical path + per-op aggregates."""
    by_id = {span.span_id: span for span in spans}
    roots: List[TraceSpan] = []
    for span in spans:
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is None or parent is span:
            # Orphans (parent not in the file — e.g. a truncated trace)
            # analyze as roots rather than vanishing.
            roots.append(span)
        else:
            parent.children.append(span)

    for span in spans:
        child_time = sum(child.duration for child in span.children)
        span.self_time = max(0.0, span.duration - child_time)

    critical_path: List[TraceSpan] = []
    if roots:
        node = max(roots, key=lambda s: s.duration)
        seen = set()
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            critical_path.append(node)
            node = max(node.children, key=lambda s: s.duration, default=None)

    stats: Dict[str, OpStats] = {}
    for span in spans:
        op = stats.setdefault(span.name, OpStats(name=span.name))
        op.count += 1
        op.total += span.duration
        op.self_total += span.self_time
        op.max_duration = max(op.max_duration, span.duration)
        if span.status != "ok":
            op.errors += 1
        if span.cpu_time is not None:
            op.cpu_total += span.cpu_time
        if span.alloc_peak is not None:
            op.alloc_peak_max = max(op.alloc_peak_max, span.alloc_peak)

    operations = sorted(stats.values(), key=lambda o: o.self_total, reverse=True)
    return TraceReport(
        spans=spans,
        roots=roots,
        critical_path=critical_path,
        operations=operations,
        total_duration=sum(root.duration for root in roots),
        span_count=len(spans),
        trace_count=len({span.trace_id for span in spans}),
        profiled=any(span.cpu_time is not None for span in spans),
    )


def folded_stacks(report: TraceReport) -> List[str]:
    """Folded flamegraph lines: ``root;child;leaf <self_time_us>``.

    One line per distinct stack path, valued by aggregate self time in
    integer microseconds; zero-valued paths are dropped.  The output
    feeds ``flamegraph.pl`` / speedscope unmodified.
    """
    folded: Dict[str, int] = {}

    def walk(span: TraceSpan, prefix: str) -> None:
        path = f"{prefix};{span.name}" if prefix else span.name
        micros = int(round(span.self_time * 1e6))
        if micros > 0:
            folded[path] = folded.get(path, 0) + micros
        for child in span.children:
            walk(child, path)

    for root in report.roots:
        walk(root, "")
    return [f"{path} {value}" for path, value in sorted(folded.items())]


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.1f}ms"


def _fmt_bytes(count: int) -> str:
    if count >= 1 << 20:
        return f"{count / (1 << 20):.1f}MiB"
    if count >= 1 << 10:
        return f"{count / (1 << 10):.1f}KiB"
    return f"{count}B"


def render_report(report: TraceReport, top: int = 10) -> str:
    """Human-readable critical path + hotspot table."""
    lines: List[str] = []
    lines.append(
        f"trace: {report.span_count} span(s), {report.trace_count} trace(s), "
        f"total {_fmt_seconds(report.total_duration)}"
        + (", profiled" if report.profiled else "")
    )

    lines.append("")
    lines.append("critical path (longest child at each level):")
    for depth, span in enumerate(report.critical_path):
        marker = "  " * depth
        share = (
            span.duration / report.total_duration * 100
            if report.total_duration > 0 else 0.0
        )
        lines.append(
            f"  {marker}{span.name}  "
            f"{_fmt_seconds(span.duration)} ({share:.0f}%)"
            f"  self {_fmt_seconds(span.self_time)}"
        )

    lines.append("")
    profiled = report.profiled
    header = f"  {'operation':<34} {'count':>5} {'self':>9} {'total':>9} {'mean':>9} {'max':>9}"
    if profiled:
        header += f" {'cpu':>9} {'peak':>9}"
    lines.append(f"hotspots (top {top} by self time):")
    lines.append(header)
    for op in report.operations[:top]:
        row = (
            f"  {op.name:<34} {op.count:>5} {_fmt_seconds(op.self_total):>9} "
            f"{_fmt_seconds(op.total):>9} {_fmt_seconds(op.mean):>9} "
            f"{_fmt_seconds(op.max_duration):>9}"
        )
        if profiled:
            row += f" {_fmt_seconds(op.cpu_total):>9} {_fmt_bytes(op.alloc_peak_max):>9}"
        if op.errors:
            row += f"  [{op.errors} error(s)]"
        lines.append(row)
    return "\n".join(lines)
