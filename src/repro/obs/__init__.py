"""Observability for the model lake: spans, metrics, structured logs.

The paper treats a model lake as an *operated system* — ingestion,
indexing, search, audit — so this package records the operations
themselves, complementing the artifact provenance the lake already
keeps (cards, histories, citations).  Three signal types, one module
each:

**Spans** (:mod:`repro.obs.tracing`) answer "what happened, in what
order, for how long".  ``with trace("search.query", k=5):`` opens a
span; spans opened inside it (same thread) become children via
``parent_id``, forming a tree per request.  Durations come from the
monotonic clock.  Tracing is off — and near-free — until an exporter is
attached: an in-memory ring buffer for tests, or a JSONL file (the
CLI's global ``--trace FILE`` flag) for durable operation records.

**Metrics** (:mod:`repro.obs.metrics`) answer "how much, how often, how
slow" in aggregate.  A process-global :class:`~repro.obs.metrics.MetricsRegistry`
holds counters (weight-store cache hits), gauges (last training loss),
and fixed-bucket histograms (search latency p50/p90/p99).  Unlike
spans, metrics are always on; each instrument is individually locked so
thread pools can record concurrently.  ``repro metrics --dir LAKE``
prints the snapshot persisted by the last CLI run against that lake.

**Logs** (:mod:`repro.obs.logging`) answer "what did the system decide"
as discrete events: ``get_logger(name).info(event, **fields)`` emits
``key=value`` (or JSON) records through stdlib logging, configured
library-wide by a single :func:`~repro.obs.logging.configure` call.

:mod:`repro.obs.instrument` names every metric the library records and
hosts the ``@timed`` decorator the hot paths share.  ``repro.obs``
imports nothing from the rest of ``repro``, so any layer — storage,
index, search, training, inference — can instrument itself without
import cycles.
"""

from repro.obs.logging import StructuredLogger, configure, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.tracing import (
    InMemoryExporter,
    JSONLExporter,
    Span,
    SpanExporter,
    add_exporter,
    clear_exporters,
    current_span,
    profiling_enabled,
    remove_exporter,
    set_enabled,
    set_profiling,
    trace,
    traced,
    tracing_enabled,
)

__all__ = [
    # tracing
    "Span",
    "SpanExporter",
    "InMemoryExporter",
    "JSONLExporter",
    "trace",
    "traced",
    "current_span",
    "add_exporter",
    "remove_exporter",
    "clear_exporters",
    "set_enabled",
    "tracing_enabled",
    "set_profiling",
    "profiling_enabled",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    # logging
    "StructuredLogger",
    "configure",
    "get_logger",
]
