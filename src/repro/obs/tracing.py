"""Hierarchical spans over a thread-local stack, with pluggable exporters.

A span measures one operation on a monotonic clock
(:func:`time.perf_counter`).  Spans opened while another span is active
on the same thread become its children (``parent_id`` links), so a
search request traced end-to-end yields a tree: the CLI root span, the
engine query under it, the hybrid fusion under that.

Tracing is **off by default** and costs almost nothing while off: the
fast path of :class:`trace` is a single module-global flag check, so
instrumented hot paths stay within noise of uninstrumented code.  It
switches on automatically while at least one exporter is attached (or
explicitly via :func:`set_enabled`).

Exporters receive each span as it closes:

* :class:`InMemoryExporter` — fixed-capacity ring buffer, for tests and
  in-process inspection;
* :class:`JSONLExporter`   — one JSON object per line to a file, the
  durable operation record the paper's governance story asks for.

A failing exporter never takes down the traced operation: the failure
increments the ``obs.export_errors`` counter and (once per exporter
instance) emits a structured warning, so broken sinks are visible
without flooding the log.

**Span profiling** (:func:`set_profiling`) optionally augments each
span with CPU time (:func:`time.process_time` delta) and allocation
facts from :mod:`tracemalloc` (peak bytes live above the span's entry
watermark, and net bytes retained).  Peaks propagate to enclosing
spans, so a parent's ``alloc_peak`` is at least the largest peak of any
child.  Profiling is gated separately from tracing and costs nothing
while off; the disabled-tracing fast path is untouched either way.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
import tracemalloc
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs import logging as _obs_logging

__all__ = [
    "Span",
    "SpanExporter",
    "InMemoryExporter",
    "JSONLExporter",
    "trace",
    "traced",
    "current_span",
    "add_exporter",
    "remove_exporter",
    "clear_exporters",
    "set_enabled",
    "tracing_enabled",
    "set_profiling",
    "profiling_enabled",
    "export_span",
    "next_span_id",
    "OBS_EXPORT_ERRORS",
]

#: Counter bumped once per failed exporter delivery (defined here, not
#: in ``repro.obs.instrument``, because instrument imports this module).
OBS_EXPORT_ERRORS = "obs.export_errors"

_log = _obs_logging.get_logger("obs.tracing")

_span_ids = itertools.count(1)
_local = threading.local()
_exporter_lock = threading.Lock()
_exporters: List["SpanExporter"] = []
_force_enabled = False
#: Fast-path flag consulted by every ``trace``; derived, never set directly.
_enabled = False
#: Span profiling (CPU time + allocations); independent of ``_enabled``.
_profiling = False
#: Whether this module started tracemalloc (so it may also stop it).
_started_tracemalloc = False


def _recompute_enabled() -> None:
    global _enabled
    _enabled = _force_enabled or bool(_exporters)


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@dataclass
class Span:
    """One timed operation; children reference ``span_id`` via ``parent_id``."""

    name: str
    span_id: int
    parent_id: Optional[int]
    trace_id: int
    start: float
    start_unix: float
    end: float = 0.0
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: Profiling facts; ``None`` unless :func:`set_profiling` was on.
    cpu_time: Optional[float] = None
    alloc_peak: Optional[int] = None
    alloc_net: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        record = {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_unix": self.start_unix,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }
        # Profiling keys appear only when captured, keeping unprofiled
        # JSONL records byte-compatible with earlier versions.
        if self.cpu_time is not None:
            record["cpu_time"] = self.cpu_time
        if self.alloc_peak is not None:
            record["alloc_peak"] = self.alloc_peak
        if self.alloc_net is not None:
            record["alloc_net"] = self.alloc_net
        return record


class SpanExporter:
    """Receives each finished span; subclasses decide where it goes."""

    def export(self, span: Span) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class InMemoryExporter(SpanExporter):
    """Ring buffer of the most recent ``capacity`` finished spans."""

    def __init__(self, capacity: int = 4096):
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(span)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._buffer)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()


class JSONLExporter(SpanExporter):
    """Appends each finished span as one JSON line to ``path``."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a")

    def export(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JSONLExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def add_exporter(exporter: SpanExporter) -> SpanExporter:
    """Attach an exporter; tracing turns on while any is attached."""
    with _exporter_lock:
        if exporter not in _exporters:
            _exporters.append(exporter)
        _recompute_enabled()
    return exporter


def remove_exporter(exporter: SpanExporter) -> None:
    with _exporter_lock:
        if exporter in _exporters:
            _exporters.remove(exporter)
        _recompute_enabled()


def clear_exporters() -> None:
    with _exporter_lock:
        _exporters.clear()
        _recompute_enabled()


def set_enabled(enabled: bool) -> None:
    """Force tracing on (spans recorded even with no exporter) or back to
    automatic (on iff exporters are attached)."""
    global _force_enabled
    with _exporter_lock:
        _force_enabled = bool(enabled)
        _recompute_enabled()


def tracing_enabled() -> bool:
    return _enabled


def set_profiling(enabled: bool) -> None:
    """Toggle span profiling (CPU time + tracemalloc allocation facts).

    Turning it on starts :mod:`tracemalloc` if nothing else has;
    turning it off stops tracemalloc only if this module started it, so
    profiling composes with an application that traces allocations for
    its own reasons.
    """
    global _profiling, _started_tracemalloc
    enabled = bool(enabled)
    if enabled and not tracemalloc.is_tracing():
        tracemalloc.start()
        _started_tracemalloc = True
    if not enabled and _started_tracemalloc:
        tracemalloc.stop()
        _started_tracemalloc = False
    _profiling = enabled


def profiling_enabled() -> bool:
    return _profiling


def next_span_id() -> int:
    """A fresh span id from this process's counter.

    Used by cross-process adoption (:mod:`repro.obs.propagate`) to remap
    worker-side span ids — each pool worker counts from 1, so ids from
    different processes collide until reassigned here.
    """
    return next(_span_ids)


def _prof_stack() -> List[List[int]]:
    stack = getattr(_local, "prof_stack", None)
    if stack is None:
        stack = _local.prof_stack = []
    return stack


def export_span(span: Span) -> None:
    """Deliver a finished span to every attached exporter.

    A failing exporter must not take down the traced operation: the
    failure bumps :data:`OBS_EXPORT_ERRORS` and logs one structured
    warning per exporter instance (first failure only), then delivery
    continues to the remaining exporters.
    """
    with _exporter_lock:
        exporters = tuple(_exporters)
    for exporter in exporters:
        try:
            exporter.export(span)
        except Exception as exc:  # noqa: BLE001 - a broken sink must
            # not break traced code, but it must leave evidence.
            from repro.obs import metrics as _metrics

            _metrics.inc(OBS_EXPORT_ERRORS)
            if not getattr(exporter, "_export_error_logged", False):
                exporter._export_error_logged = True
                _log.warning(
                    "span.export_failed",
                    exporter=type(exporter).__name__,
                    span=span.name,
                    error=str(exc),
                )


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, if any."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


class _NullTrace:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_TRACE = _NullTrace()


class trace:
    """Context manager opening a span: ``with trace("search", k=5) as s:``.

    Yields the open :class:`Span`.  While tracing is off, construction
    returns a shared no-op object instead — no allocation, no clock
    reads, no locking — so instrumented hot paths cost one flag check.
    """

    __slots__ = ("_name", "_attrs", "_span", "_prof")

    def __new__(cls, name: str, /, **attributes: Any):
        if not _enabled:
            return _NULL_TRACE
        self = object.__new__(cls)
        self._name = name
        self._attrs = attributes
        self._span = None
        self._prof = None
        return self

    def __enter__(self) -> Optional[Span]:
        if not _enabled:
            return None
        stack = _stack()
        parent = stack[-1] if stack else None
        span_id = next(_span_ids)
        span = Span(
            name=self._name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            trace_id=parent.trace_id if parent else span_id,
            start=time.perf_counter(),
            start_unix=time.time(),
            attributes=dict(self._attrs),
        )
        stack.append(span)
        self._span = span
        if _profiling and tracemalloc.is_tracing():
            current, _ = tracemalloc.get_traced_memory()
            # [entry watermark, absolute peak seen so far] — children
            # raise the second cell so parents inherit their peaks.
            _prof_stack().append([current, current])
            tracemalloc.reset_peak()
            self._prof = time.process_time()
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if span is None:
            return False
        span.end = time.perf_counter()
        if self._prof is not None and tracemalloc.is_tracing():
            span.cpu_time = time.process_time() - self._prof
            current, seg_peak = tracemalloc.get_traced_memory()
            prof_stack = _prof_stack()
            if prof_stack:
                entry = prof_stack.pop()
                peak_abs = max(entry[1], seg_peak)
                span.alloc_peak = max(0, peak_abs - entry[0])
                span.alloc_net = current - entry[0]
                if prof_stack:
                    parent_entry = prof_stack[-1]
                    parent_entry[1] = max(parent_entry[1], peak_abs)
                # Start a fresh segment for whatever the parent (or the
                # next sibling span) allocates after this span closes.
                tracemalloc.reset_peak()
        if exc_type is not None:
            span.status = f"error:{exc_type.__name__}"
        stack = _stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(span)
        export_span(span)
        self._span = None
        return False


def traced(name_or_fn=None, **attributes: Any):
    """Decorator form of :func:`trace`.

    Usable bare (``@traced``) or configured
    (``@traced("search.query", backend="flat")``).  The span name
    defaults to the function's qualified name.
    """
    import functools

    def decorate(fn, span_name: Optional[str] = None):
        label = span_name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with trace(label, **attributes):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name_or_fn):
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)
