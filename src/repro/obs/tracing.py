"""Hierarchical spans over a thread-local stack, with pluggable exporters.

A span measures one operation on a monotonic clock
(:func:`time.perf_counter`).  Spans opened while another span is active
on the same thread become its children (``parent_id`` links), so a
search request traced end-to-end yields a tree: the CLI root span, the
engine query under it, the hybrid fusion under that.

Tracing is **off by default** and costs almost nothing while off: the
fast path of :class:`trace` is a single module-global flag check, so
instrumented hot paths stay within noise of uninstrumented code.  It
switches on automatically while at least one exporter is attached (or
explicitly via :func:`set_enabled`).

Exporters receive each span as it closes:

* :class:`InMemoryExporter` — fixed-capacity ring buffer, for tests and
  in-process inspection;
* :class:`JSONLExporter`   — one JSON object per line to a file, the
  durable operation record the paper's governance story asks for.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "SpanExporter",
    "InMemoryExporter",
    "JSONLExporter",
    "trace",
    "traced",
    "current_span",
    "add_exporter",
    "remove_exporter",
    "clear_exporters",
    "set_enabled",
    "tracing_enabled",
]

_span_ids = itertools.count(1)
_local = threading.local()
_exporter_lock = threading.Lock()
_exporters: List["SpanExporter"] = []
_force_enabled = False
#: Fast-path flag consulted by every ``trace``; derived, never set directly.
_enabled = False


def _recompute_enabled() -> None:
    global _enabled
    _enabled = _force_enabled or bool(_exporters)


def _stack() -> List["Span"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@dataclass
class Span:
    """One timed operation; children reference ``span_id`` via ``parent_id``."""

    name: str
    span_id: int
    parent_id: Optional[int]
    trace_id: int
    start: float
    start_unix: float
    end: float = 0.0
    status: str = "ok"
    attributes: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_unix": self.start_unix,
            "duration": self.duration,
            "status": self.status,
            "attributes": dict(self.attributes),
        }


class SpanExporter:
    """Receives each finished span; subclasses decide where it goes."""

    def export(self, span: Span) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class InMemoryExporter(SpanExporter):
    """Ring buffer of the most recent ``capacity`` finished spans."""

    def __init__(self, capacity: int = 4096):
        self._buffer: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._buffer.append(span)

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._buffer)

    def clear(self) -> None:
        with self._lock:
            self._buffer.clear()


class JSONLExporter(SpanExporter):
    """Appends each finished span as one JSON line to ``path``."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._handle = open(path, "a")

    def export(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JSONLExporter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def add_exporter(exporter: SpanExporter) -> SpanExporter:
    """Attach an exporter; tracing turns on while any is attached."""
    with _exporter_lock:
        if exporter not in _exporters:
            _exporters.append(exporter)
        _recompute_enabled()
    return exporter


def remove_exporter(exporter: SpanExporter) -> None:
    with _exporter_lock:
        if exporter in _exporters:
            _exporters.remove(exporter)
        _recompute_enabled()


def clear_exporters() -> None:
    with _exporter_lock:
        _exporters.clear()
        _recompute_enabled()


def set_enabled(enabled: bool) -> None:
    """Force tracing on (spans recorded even with no exporter) or back to
    automatic (on iff exporters are attached)."""
    global _force_enabled
    with _exporter_lock:
        _force_enabled = bool(enabled)
        _recompute_enabled()


def tracing_enabled() -> bool:
    return _enabled


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, if any."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


class _NullTrace:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_TRACE = _NullTrace()


class trace:
    """Context manager opening a span: ``with trace("search", k=5) as s:``.

    Yields the open :class:`Span`.  While tracing is off, construction
    returns a shared no-op object instead — no allocation, no clock
    reads, no locking — so instrumented hot paths cost one flag check.
    """

    __slots__ = ("_name", "_attrs", "_span")

    def __new__(cls, name: str, /, **attributes: Any):
        if not _enabled:
            return _NULL_TRACE
        self = object.__new__(cls)
        self._name = name
        self._attrs = attributes
        self._span = None
        return self

    def __enter__(self) -> Optional[Span]:
        if not _enabled:
            return None
        stack = _stack()
        parent = stack[-1] if stack else None
        span_id = next(_span_ids)
        span = Span(
            name=self._name,
            span_id=span_id,
            parent_id=parent.span_id if parent else None,
            trace_id=parent.trace_id if parent else span_id,
            start=time.perf_counter(),
            start_unix=time.time(),
            attributes=dict(self._attrs),
        )
        stack.append(span)
        self._span = span
        return span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self._span
        if span is None:
            return False
        span.end = time.perf_counter()
        if exc_type is not None:
            span.status = f"error:{exc_type.__name__}"
        stack = _stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(span)
        with _exporter_lock:
            exporters = tuple(_exporters)
        for exporter in exporters:
            try:
                exporter.export(span)
            except Exception:  # noqa: BLE001 - a broken sink must not
                pass  # take down the traced operation
        self._span = None
        return False


def traced(name_or_fn=None, **attributes: Any):
    """Decorator form of :func:`trace`.

    Usable bare (``@traced``) or configured
    (``@traced("search.query", backend="flat")``).  The span name
    defaults to the function's qualified name.
    """
    import functools

    def decorate(fn, span_name: Optional[str] = None):
        label = span_name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with trace(label, **attributes):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name_or_fn):
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)
