"""Process-global metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` per process (:func:`get_registry`) holds
every instrument by name.  Instruments are created on first use, each
with its own lock, so concurrent increments from a thread pool never
lose updates.  ``snapshot()`` returns a plain ``dict`` suitable for
``json.dumps`` — the CLI persists it next to a lake so counters survive
the process (``repro metrics --dir``).

Histogram percentiles (p50/p90/p99) are estimated from fixed bucket
counts with linear interpolation inside the bucket: memory stays O(num
buckets) no matter how many observations arrive, and the estimate is
exact to within one bucket's width.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "inc",
    "set_gauge",
    "observe",
]

#: Geometric bucket bounds covering 1 microsecond .. ~100 seconds, the
#: range of every duration this library records.
DEFAULT_BOUNDS: Tuple[float, ...] = tuple(
    1e-6 * (10.0 ** (i / 4.0)) for i in range(33)
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-written value (e.g. current loss, store size in bytes)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket distribution with percentile estimation.

    ``bounds`` are the inclusive upper edges of each bucket; one
    overflow bucket catches everything beyond the last edge.
    """

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        edges = tuple(bounds if bounds is not None else DEFAULT_BOUNDS)
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram bounds must be a sorted, non-empty sequence")
        self._bounds = edges
        self._counts = [0] * (len(edges) + 1)
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self._bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> Optional[float]:
        """Estimated q-quantile (q in [0, 1]); ``None`` when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return None
            counts = list(self._counts)
            lo, hi = self._min, self._max
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                lower = self._bounds[index - 1] if index > 0 else lo
                upper = (
                    self._bounds[index] if index < len(self._bounds) else hi
                )
                lower = max(lower, lo)
                upper = min(upper, hi)
                if upper <= lower:
                    return float(upper)
                within = (target - (cumulative - bucket_count)) / bucket_count
                return float(lower + (upper - lower) * within)
        return float(hi)

    def summary(self) -> Dict[str, Optional[float]]:
        with self._lock:
            count, total = self._count, self._sum
            lo = self._min if count else None
            hi = self._max if count else None
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else None,
            "min": lo,
            "max": hi,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Create-or-get instruments by name; snapshot and reset atomically.

    Names are dotted paths (``lake.weight_store.cache_hits``); the
    registry imposes no schema beyond one namespace per instrument kind.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access ------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter())
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge())
        return gauge

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram(bounds))
        return histogram

    # -- convenience recording --------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- lifecycle ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view of every instrument (JSON-serializable)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {name: g.value for name, g in sorted(gauges.items())},
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every instrument *in place*.

        Instruments stay registered (hot paths may hold direct
        references to them), but all recorded values are cleared —
        fresh-process state with warm caches.
        """
        with self._lock:
            instruments = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for instrument in instruments:
            instrument.reset()


_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every hot path records into."""
    return _registry


def inc(name: str, amount: int = 1) -> None:
    _registry.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    _registry.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    _registry.observe(name, value)
