"""Cross-process trace propagation for pool workers.

In-process tracing links spans through a thread-local stack, which a
:class:`~concurrent.futures.ProcessPoolExecutor` worker cannot see: a
traced ``repro generate --workers N`` run would record the parent's
wave span and silently drop every per-model train span executed in a
worker.  This module closes that gap with an explicit handoff:

1. the coordinator captures a :class:`TraceContext` (trace id + the
   span the worker's spans should hang under) from its current span;
2. the worker executes the task under :func:`run_with_capture`, which
   buffers every span the task opens in a :class:`SpanBuffer` and
   returns them *with* the result — spans ride the existing result
   pickle, no side channel;
3. the coordinator calls :func:`adopt_spans`, which re-parents the
   buffered spans into its own trace and hands them to its exporters.

Adoption must remap span ids: each worker process counts span ids from
1, so ids from different workers collide until replaced with fresh ids
from the coordinator's counter.  Parent links are rewritten through the
same mapping; worker-root spans (no parent in the buffer) attach to the
context's ``parent_span_id``.

:func:`reset_worker_tracing` handles the fork hazard: under the default
``fork`` start method on Linux, workers inherit the parent's attached
exporters — including a :class:`~repro.obs.tracing.JSONLExporter`'s
open file handle — and would write duplicate, unparented spans straight
into the parent's trace file.  Pool initializers call it first so each
worker starts with a clean slate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.tracing import (
    Span,
    SpanExporter,
    add_exporter,
    clear_exporters,
    current_span,
    export_span,
    next_span_id,
    profiling_enabled,
    remove_exporter,
    set_enabled,
    set_profiling,
)

__all__ = [
    "TraceContext",
    "SpanBuffer",
    "capture_context",
    "run_with_capture",
    "adopt_spans",
    "reset_worker_tracing",
]


@dataclass(frozen=True)
class TraceContext:
    """What a worker needs to contribute spans to the caller's trace."""

    trace_id: int
    parent_span_id: int
    profiling: bool = False


def capture_context() -> Optional[TraceContext]:
    """Snapshot the current span as a context to ship to workers.

    Returns ``None`` when tracing is off or no span is open — workers
    then run untraced, which keeps the disabled path free.
    """
    span = current_span()
    if span is None:
        return None
    return TraceContext(
        trace_id=span.trace_id,
        parent_span_id=span.span_id,
        profiling=profiling_enabled(),
    )


class SpanBuffer(SpanExporter):
    """Collects finished spans in memory, in export (child-first) order."""

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._lock = threading.Lock()

    def export(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def drain(self) -> List[Span]:
        with self._lock:
            spans, self._spans = self._spans, []
        return spans


def run_with_capture(
    context: Optional[TraceContext],
    fn: Callable[[Any], Any],
    arg: Any,
) -> Tuple[Any, List[Span]]:
    """Worker-side: run ``fn(arg)``, buffering the spans it opens.

    With no context the call passes straight through (no buffer, no
    enablement) and returns an empty span list.  Attaching the buffer
    auto-enables tracing for the duration; the context's ``profiling``
    flag extends the coordinator's ``--profile`` choice into the worker.
    """
    if context is None:
        return fn(arg), []
    buffer = SpanBuffer()
    add_exporter(buffer)
    if context.profiling:
        set_profiling(True)
    try:
        result = fn(arg)
    finally:
        if context.profiling:
            set_profiling(False)
        remove_exporter(buffer)
    return result, buffer.drain()


def adopt_spans(context: TraceContext, spans: List[Span]) -> List[Span]:
    """Coordinator-side: graft worker spans into the current trace.

    Every span gets a fresh id from this process's counter (worker ids
    collide across processes), parent links are rewritten through the
    old→new mapping, and worker-root spans attach to the context's
    ``parent_span_id``.  Adopted spans are delivered to the attached
    exporters exactly once, preserving the buffer's child-first order.
    """
    id_map = {span.span_id: next_span_id() for span in spans}
    adopted: List[Span] = []
    for span in spans:
        if span.parent_id is not None and span.parent_id in id_map:
            parent_id = id_map[span.parent_id]
        else:
            parent_id = context.parent_span_id
        grafted = replace(
            span,
            span_id=id_map[span.span_id],
            parent_id=parent_id,
            trace_id=context.trace_id,
            attributes=dict(span.attributes),
        )
        export_span(grafted)
        adopted.append(grafted)
    return adopted


def reset_worker_tracing() -> None:
    """Drop tracing state inherited across ``fork`` into a pool worker.

    Clears exporters (a forked JSONL exporter shares the parent's file
    handle — writing through it would corrupt the parent's trace with
    duplicate, unparented spans), returns enablement to automatic, and
    switches profiling off.  :func:`run_with_capture` then re-enables
    exactly what the shipped :class:`TraceContext` asks for.
    """
    clear_exporters()
    set_enabled(False)
    set_profiling(False)
