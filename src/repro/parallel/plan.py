"""Deterministic wave planning over task dependency DAGs.

Lake generation (and any other fan-out workload) is expressed as a set
of tasks with explicit dependencies.  :func:`topological_waves` levels
that DAG: wave ``k`` holds every task whose longest dependency chain has
length ``k``, so all tasks within one wave are mutually independent and
can execute concurrently while waves themselves run in order.

The leveling is deterministic: within a wave, tasks keep the order in
which they were declared, which is what lets the coordinator register
results in a canonical order regardless of worker count.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence

from repro.errors import ConfigError


def topological_waves(
    dependencies: Mapping[Hashable, Sequence[Hashable]],
) -> List[List[Hashable]]:
    """Level a dependency DAG into executable waves.

    ``dependencies`` maps each task key to the task keys it depends on.
    Every dependency must itself appear as a key.  Returns a list of
    waves; concatenated, they contain each task exactly once, and every
    task appears in a strictly later wave than all of its dependencies.

    Raises :class:`ConfigError` on unknown dependencies or cycles.
    """
    order = list(dependencies)
    known = set(order)
    for task, parents in dependencies.items():
        unknown = [p for p in parents if p not in known]
        if unknown:
            raise ConfigError(
                f"task {task!r} depends on undeclared tasks {unknown!r}"
            )

    level: Dict[Hashable, int] = {}

    def resolve(task: Hashable, stack: tuple) -> int:
        if task in level:
            return level[task]
        if task in stack:
            raise ConfigError(f"dependency cycle involving task {task!r}")
        parents = dependencies[task]
        depth = (
            0
            if not parents
            else 1 + max(resolve(p, stack + (task,)) for p in parents)
        )
        level[task] = depth
        return depth

    for task in order:
        resolve(task, ())

    waves: List[List[Hashable]] = [[] for _ in range(max(level.values(), default=-1) + 1)]
    for task in order:  # declaration order within each wave
        waves[level[task]].append(task)
    return waves
