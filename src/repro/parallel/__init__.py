"""Parallel-execution subsystem: deterministic wave scheduling.

Hub-scale lakes (millions of models, per the paper's framing) cannot be
built or indexed serially.  This package provides the two primitives the
rest of the library parallelizes with:

* :func:`repro.parallel.plan.topological_waves` — level a task DAG into
  waves of mutually independent tasks;
* :class:`repro.parallel.executor.WaveExecutor` — run each wave over a
  process pool (or inline at ``workers=1``) with results returned in
  deterministic task order.

Determinism is the design center: given per-task seeds, a workload run
with ``workers=N`` produces bit-identical artifacts to ``workers=1``.
"""

from repro.parallel.executor import WaveExecutor
from repro.parallel.plan import topological_waves

__all__ = ["WaveExecutor", "topological_waves"]
