"""Wave-scheduled task execution over a process pool.

:class:`WaveExecutor` runs batches ("waves") of independent tasks and
returns their results in submission order, which is the property the
lake generator's determinism guarantee rests on: results are consumed
in task order no matter which worker finished first.

``workers <= 1`` executes inline in the calling process — no pool, no
pickling — so the sequential path stays the zero-overhead baseline and
the parallel path is bit-identical to it by construction.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    PARALLEL_TASKS,
    PARALLEL_WAVE_SECONDS,
    PARALLEL_WAVES,
    PARALLEL_WORKERS,
)
from repro.obs.logging import get_logger
from repro.obs.tracing import trace

_log = get_logger("parallel.executor")


class WaveExecutor:
    """Executes waves of independent tasks, optionally in worker processes.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``<= 1`` runs tasks inline; ``> 1``
        lazily spins up a :class:`ProcessPoolExecutor` reused across
        waves.
    initializer / initargs:
        Per-worker setup (e.g. installing shared read-only datasets).
        In inline mode the initializer runs once in the calling process
        on first use, so both modes see identical worker state.
    """

    def __init__(
        self,
        workers: int = 1,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ):
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._initializer = initializer
        self._initargs = initargs
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inline_ready = False
        obs_metrics.set_gauge(PARALLEL_WORKERS, workers)

    # ------------------------------------------------------------------
    def __enter__(self) -> "WaveExecutor":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.shutdown()
        return False

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _ensure_backend(self) -> None:
        if self.workers <= 1:
            if not self._inline_ready:
                if self._initializer is not None:
                    self._initializer(*self._initargs)
                self._inline_ready = True
        elif self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )

    def run_wave(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        label: str = "wave",
    ) -> List[Any]:
        """Run ``fn`` over ``tasks``; results come back in task order.

        A failing task propagates its exception after the wave's other
        futures are awaited, so worker processes are never abandoned
        mid-flight.
        """
        if not tasks:
            return []
        self._ensure_backend()
        start = time.perf_counter()
        with trace("parallel.wave", label=label, tasks=len(tasks), workers=self.workers):
            if self._pool is None:
                results = [fn(task) for task in tasks]
            else:
                futures = [self._pool.submit(fn, task) for task in tasks]
                results = []
                error: Optional[BaseException] = None
                for future in futures:
                    try:
                        results.append(future.result())
                    except BaseException as exc:  # keep draining the wave
                        if error is None:
                            error = exc
                if error is not None:
                    raise error
        elapsed = time.perf_counter() - start
        obs_metrics.inc(PARALLEL_WAVES)
        obs_metrics.inc(PARALLEL_TASKS, len(tasks))
        obs_metrics.observe(PARALLEL_WAVE_SECONDS, elapsed)
        _log.debug(
            "wave.done", label=label, tasks=len(tasks),
            workers=self.workers, seconds=round(elapsed, 4),
        )
        return results
