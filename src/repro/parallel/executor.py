"""Wave-scheduled task execution over a process pool.

:class:`WaveExecutor` runs batches ("waves") of independent tasks and
returns their results in submission order, which is the property the
lake generator's determinism guarantee rests on: results are consumed
in task order no matter which worker finished first.

``workers <= 1`` executes inline in the calling process — no pool, no
pickling — so the sequential path stays the zero-overhead baseline and
the parallel path is bit-identical to it by construction.

Crashed workers are survivable: when the pool breaks (a worker
segfaults, is OOM-killed, or a fault plan injects
``BrokenProcessPool``), the executor disposes the dead pool, rebuilds
it, and re-runs *only* the tasks that never produced results — slotting
their results back at their submission indices, so determinism is
unaffected.  After ``max_retries`` rebuilds the failure surfaces as a
structured :class:`~repro.errors.WorkerCrashError` naming the wave and
the lost task indices, and the executor is left with no dangling dead
pool (the next wave would start a fresh one).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, WorkerCrashError
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    PARALLEL_TASKS,
    PARALLEL_WAVE_SECONDS,
    PARALLEL_WAVES,
    PARALLEL_WORKERS,
    RELIABILITY_POOL_REBUILDS,
    RELIABILITY_TASK_RETRIES,
)
from repro.obs.logging import get_logger
from repro.obs.propagate import (
    TraceContext,
    adopt_spans,
    capture_context,
    reset_worker_tracing,
    run_with_capture,
)
from repro.obs.tracing import trace
from repro.reliability import faults

_log = get_logger("parallel.executor")


def _pool_worker_init(initializer: Optional[Callable[..., None]], initargs: Tuple[Any, ...]) -> None:
    """Per-worker bootstrap: clean inherited tracing, then user setup.

    Under the ``fork`` start method workers inherit the coordinator's
    attached exporters (shared file handles included); tracing state
    must be reset *before* anything in the worker can open a span.
    """
    reset_worker_tracing()
    if initializer is not None:
        initializer(*initargs)


def _run_captured(payload: Tuple[Optional[TraceContext], Callable[[Any], Any], Any]):
    """Pool entry point wrapping each task with worker-side span capture."""
    context, fn, task = payload
    return run_with_capture(context, fn, task)


class WaveExecutor:
    """Executes waves of independent tasks, optionally in worker processes.

    Parameters
    ----------
    workers:
        Degree of parallelism.  ``<= 1`` runs tasks inline; ``> 1``
        lazily spins up a :class:`ProcessPoolExecutor` reused across
        waves.
    initializer / initargs:
        Per-worker setup (e.g. installing shared read-only datasets).
        In inline mode the initializer runs once in the calling process
        on first use, so both modes see identical worker state.
    max_retries:
        How many times a wave may rebuild a crashed pool and re-run its
        lost tasks before surfacing :class:`WorkerCrashError`.
    """

    def __init__(
        self,
        workers: int = 1,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        max_retries: int = 2,
    ):
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers
        self.max_retries = max_retries
        self._initializer = initializer
        self._initargs = initargs
        self._pool: Optional[ProcessPoolExecutor] = None
        self._inline_ready = False
        obs_metrics.set_gauge(PARALLEL_WORKERS, workers)

    # ------------------------------------------------------------------
    def __enter__(self) -> "WaveExecutor":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.shutdown()
        return False

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _ensure_backend(self) -> None:
        if self.workers <= 1:
            if not self._inline_ready:
                if self._initializer is not None:
                    self._initializer(*self._initargs)
                self._inline_ready = True
        elif self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_worker_init,
                initargs=(self._initializer, self._initargs),
            )

    def _dispose_pool(self) -> None:
        """Tear down a (possibly broken) pool so the next run starts fresh."""
        if self._pool is not None:
            # A broken pool's workers are already dead; don't wait on them.
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _run_indices(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        indices: Sequence[int],
        results: List[Any],
        label: str,
        context: Optional[TraceContext],
    ) -> Tuple[List[int], Optional[BaseException]]:
        """Run ``tasks[i]`` for each index, filling ``results`` in place.

        Returns ``(lost, error)``: indices that produced no result
        because the pool broke, and the first ordinary task exception
        (raised by the caller after the wave drains, preserving the
        pre-existing contract that worker processes are never abandoned
        mid-flight).
        """
        if faults.trigger(faults.POOL_WAVE, label) is not None:
            # Scripted worker crash: behave exactly as if the pool died
            # before any of these tasks completed.
            return list(indices), None
        if self._pool is None:
            # Inline mode: spans flow through the thread-local stack
            # directly — no capture, no adoption, identical trace shape.
            for index in indices:
                results[index] = fn(tasks[index])
            return [], None
        futures = {
            index: self._pool.submit(_run_captured, (context, fn, tasks[index]))
            for index in indices
        }
        lost: List[int] = []
        error: Optional[BaseException] = None
        for index in indices:
            try:
                result, worker_spans = futures[index].result()
            except BrokenProcessPool:
                lost.append(index)
            except BaseException as exc:  # keep draining the wave
                if error is None:
                    error = exc
            else:
                results[index] = result
                if context is not None and worker_spans:
                    adopt_spans(context, worker_spans)
        return lost, error

    def run_wave(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        label: str = "wave",
    ) -> List[Any]:
        """Run ``fn`` over ``tasks``; results come back in task order.

        A failing task propagates its exception after the wave's other
        futures are awaited.  A *crashed worker* (broken pool) instead
        triggers pool disposal and a retry of only the lost tasks, up to
        ``max_retries`` times.
        """
        if not tasks:
            return []
        start = time.perf_counter()
        with trace("parallel.wave", label=label, tasks=len(tasks), workers=self.workers):
            # Ship the wave span as the parent for worker-side spans, so
            # a pooled run traces as one tree instead of a parent stub.
            context = capture_context()
            results: List[Any] = [None] * len(tasks)
            pending = list(range(len(tasks)))
            attempt = 0
            while True:
                self._ensure_backend()
                pending, error = self._run_indices(
                    fn, tasks, pending, results, label, context
                )
                if error is not None:
                    # The pool may *also* be broken (the same crash that
                    # lost tasks poisons it); never leave it dangling.
                    if pending:
                        self._dispose_pool()
                    raise error
                if not pending:
                    break
                self._dispose_pool()
                attempt += 1
                if attempt > self.max_retries:
                    raise WorkerCrashError(
                        label=label, task_indices=pending, attempts=attempt
                    )
                obs_metrics.inc(RELIABILITY_POOL_REBUILDS)
                obs_metrics.inc(RELIABILITY_TASK_RETRIES, len(pending))
                _log.warning(
                    "wave.pool_crashed",
                    label=label,
                    lost_tasks=len(pending),
                    attempt=attempt,
                    max_retries=self.max_retries,
                )
        elapsed = time.perf_counter() - start
        obs_metrics.inc(PARALLEL_WAVES)
        obs_metrics.inc(PARALLEL_TASKS, len(tasks))
        obs_metrics.observe(PARALLEL_WAVE_SECONDS, elapsed)
        _log.debug(
            "wave.done", label=label, tasks=len(tasks),
            workers=self.workers, seconds=round(elapsed, 4),
        )
        return results
