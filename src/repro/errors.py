"""Typed exceptions shared across the model-lake library.

Every subsystem raises one of these (or a subclass) so callers can catch
library failures without also catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LakeError(ReproError):
    """A model-lake storage or registry operation failed."""


class ModelNotFoundError(LakeError, KeyError):
    """A model id was not present in the lake."""

    def __init__(self, model_id: str):
        super().__init__(f"model not found in lake: {model_id!r}")
        self.model_id = model_id


class AmbiguousModelNameError(LakeError):
    """A model name matched several lake records; callers must pick an id."""

    def __init__(self, name: str, candidate_ids):
        self.name = name
        self.candidate_ids = list(candidate_ids)
        listing = ", ".join(self.candidate_ids)
        super().__init__(
            f"model name {name!r} is ambiguous ({len(self.candidate_ids)} "
            f"matches); use one of the ids: {listing}"
        )


class DatasetNotFoundError(LakeError, KeyError):
    """A dataset id was not present in the dataset registry."""

    def __init__(self, dataset_id: str):
        super().__init__(f"dataset not found in registry: {dataset_id!r}")
        self.dataset_id = dataset_id


class DuplicateIdError(LakeError):
    """An id was registered twice in a store that requires uniqueness."""


class LakeIntegrityError(LakeError):
    """An on-disk artifact failed verification against its content digest.

    Raised wherever the lake re-checks bytes it reads back from disk
    (``WeightStore.get``, ``repro fsck``): a blob that is truncated,
    bit-rotted, or replaced no longer matches the digest that names it.
    """

    def __init__(self, path: str, expected: str, actual: str, kind: str = "blob"):
        self.path = path
        self.expected = expected
        self.actual = actual
        self.kind = kind
        super().__init__(
            f"integrity check failed for {kind} at {path!r}: "
            f"expected digest {expected!r}, recomputed {actual!r} "
            f"(artifact is truncated or corrupt)"
        )


class ReliabilityError(ReproError):
    """A crash-safety mechanism (retry, checkpoint, fsck) failed."""


class WorkerCrashError(ReliabilityError):
    """A wave lost tasks to crashed worker processes, retries exhausted.

    Carries the wave label and the submission-order indices of the tasks
    that never produced results, so callers can report or re-plan them.
    """

    def __init__(self, label: str, task_indices, attempts: int):
        self.label = label
        self.task_indices = list(task_indices)
        self.attempts = attempts
        super().__init__(
            f"wave {label!r} lost {len(self.task_indices)} task(s) to "
            f"crashed workers after {attempts} attempt(s); "
            f"failed task indices: {self.task_indices}"
        )


class CheckpointError(ReliabilityError):
    """A generation checkpoint could not be read or written."""


class HistoryUnavailableError(LakeError):
    """The model's training history (D, A) is hidden or was never recorded.

    Model-lake tasks are expected to catch this and fall back to intrinsic
    or extrinsic analysis, mirroring the paper's three-viewpoint framing.
    """


class IntrinsicsUnavailableError(LakeError):
    """The model's weights are not accessible (API-only model)."""


class ShapeError(ReproError, ValueError):
    """An array had an incompatible shape for the requested operation."""


class ConfigError(ReproError, ValueError):
    """A component received an invalid configuration value."""


class QueryError(ReproError, ValueError):
    """A declarative lake query could not be parsed or planned."""


class IndexError_(ReproError):
    """An index build or search failed (name avoids shadowing builtin)."""


class TransformError(ReproError):
    """A model transformation could not be applied."""


class IncompatibleModelsError(TransformError):
    """Two models could not be combined (architectures do not align)."""
