"""Long-lived lake-search service (the traffic-facing app layer).

The paper's §6 applications — declarative model search, citation,
audit — are all *query* workloads, but a CLI one-shot pays full engine
construction per query and never exercises the lake under concurrency.
This package turns one lake snapshot into a small HTTP/JSON service:

* :class:`~repro.serve.snapshot.LakeSnapshot` — an explicitly closeable
  (lake, engine) pair opened through the memmap read path and the warm
  embedding cache;
* :class:`~repro.serve.batching.MicroBatcher` — coalesces concurrent
  queries inside a bounded latency window into one batched index pass;
* :class:`~repro.serve.server.LakeServer` — stdlib-asyncio HTTP server
  with per-endpoint latency histograms, per-request spans, and graceful
  drain on shutdown.

Everything here sits in the *app* layer of ``.repro-arch.toml``:
compute layers must never import ``repro.serve``.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.server import LakeServer, ServeConfig, run_server
from repro.serve.snapshot import LakeSnapshot

__all__ = [
    "LakeSnapshot",
    "MicroBatcher",
    "LakeServer",
    "ServeConfig",
    "run_server",
]
