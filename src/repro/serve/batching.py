"""Micro-batching: coalesce concurrent queries into one index pass.

Under concurrency, N in-flight searches arriving within a few
milliseconds of each other are one matrix-matrix product away from
being a single unit of work — the flat index scores a whole batch with
one BLAS call (:meth:`~repro.index.flat.FlatIndex.query_batch`).  The
:class:`MicroBatcher` trades a bounded latency window (default 2 ms)
for that coalescing: the first query in a quiet period opens the
window, every query arriving inside it joins the batch, and the batch
dispatches when the window closes or the batch fills, whichever comes
first.

Identical in-flight triples ``(query, k, method)`` are deduplicated —
they share one future and one slot in the dispatched batch, so a burst
of clients asking the same question costs one ranking.  Results are
read-only to callers by convention (hit lists are shared between
deduplicated waiters).

``window=0`` disables coalescing entirely: every query dispatches
alone, immediately.  That is the per-request baseline the serve
benchmark A/B-tests against, through exactly the same code path.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    SERVE_BATCHES,
    SERVE_BATCH_SIZE,
    SERVE_QUEUE_DEPTH,
)
from repro.obs.logging import get_logger

_log = get_logger("serve.batching")

#: One search request: (query_text, k, method).
QueryKey = Tuple[str, int, str]
#: Scores a whole batch of triples; runs on an executor thread.
BatchRunner = Callable[[List[QueryKey]], List[Any]]


class MicroBatcher:
    """Window-bounded query coalescer over a blocking batch runner.

    Parameters
    ----------
    runner:
        Called with the batch's unique query triples on an executor
        thread; must return one result per triple, positionally.
    executor:
        Where ``runner`` runs (``None`` uses the loop's default).  The
        engine releases the GIL inside BLAS, so a small pool lets the
        scoring of one batch overlap the collection of the next.
    window:
        Seconds the first query of a batch waits for company.  ``0``
        dispatches every query alone (per-request baseline).
    max_batch:
        Dispatch immediately once this many unique triples are pending,
        without waiting out the window.
    """

    def __init__(
        self,
        runner: BatchRunner,
        executor=None,
        window: float = 0.002,
        max_batch: int = 64,
    ):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        self._runner = runner
        self._executor = executor
        self._window = float(window)
        self._max_batch = max(1, int(max_batch))
        self._pending: Dict[QueryKey, asyncio.Future] = {}
        self._timer: Optional[asyncio.TimerHandle] = None
        self._inflight: Set[asyncio.Task] = set()
        self._draining = False

    @property
    def window(self) -> float:
        return self._window

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    async def submit(self, query: str, k: int, method: str) -> Any:
        """Result for one query; may ride a shared batch dispatch."""
        if self._draining:
            raise RuntimeError("batcher is draining; no new queries")
        loop = asyncio.get_running_loop()
        if self._window == 0:
            # Per-request mode: same executor hop, no coalescing.
            obs_metrics.inc(SERVE_BATCHES)
            obs_metrics.observe(SERVE_BATCH_SIZE, 1)
            results = await loop.run_in_executor(
                self._executor, self._runner, [(query, k, method)]
            )
            return results[0]
        key: QueryKey = (query, int(k), method)
        future = self._pending.get(key)
        if future is None:
            future = loop.create_future()
            self._pending[key] = future
            obs_metrics.set_gauge(SERVE_QUEUE_DEPTH, len(self._pending))
            if len(self._pending) >= self._max_batch:
                self._flush()
            elif self._timer is None:
                self._timer = loop.call_later(self._window, self._flush)
        return await future

    def _flush(self) -> None:
        """Close the current window and dispatch whatever is pending."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, {}
        obs_metrics.set_gauge(SERVE_QUEUE_DEPTH, 0)
        task = asyncio.get_running_loop().create_task(self._dispatch(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _dispatch(self, batch: Dict[QueryKey, asyncio.Future]) -> None:
        keys = list(batch)
        obs_metrics.inc(SERVE_BATCHES)
        obs_metrics.observe(SERVE_BATCH_SIZE, len(keys))
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor, self._runner, keys
            )
        except Exception as exc:  # noqa: BLE001 - the waiters own the
            # failure: every future in the batch re-raises it.
            _log.warning("batch.failed", size=len(keys), error=str(exc))
            for future in batch.values():
                if not future.done():
                    future.set_exception(exc)
            return
        for key, result in zip(keys, results):
            future = batch[key]
            if not future.done():
                future.set_result(result)

    async def drain(self) -> None:
        """Reject new queries, dispatch the tail, await every batch."""
        self._draining = True
        self._flush()
        while self._inflight:
            await asyncio.gather(
                *list(self._inflight), return_exceptions=True
            )
