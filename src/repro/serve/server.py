"""Stdlib-asyncio HTTP/JSON server over one lake snapshot.

One process, one event loop, one :class:`LakeSnapshot`.  The loop
thread only parses requests and shuffles bytes; every search is scored
on a small thread pool through the micro-batcher, so the GIL-releasing
BLAS work of one batch overlaps the collection of the next.

Endpoints (all JSON):

* ``GET /search?q=...&k=10&method=hybrid`` — ranked models; ``POST``
  with a ``{"q": ..., "k": ..., "method": ...}`` body is equivalent.
* ``GET /model/<id>`` — one record's metadata view.
* ``GET /healthz`` — liveness (200 serving, 503 draining).
* ``GET /stats`` — lake facts plus a full metrics snapshot (the
  ``serve.*`` histograms carry per-endpoint p50/p99).

Shutdown is graceful: the listener closes first, requests already in
flight run to completion, the batcher drains its tail, and only then
does the snapshot release its memmap handles.  New requests racing the
drain get ``503`` with ``Retry-After``, never a connection reset.

Tracing: each request records a manually-constructed span parented to
the CLI root (the thread-local ``with trace()`` stack cannot span an
``await`` — interleaved tasks would mis-nest).  Engine work records its
own spans on the executor thread; the batch wrapper re-parents that
subtree into the same trace, so ``repro trace report`` shows one tree.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.core.search.engine import SEARCH_METHODS
from repro.errors import ConfigError, ModelNotFoundError, QueryError
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    SERVE_ERRORS,
    SERVE_HEALTH_LATENCY,
    SERVE_IN_FLIGHT,
    SERVE_MODEL_LATENCY,
    SERVE_REJECTED,
    SERVE_REQUESTS,
    SERVE_SEARCH_LATENCY,
    SERVE_STATS_LATENCY,
)
from repro.obs.logging import get_logger
from repro.obs.propagate import TraceContext, capture_context
from repro.obs.tracing import (
    Span,
    export_span,
    next_span_id,
    trace,
    tracing_enabled,
)
from repro.serve.batching import MicroBatcher
from repro.serve.snapshot import LakeSnapshot

_log = get_logger("serve.server")

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Endpoint -> latency histogram name (the SLO surface).
_LATENCY = {
    "search": SERVE_SEARCH_LATENCY,
    "model": SERVE_MODEL_LATENCY,
    "stats": SERVE_STATS_LATENCY,
    "healthz": SERVE_HEALTH_LATENCY,
}

_MAX_BODY = 1 << 20  # requests are tiny; anything bigger is abuse


@dataclass
class ServeConfig:
    """Knobs for one server instance."""

    directory: str
    host: str = "127.0.0.1"
    port: int = 8484
    workers: int = 2
    #: Micro-batch latency window in seconds; 0 = per-request dispatch.
    window: float = 0.002
    max_batch: int = 64
    index_backend: str = "flat"


class LakeServer:
    """The serving loop: snapshot + batcher + HTTP front end."""

    def __init__(self, snapshot: LakeSnapshot, config: ServeConfig):
        self.snapshot = snapshot
        self.config = config
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, config.workers),
            thread_name_prefix="repro-serve",
        )
        self._batcher = MicroBatcher(
            self._run_batch,
            executor=self._executor,
            window=config.window,
            max_batch=config.max_batch,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._context: Optional[TraceContext] = None
        self._draining = False
        self._in_flight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._connections: Set[asyncio.StreamWriter] = set()
        self._handlers: Set[asyncio.Task] = set()
        self._started_at = time.time()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        # Captured on the loop thread, where the CLI root span lives.
        self._context = capture_context()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self._started_at = time.time()
        _log.info(
            "server.started", host=self.config.host, port=self.port,
            models=len(self.snapshot.lake), window=self.config.window,
            workers=self.config.workers,
        )

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, then release."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        await self._batcher.drain()
        # Established keep-alive connections outlive the listener: close
        # them so the idle handlers (parked on readline) wake and exit
        # before the loop does, instead of being destroyed pending.
        for writer in list(self._connections):
            writer.close()
        if self._handlers:
            await asyncio.gather(*list(self._handlers), return_exceptions=True)
        self._executor.shutdown(wait=True)
        self.snapshot.close()
        _log.info("server.stopped", port=self.config.port)

    # -- engine bridge (runs on executor threads) ----------------------
    def _run_batch(self, triples: List[Tuple[str, int, str]]) -> List[Any]:
        with trace("serve.batch", size=len(triples)) as span:
            if span is not None and self._context is not None:
                # Fresh executor thread => trace() opened a root span.
                # Re-parent it (before any child opens) so the engine's
                # span subtree lands under the server's CLI root.
                span.parent_id = self._context.parent_span_id
                span.trace_id = self._context.trace_id
            return self.snapshot.engine.search_batch(triples)

    # -- per-request span (manual: survives awaits) --------------------
    def _begin_span(self, endpoint: str, target: str) -> Optional[Span]:
        if not tracing_enabled():
            return None
        span_id = next_span_id()
        context = self._context
        return Span(
            name=f"serve.request.{endpoint}",
            span_id=span_id,
            parent_id=context.parent_span_id if context else None,
            trace_id=context.trace_id if context else span_id,
            start=time.perf_counter(),
            start_unix=time.time(),
            attributes={"target": target},
        )

    @staticmethod
    def _end_span(span: Optional[Span], status: int) -> None:
        if span is None:
            return
        span.end = time.perf_counter()
        span.attributes["status"] = status
        if status >= 500:
            span.status = f"error:{status}"
        export_span(span)

    # -- HTTP front end ------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._connections.add(writer)
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").strip().split()
                if len(parts) != 3:
                    await self._respond(
                        writer, 400, {"error": "malformed request line"}, False
                    )
                    break
                http_method, target, version = parts
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                if length > _MAX_BODY:
                    await self._respond(
                        writer, 400, {"error": "body too large"}, False
                    )
                    break
                body = await reader.readexactly(length) if length else b""
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                status, payload = await self._dispatch(
                    http_method, target, body
                )
                await self._respond(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            # A client hanging up mid-request is routine, not an error.
            _log.debug("client.disconnected")
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            with contextlib.suppress(ConnectionResetError, BrokenPipeError):
                await writer.wait_closed()

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool,
    ) -> None:
        data = json.dumps(payload, default=str).encode()
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: {connection}\r\n"
        )
        if status == 503:
            head += "Retry-After: 1\r\n"
        writer.write(head.encode("latin-1") + b"\r\n" + data)
        await writer.drain()

    # -- routing -------------------------------------------------------
    async def _dispatch(
        self, http_method: str, target: str, body: bytes
    ) -> Tuple[int, Dict[str, Any]]:
        split = urlsplit(target)
        path = unquote(split.path)
        endpoint = self._endpoint_of(path)
        obs_metrics.inc(SERVE_REQUESTS)
        if self._draining and endpoint != "healthz":
            obs_metrics.inc(SERVE_REJECTED)
            return 503, {"error": "draining", "retry_after": 1}
        span = self._begin_span(endpoint or "unknown", path)
        self._in_flight += 1
        self._idle.clear()
        obs_metrics.set_gauge(SERVE_IN_FLIGHT, self._in_flight)
        start = time.perf_counter()
        try:
            status, payload = await self._route(
                http_method, path, split.query, body, endpoint
            )
        except (ConfigError, QueryError) as exc:
            status, payload = 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - one bad request must
            # not take down the serving loop; 5xx is the contract.
            _log.warning("request.failed", path=path, error=str(exc))
            status, payload = 500, {"error": f"internal error: {exc}"}
        finally:
            self._in_flight -= 1
            obs_metrics.set_gauge(SERVE_IN_FLIGHT, self._in_flight)
            if self._in_flight == 0:
                self._idle.set()
        if status >= 500:
            obs_metrics.inc(SERVE_ERRORS)
        if endpoint is not None:
            obs_metrics.observe(
                _LATENCY[endpoint], time.perf_counter() - start
            )
        self._end_span(span, status)
        return status, payload

    @staticmethod
    def _endpoint_of(path: str) -> Optional[str]:
        if path == "/search":
            return "search"
        if path.startswith("/model/"):
            return "model"
        if path == "/healthz":
            return "healthz"
        if path == "/stats":
            return "stats"
        return None

    async def _route(
        self,
        http_method: str,
        path: str,
        query_string: str,
        body: bytes,
        endpoint: Optional[str],
    ) -> Tuple[int, Dict[str, Any]]:
        if endpoint is None:
            return 404, {"error": f"no route for {path!r}"}
        if endpoint == "healthz":
            return 200, {"status": "draining" if self._draining else "ok"}
        if endpoint == "stats":
            return 200, self._stats_payload()
        if endpoint == "model":
            return self._model_payload(path[len("/model/"):])
        # /search: GET query string or POST JSON body.
        if http_method not in ("GET", "POST"):
            return 405, {"error": f"{http_method} not allowed on /search"}
        params: Dict[str, Any] = {
            key: values[-1] for key, values in parse_qs(query_string).items()
        }
        if http_method == "POST" and body:
            try:
                params.update(json.loads(body.decode()))
            except (ValueError, UnicodeDecodeError):
                return 400, {"error": "body is not valid JSON"}
        query = str(params.get("q") or params.get("query") or "").strip()
        if not query:
            return 400, {"error": "missing query parameter 'q'"}
        try:
            k = int(params.get("k", 10))
        except (TypeError, ValueError):
            return 400, {"error": f"k must be an integer, got {params.get('k')!r}"}
        if k < 1:
            return 400, {"error": f"k must be >= 1, got {k}"}
        method = str(params.get("method", "hybrid"))
        if method not in SEARCH_METHODS or method == "weight":
            allowed = [m for m in SEARCH_METHODS if m != "weight"]
            return 400, {
                "error": f"unknown method {method!r}; expected one of {allowed}"
            }
        hits = await self._batcher.submit(query, k, method)
        return 200, {
            "query": query,
            "k": k,
            "method": method,
            "results": [
                {"model_id": hit.model_id, "score": hit.score}
                for hit in hits
            ],
        }

    def _model_payload(self, model_id: str) -> Tuple[int, Dict[str, Any]]:
        try:
            record = self.snapshot.lake.get_record(model_id)
        except ModelNotFoundError:
            return 404, {"error": f"no model {model_id!r}"}
        return 200, {
            "model_id": record.model_id,
            "name": record.name,
            "family": record.family,
            "weights_digest": record.weights_digest,
            "created_at": record.created_at,
            "tags": list(record.tags),
            "eval_metrics": dict(record.eval_metrics),
            "history_public": record.history_public,
            "weights_public": record.weights_public,
            "card_completeness": record.card.completeness(),
        }

    def _stats_payload(self) -> Dict[str, Any]:
        return {
            "directory": self.snapshot.directory,
            "models": len(self.snapshot.lake),
            "uptime_seconds": time.time() - self._started_at,
            "open_weight_handles": self.snapshot.open_handles,
            "batching": {
                "window_seconds": self.config.window,
                "max_batch": self.config.max_batch,
                "workers": self.config.workers,
            },
            "draining": self._draining,
            "metrics": obs_metrics.get_registry().snapshot(),
        }


async def _serve(server: LakeServer, ready=None) -> int:
    await server.start()
    loop = asyncio.get_running_loop()
    stop_requested = asyncio.Event()
    with contextlib.suppress(NotImplementedError, RuntimeError):
        import signal

        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop_requested.set)
    if ready is not None:
        ready(server)
    await stop_requested.wait()
    _log.info("server.draining", port=server.port)
    await server.stop()
    return 0


def run_server(config: ServeConfig, ready=None) -> int:
    """Blocking entry point used by ``repro serve``.

    The snapshot opens *before* the event loop exists — engine warm-up
    is seconds of blocking work that has no business inside a coroutine.
    ``ready`` (for the CLI banner and tests) receives the started
    :class:`LakeServer` before the loop parks on the shutdown signal.
    """
    snapshot = LakeSnapshot.open(
        config.directory,
        index_backend=config.index_backend,
        index_workers=config.workers,
    )
    server = LakeServer(snapshot, config)
    return asyncio.run(_serve(server, ready=ready))
