"""Read-only lake snapshots with explicit handle ownership.

A serving process holds a lake open for hours, not milliseconds, which
changes who owns the file handles: ``load_lake(materialize=False)``
memmaps weight blobs on demand, and without an owner those maps live
until garbage collection gets around to them.  :class:`LakeSnapshot`
makes the ownership explicit — the snapshot owns every handle its
engine's warm-up opened, and ``close()`` releases them
deterministically.

Hot swap works by *replacing*, never mutating: ``reload()`` builds a
completely fresh snapshot from disk (new lake, new engine, new memmaps)
and the server swaps its reference, then closes the old snapshot.
Requests that raced the swap finish against the old snapshot's arrays —
an ``np.memmap`` stays valid while any view references it, so closing
under stragglers is safe — and every later request sees the new one.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.core.search.engine import SearchEngine
from repro.data.probes import make_text_probes
from repro.lake.persist import load_lake
from repro.obs.logging import get_logger

_log = get_logger("serve.snapshot")


class LakeSnapshot:
    """One immutable view of a persisted lake, plus its search engine.

    Build with :meth:`open`; release with :meth:`close` (or use as a
    context manager).  The engine is constructed eagerly so the first
    request never pays index warm-up, and the embedding cache under
    ``<dir>/cache`` makes that warm-up skip model rehydration entirely
    when vectors are already on disk.
    """

    def __init__(self, directory: str, lake, engine: SearchEngine):
        self._directory = directory
        self._lake = lake
        self._engine = engine
        self._closed = False

    @classmethod
    def open(
        cls,
        directory: str,
        index_backend: str = "flat",
        index_workers: int = 1,
    ) -> "LakeSnapshot":
        """Open ``directory`` read-only and build the search engine."""
        lake = load_lake(directory, materialize=False)
        engine = SearchEngine(
            lake,
            make_text_probes(),
            index_backend=index_backend,
            cache_dir=os.path.join(directory, "cache"),
            index_workers=index_workers,
        )
        _log.info(
            "snapshot.opened", directory=directory, models=len(lake),
            backend=index_backend,
        )
        return cls(directory, lake, engine)

    @property
    def directory(self) -> str:
        return self._directory

    @property
    def lake(self):
        return self._lake

    @property
    def engine(self) -> SearchEngine:
        return self._engine

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def open_handles(self) -> int:
        """Memmap handles currently held by the snapshot's weight store."""
        return self._lake.weights.open_handles

    def reload(self) -> "LakeSnapshot":
        """A fresh snapshot of the same directory (hot-swap source).

        The caller owns both snapshots during the swap: publish the new
        one first, then ``close()`` this one.
        """
        return LakeSnapshot.open(self._directory)

    def close(self) -> None:
        """Release every file handle the snapshot holds.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._lake.close()
        _log.info("snapshot.closed", directory=self._directory)

    def __enter__(self) -> "LakeSnapshot":
        return self

    def __exit__(self, *exc_info) -> Optional[bool]:
        self.close()
        return None
