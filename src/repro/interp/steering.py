"""Representation steering (§4: representation engineering, Zou et al.).

The paper cites representation engineering as "a top-down approach to AI
transparency": traits and concepts live as directions in activation
space, and behavior can be steered by moving activations along them.  We
implement the classifier version: add a concept direction (from
:mod:`repro.core.attribution.representation`) to the pooled activation
and observe the induced behavior change.  The steering test doubles as a
*causal* verification that an extracted direction really carries its
concept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.attribution.representation import ConceptDirection
from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.module import Module


@dataclass
class SteeringResult:
    """Behavior before/after steering a batch of inputs."""

    base_predictions: np.ndarray
    steered_predictions: np.ndarray
    base_target_probability: float
    steered_target_probability: float
    flip_rate: float

    @property
    def shift(self) -> float:
        """Probability mass moved onto the target class."""
        return self.steered_target_probability - self.base_target_probability


def steer(
    model: Module,
    tokens: np.ndarray,
    direction: ConceptDirection,
    strength: float,
    target_class: Optional[int] = None,
) -> SteeringResult:
    """Classify ``tokens`` with the concept direction added to the pool.

    ``strength`` scales the injected direction (negative values suppress
    the concept).  ``target_class`` defaults to the class the concept's
    positive examples belong to being unknown — pass it explicitly for a
    meaningful probability shift readout.
    """
    if not hasattr(model, "embed_tokens") or not hasattr(model, "head"):
        raise ConfigError("steering requires a model with embed_tokens and head")
    tokens = np.asarray(tokens)
    if tokens.ndim == 1:
        tokens = tokens[None, :]
    pooled = model.embed_tokens(tokens).data
    base_logits = model.head(Tensor(pooled))
    base_probs = base_logits.softmax(axis=-1).data
    steered_pool = pooled + strength * direction.vector[None, :]
    steered_logits = model.head(Tensor(steered_pool))
    steered_probs = steered_logits.softmax(axis=-1).data

    base_predictions = base_probs.argmax(axis=-1)
    steered_predictions = steered_probs.argmax(axis=-1)
    if target_class is None:
        target_class = int(steered_probs.mean(axis=0).argmax())
    return SteeringResult(
        base_predictions=base_predictions,
        steered_predictions=steered_predictions,
        base_target_probability=float(base_probs[:, target_class].mean()),
        steered_target_probability=float(steered_probs[:, target_class].mean()),
        flip_rate=float((base_predictions != steered_predictions).mean()),
    )


def dose_response(
    model: Module,
    tokens: np.ndarray,
    direction: ConceptDirection,
    target_class: int,
    strengths: Optional[List[float]] = None,
) -> Dict[float, float]:
    """Target-class probability as a function of steering strength.

    A genuine concept direction shows a monotone dose-response curve —
    the causal signature representation engineering relies on.
    """
    strengths = strengths if strengths is not None else [-2.0, -1.0, 0.0, 1.0, 2.0]
    return {
        s: steer(model, tokens, direction, s, target_class).steered_target_probability
        for s in strengths
    }
