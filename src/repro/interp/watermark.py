"""Generation watermarking (Kirchenbauer et al., 2023).

§6 Data and Model Citation: "One proposed solution to identify
generated output is the use of watermarks."  We implement the greenlist
scheme for our toy LMs: at each step the vocabulary is pseudo-randomly
split by the previous token into green/red halves, green logits get a
bias, and a detector z-tests the green fraction of a suspect text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.nn.transformer import TransformerLM
from repro.utils.hashing import text_digest


@dataclass
class WatermarkConfig:
    """Parameters of the greenlist watermark."""

    gamma: float = 0.5   # fraction of vocab that is green
    delta: float = 4.0   # logit bias added to green tokens
    key: int = 42        # secret key seeding the per-step permutation

    def validate(self) -> None:
        if not 0.0 < self.gamma < 1.0:
            raise ConfigError(f"gamma must be in (0, 1), got {self.gamma}")
        if self.delta < 0:
            raise ConfigError(f"delta must be non-negative, got {self.delta}")


def _green_mask(previous_token: int, vocab_size: int, config: WatermarkConfig) -> np.ndarray:
    """Deterministic green/red split seeded by (key, previous token)."""
    seed = int(text_digest(f"{config.key}:{previous_token}", length=8), 16)
    rng = np.random.default_rng(seed)
    permutation = rng.permutation(vocab_size)
    green_count = int(round(config.gamma * vocab_size))
    mask = np.zeros(vocab_size, dtype=bool)
    mask[permutation[:green_count]] = True
    return mask


def generate_watermarked(
    model: TransformerLM,
    prompt: np.ndarray,
    max_new_tokens: int,
    rng: np.random.Generator,
    config: Optional[WatermarkConfig] = None,
    temperature: float = 1.0,
) -> List[int]:
    """Sample from the LM with the greenlist bias applied per step."""
    config = config or WatermarkConfig()
    config.validate()
    tokens = list(np.asarray(prompt).tolist())
    vocab_size = model.vocab_size
    generated: List[int] = []
    for _ in range(max_new_tokens):
        window = np.array(tokens[-model.max_seq_len:], dtype=np.int64)
        logits = model(window[None, :]).data[0, -1].copy()
        mask = _green_mask(tokens[-1], vocab_size, config)
        logits[mask] += config.delta
        scaled = logits / max(temperature, 1e-6)
        scaled -= scaled.max()
        probabilities = np.exp(scaled)
        probabilities /= probabilities.sum()
        token = int(rng.choice(vocab_size, p=probabilities))
        tokens.append(token)
        generated.append(token)
    return generated


@dataclass
class DetectionResult:
    """Outcome of the watermark z-test."""

    green_fraction: float
    z_score: float
    num_scored: int

    def is_watermarked(self, threshold: float = 3.0) -> bool:
        return self.z_score >= threshold


def detect_watermark(
    token_sequence: Sequence[int],
    vocab_size: int,
    config: Optional[WatermarkConfig] = None,
) -> DetectionResult:
    """z-test: is the green fraction above the gamma null hypothesis?"""
    config = config or WatermarkConfig()
    config.validate()
    tokens = list(token_sequence)
    if len(tokens) < 2:
        raise ConfigError("need at least 2 tokens to score a watermark")
    green_hits = 0
    scored = 0
    for previous, current in zip(tokens[:-1], tokens[1:]):
        mask = _green_mask(int(previous), vocab_size, config)
        green_hits += bool(mask[int(current)])
        scored += 1
    fraction = green_hits / scored
    expected = config.gamma
    std = np.sqrt(expected * (1 - expected) / scored)
    z = (fraction - expected) / max(std, 1e-12)
    return DetectionResult(green_fraction=fraction, z_score=float(z), num_scored=scored)
