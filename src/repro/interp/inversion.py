"""Model inversion: recover inputs from internal states or outputs.

§5 cites inversion methods (InversionView, language-model inversion) as
a route to understanding what information a model's states carry.  For
our classifier families we invert the pooled representation: given an
activation vector, find the bag of vocabulary tokens whose pooled
embedding reproduces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.nn.models import TextClassifier


@dataclass
class InversionResult:
    """Recovered token evidence for an activation vector."""

    token_ids: List[int]
    reconstruction_error: float


def invert_pooled_embedding(
    model: TextClassifier,
    target_activation: np.ndarray,
    max_tokens: int = 10,
) -> InversionResult:
    """Greedy bag-of-tokens inversion of a pooled embedding.

    Greedily adds the vocabulary token whose inclusion brings the mean
    of chosen embeddings closest to the target.  Exact recovery is
    impossible (pooling loses order and counts); what matters — and what
    the tests check — is that recovered tokens come from the right
    *domain*, demonstrating the privacy-relevant leakage the paper's
    inversion citations discuss.
    """
    if max_tokens <= 0:
        raise ConfigError(f"max_tokens must be positive, got {max_tokens}")
    target = np.asarray(target_activation, dtype=np.float64)
    embeddings = model.embedding.weight.data  # (V, D)
    if target.shape != (embeddings.shape[1],):
        raise ConfigError(
            f"target has shape {target.shape}, expected ({embeddings.shape[1]},)"
        )
    chosen: List[int] = []
    running_sum = np.zeros_like(target)
    for step in range(1, max_tokens + 1):
        candidate_means = (running_sum[None, :] + embeddings) / step
        errors = np.linalg.norm(candidate_means - target[None, :], axis=1)
        errors[:4] = np.inf  # skip special tokens
        best = int(np.argmin(errors))
        chosen.append(best)
        running_sum += embeddings[best]
    final_error = float(np.linalg.norm(running_sum / len(chosen) - target))
    return InversionResult(token_ids=chosen, reconstruction_error=final_error)


def invert_input_tokens(
    model: TextClassifier,
    tokens: np.ndarray,
    max_tokens: int = 10,
) -> Tuple[InversionResult, float]:
    """Invert a real input's pooled activation; also report token recall.

    Returns the inversion plus the fraction of recovered tokens that
    actually occurred in the input — the leakage measure.
    """
    tokens = np.asarray(tokens).ravel()
    activation = model.embed_tokens(tokens[None, :]).data[0]
    result = invert_pooled_embedding(model, activation, max_tokens=max_tokens)
    true_tokens = {int(t) for t in tokens if t > 3}
    if not result.token_ids:
        return result, 0.0
    hits = sum(1 for t in result.token_ids if t in true_tokens)
    return result, hits / len(result.token_ids)
