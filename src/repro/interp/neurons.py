"""Neuron-level interpretability: ablation importance and domain tuning.

§4 cites neuron-level explanation methods (Bau et al.); here we measure
each hidden unit's causal importance by zero-ablation and identify
domain-selective neurons — the intrinsic counterpart of behavioral
competence profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.autograd import Tensor
from repro.nn.layers import Linear
from repro.nn.models import TextClassifier
from repro.nn.module import Module


@dataclass
class NeuronReport:
    """Per-neuron importance scores for one layer."""

    layer: str
    importance: np.ndarray   # (num_neurons,)

    def top_neurons(self, k: int = 5) -> np.ndarray:
        k = min(k, len(self.importance))
        order = np.argsort(-self.importance)[:k]
        return order


def _first_hidden_linear(model: TextClassifier) -> Linear:
    for module in model.head.net.layers:
        if isinstance(module, Linear):
            return module
    raise ConfigError("classifier head has no Linear layer")


def ablation_importance(
    model: TextClassifier,
    tokens: np.ndarray,
    labels: np.ndarray,
) -> NeuronReport:
    """Importance of each first-hidden-layer neuron by zero-ablation.

    Importance = accuracy drop when the neuron's outgoing weights are
    zeroed.  Zeroing out-weights silences the unit exactly (bias
    remains), making this a clean causal intervention.
    """
    layer = _first_hidden_linear(model)
    baseline = float((model.predict(tokens) == labels).mean())
    num_neurons = layer.out_features
    importance = np.zeros(num_neurons)
    saved_rows: Dict[int, np.ndarray] = {}
    # Find the *next* linear layer to silence the neuron's output path.
    linears = [m for m in model.head.net.layers if isinstance(m, Linear)]
    if len(linears) < 2:
        raise ConfigError("need at least two Linear layers to ablate hidden units")
    next_linear = linears[1]
    for neuron in range(num_neurons):
        saved = next_linear.weight.data[neuron, :].copy()
        next_linear.weight.data[neuron, :] = 0.0
        accuracy = float((model.predict(tokens) == labels).mean())
        next_linear.weight.data[neuron, :] = saved
        importance[neuron] = baseline - accuracy
    return NeuronReport(layer="head.hidden0", importance=importance)


def domain_selectivity(
    model: TextClassifier,
    tokens_by_domain: Dict[str, np.ndarray],
) -> Dict[str, np.ndarray]:
    """Mean activation of each hidden neuron per domain.

    A neuron is domain-selective when its activation on one domain is
    far above its activation elsewhere; returns domain -> (num_neurons,)
    mean activations for downstream selectivity analysis.
    """
    layer = _first_hidden_linear(model)
    activations: Dict[str, np.ndarray] = {}
    for domain, tokens in tokens_by_domain.items():
        pooled = model.embed_tokens(tokens)
        hidden = (pooled @ layer.weight + layer.bias).relu()
        activations[domain] = hidden.data.mean(axis=0)
    return activations


def selectivity_index(activations: Dict[str, np.ndarray]) -> np.ndarray:
    """Per-neuron selectivity: (max domain mean - runner-up) / (max + eps)."""
    matrix = np.stack([activations[d] for d in sorted(activations)])
    sorted_down = np.sort(matrix, axis=0)[::-1]
    top, runner_up = sorted_down[0], sorted_down[1]
    return (top - runner_up) / (np.abs(top) + 1e-9)
