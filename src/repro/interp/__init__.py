"""Interpretability tools: neurons, probing, inversion, watermarking."""

from repro.interp.neurons import (
    NeuronReport,
    ablation_importance,
    domain_selectivity,
    selectivity_index,
)
from repro.interp.probing import (
    ProbeResult,
    probe_classifier_representation,
    probe_lm_layers,
)
from repro.interp.inversion import (
    InversionResult,
    invert_input_tokens,
    invert_pooled_embedding,
)
from repro.interp.steering import SteeringResult, dose_response, steer
from repro.interp.watermark import (
    DetectionResult,
    WatermarkConfig,
    detect_watermark,
    generate_watermarked,
)

__all__ = [
    "NeuronReport", "ablation_importance", "domain_selectivity",
    "selectivity_index",
    "ProbeResult", "probe_classifier_representation", "probe_lm_layers",
    "InversionResult", "invert_input_tokens", "invert_pooled_embedding",
    "SteeringResult", "dose_response", "steer",
    "DetectionResult", "WatermarkConfig", "detect_watermark",
    "generate_watermarked",
]
