"""Probing classifiers (Belinkov 2022): what do hidden states encode?

Trains linear probes on a transformer LM's residual stream (or a
classifier's pooled representation) to predict the input's domain —
measuring where in the network topical information becomes linearly
decodable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import ConfigError
from repro.nn.models import MLPClassifier
from repro.nn.module import Module
from repro.nn.train import evaluate_accuracy, train_classifier
from repro.nn.transformer import TransformerLM


@dataclass
class ProbeResult:
    """Accuracy of a linear probe at one representation site."""

    site: str
    train_accuracy: float
    test_accuracy: float
    num_classes: int


def _fit_probe(
    features: np.ndarray,
    labels: np.ndarray,
    site: str,
    seed: int = 0,
    epochs: int = 40,
) -> ProbeResult:
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(features))
    cut = int(0.8 * len(features))
    train_idx, test_idx = order[:cut], order[cut:]
    probe = MLPClassifier(
        in_features=features.shape[1], num_classes=num_classes, hidden=(), seed=seed
    )
    train_classifier(
        probe, features[train_idx], labels[train_idx],
        epochs=epochs, lr=5e-3, seed=seed,
    )
    return ProbeResult(
        site=site,
        train_accuracy=evaluate_accuracy(probe, features[train_idx], labels[train_idx]),
        test_accuracy=evaluate_accuracy(probe, features[test_idx], labels[test_idx]),
        num_classes=num_classes,
    )


def probe_lm_layers(
    model: TransformerLM,
    tokens: np.ndarray,
    labels: np.ndarray,
    seed: int = 0,
) -> List[ProbeResult]:
    """Probe the mean-pooled residual stream after every block.

    Returns one result per site: ``embed`` (layer 0 input) through
    ``block_i`` outputs.  The expected shape: domain decodability rises
    with depth in a domain-trained LM.
    """
    tokens = np.asarray(tokens)
    states = model.hidden_states(tokens)
    mask = (tokens != 0).astype(np.float64)
    counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
    results = []
    for i, state in enumerate(states):
        pooled = (state.data * mask[:, :, None]).sum(axis=1) / counts
        site = "embed" if i == 0 else f"block_{i - 1}"
        results.append(_fit_probe(pooled, labels, site, seed=seed))
    return results


def probe_classifier_representation(
    model: Module,
    tokens: np.ndarray,
    labels: np.ndarray,
    seed: int = 0,
) -> ProbeResult:
    """Probe a classifier's pooled (pre-head) representation."""
    if not hasattr(model, "embed_tokens"):
        raise ConfigError("model must expose embed_tokens")
    pooled = model.embed_tokens(np.asarray(tokens)).data
    return _fit_probe(pooled, labels, site="pooled_embedding", seed=seed)
