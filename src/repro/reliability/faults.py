"""Deterministic fault injection for crash-safety testing.

A :class:`FaultPlan` is a seeded, replayable script of failures: "fail
the 2nd write whose filename matches ``manifest*``", "truncate the blob
write at byte 40", "break the process pool on wave ``generate.wave1``,
twice".  Production code never imports test helpers; instead the
reliability primitives (:mod:`repro.reliability.atomic`) and the
:class:`~repro.parallel.WaveExecutor` consult the *active* plan at
well-defined operation points:

========================  ====================================================
operation                 fired from
========================  ====================================================
``write.begin``           before the tmp file is created (nothing on disk)
``write.data``            mid-write into the tmp file (tmp partially written)
``write.rename``          after fsync, before ``os.replace`` (tmp complete)
``pool.wave``             before a wave executes (simulated worker crash)
========================  ====================================================

Plans are deterministic by construction — rules fire on the Nth
*matching* operation, counted per rule — and every fired fault is
recorded on ``plan.fired``, so a replay with the same plan and the same
workload fails at exactly the same points.  The ``seed`` is carried so
randomized placements (e.g. a hypothesis-driven kill point) can derive
their choices from ``plan.rng`` and stay replayable.

Injected crashes deliberately mimic a process kill: the atomic writer
leaves its tmp litter in place (a real ``SIGKILL`` would too), which is
exactly the debris ``repro fsck`` must classify.
"""

from __future__ import annotations

import fnmatch
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.instrument import RELIABILITY_INJECTED_FAULTS
from repro.utils.rng import derive_rng

__all__ = [
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "inject_faults",
    "active_plan",
    "trigger",
    "raise_if_triggered",
]

#: Operation names the harness understands.
WRITE_BEGIN = "write.begin"
WRITE_DATA = "write.data"
WRITE_RENAME = "write.rename"
POOL_WAVE = "pool.wave"


class InjectedFault(OSError):
    """A simulated crash, raised at an injection point.

    Subclasses ``OSError`` (not ``ReproError``) on purpose: to the code
    under test it must look like the disk or kernel failing, not like a
    library-level condition that an ``except ReproError`` could absorb.
    """


@dataclass
class FaultRule:
    """One scripted failure: fire on the Nth matching operation."""

    op: str
    pattern: str = "*"  # fnmatch over the operation's name (file basename
    #                     for writes, wave label for pool faults)
    index: int = 0  # fire on the Nth match (0-based)
    times: int = 1  # keep firing for this many consecutive matches
    truncate_at: Optional[int] = None  # write.data only: bytes written
    #                                    into the tmp file before the crash
    matched: int = field(default=0, init=False)  # matches seen so far

    def matches(self, op: str, name: str) -> bool:
        return self.op == op and fnmatch.fnmatch(name, self.pattern)

    def should_fire(self) -> bool:
        """Advance this rule's match counter; True if it fires now."""
        position = self.matched
        self.matched += 1
        return self.index <= position < self.index + self.times


class FaultPlan:
    """A seeded, ordered script of faults plus a record of what fired."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        #: RNG for randomized-but-replayable fault placement.
        self.rng = derive_rng(seed, "fault_plan")
        self.rules: List[FaultRule] = []
        #: Every fault that fired, in order: (op, name, rule position).
        self.fired: List[Tuple[str, str, int]] = []
        self._lock = threading.Lock()

    # -- scripting -----------------------------------------------------
    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def fail_write(
        self,
        pattern: str = "*",
        stage: str = WRITE_DATA,
        index: int = 0,
        times: int = 1,
        truncate_at: Optional[int] = None,
    ) -> "FaultPlan":
        """Crash the Nth write whose target basename matches ``pattern``.

        ``stage`` picks the injection point (``write.begin``,
        ``write.data``, ``write.rename``); ``truncate_at`` (with
        ``write.data``) writes that many bytes into the tmp file first,
        simulating a torn write.
        """
        if stage not in (WRITE_BEGIN, WRITE_DATA, WRITE_RENAME):
            raise ValueError(f"unknown write stage: {stage!r}")
        return self.add(FaultRule(
            op=stage, pattern=pattern, index=index, times=times,
            truncate_at=truncate_at,
        ))

    def break_pool(
        self, pattern: str = "*", index: int = 0, times: int = 1
    ) -> "FaultPlan":
        """Simulate worker-pool death on the Nth wave matching ``pattern``."""
        return self.add(FaultRule(
            op=POOL_WAVE, pattern=pattern, index=index, times=times,
        ))

    # -- consultation --------------------------------------------------
    def check(self, op: str, name: str) -> Optional[FaultRule]:
        """Rule that fires for this operation, advancing match counters."""
        with self._lock:
            hit: Optional[FaultRule] = None
            for position, rule in enumerate(self.rules):
                if not rule.matches(op, name):
                    continue
                if rule.should_fire() and hit is None:
                    hit = rule
                    self.fired.append((op, name, position))
            return hit


_active: Optional[FaultPlan] = None


def active_plan() -> Optional[FaultPlan]:
    return _active


@contextmanager
def inject_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` as the active fault plan for the enclosed block."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


def trigger(op: str, name: str) -> Optional[FaultRule]:
    """Rule firing for this operation under the active plan, if any."""
    plan = _active
    if plan is None:
        return None
    rule = plan.check(op, name)
    if rule is not None:
        obs_metrics.inc(RELIABILITY_INJECTED_FAULTS)
    return rule


def raise_if_triggered(op: str, name: str) -> None:
    """Raise :class:`InjectedFault` if the active plan scripts one here."""
    if trigger(op, name) is not None:
        raise InjectedFault(f"injected fault: {op} on {name!r}")
