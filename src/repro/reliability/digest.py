"""Chunked streaming digests: hash artifacts without materializing them.

``WeightStore.blob`` used to read a whole file into memory just to hash
it, and fsck did the same for every artifact it audited — an O(file)
resident cost that defeats an out-of-core lake.  These helpers compute
the same sha256-prefix digests the content-addressed stores use, but
stream the file through a fixed-size buffer, so verifying a 10 GB shard
costs the same memory as verifying a 10 KB one.
"""

from __future__ import annotations

import hashlib
from typing import BinaryIO

__all__ = ["STREAM_CHUNK_BYTES", "stream_digest", "stream_digest_fileobj"]

#: Read granularity: large enough to amortize syscalls, small enough
#: that the working set stays cache-resident.
STREAM_CHUNK_BYTES = 1 << 20


def stream_digest_fileobj(
    handle: BinaryIO, length: int = 16, chunk_bytes: int = STREAM_CHUNK_BYTES
) -> str:
    """Hex sha256 prefix of everything readable from ``handle``."""
    hasher = hashlib.sha256()
    while True:
        chunk = handle.read(chunk_bytes)
        if not chunk:
            break
        hasher.update(chunk)
    return hasher.hexdigest()[:length]


def stream_digest(
    path: str, length: int = 16, chunk_bytes: int = STREAM_CHUNK_BYTES
) -> str:
    """Hex sha256 prefix of a file's bytes, streamed in chunks.

    Equivalent to ``bytes_digest(open(path, 'rb').read(), length)``
    with O(chunk) instead of O(file) memory.
    """
    with open(path, "rb") as handle:
        return stream_digest_fileobj(handle, length=length, chunk_bytes=chunk_bytes)
