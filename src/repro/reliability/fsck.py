"""Integrity verification for persisted lakes: ``repro fsck``.

Walks a lake directory (the layout written by
:func:`repro.lake.persist.save_lake`) and verifies every artifact the
manifest claims exists against the bytes actually on disk.  Findings
are classified:

===================  =========  ================================================
kind                 severity   meaning
===================  =========  ================================================
``manifest-missing`` error      no ``manifest.json``; not a lake (or one whose
                                very first save never committed)
``manifest-corrupt`` error      manifest (or a shard fragment) does not parse
``manifest-digest``  error      manifest body does not match its own integrity
                                digest (hand-edited or bit-rotted)
``missing``          error      a referenced blob/dataset/lineage file is gone
``truncated``        error      file is shorter than the recorded size
``digest-mismatch``  error      right size (or size unknown) but wrong content
``orphaned``         warning    a blob on disk no manifest entry references
``stale-temp``       warning    tmp litter from an interrupted atomic write
``integrity-absent`` warning    pre-reliability lake: no checksum section, only
                                structural + weight-digest checks possible
===================  =========  ================================================

Weight checks stream each file through a fixed-size buffer
(:func:`~repro.reliability.digest.stream_digest`) — auditing a lake
never materializes a blob — and on a sharded lake (two-hex-char digest
prefixes, layout recorded in the manifest's ``integrity`` section) they
can run shard-parallel via ``fsck_lake(..., workers=N)``.  Without a
readable integrity section fsck degrades gracefully: it *probes* for
each record's weight file across the known layouts (flat ``.rwb``,
sharded ``.rwb``, legacy flat ``.npz``) and verifies the
filename-as-digest, which both formats guarantee.

``repair=True`` quarantines corrupt/truncated/orphaned blobs under
``<lake>/quarantine/`` (never deletes payload bytes) and removes stale
tmp files.  This module intentionally imports nothing from
``repro.lake`` — fsck must stay trustworthy even when the storage layer
it audits is the thing that is broken — so the on-disk layout is
declared here as constants shared by convention.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    FSCK_FILES_SCANNED,
    FSCK_FINDINGS,
    FSCK_REPAIRS,
    FSCK_RUN_SECONDS,
    FSCK_RUNS,
)
from repro.obs.logging import get_logger
from repro.obs.tracing import trace
from repro.reliability.digest import stream_digest
from repro.utils.hashing import array_digest, bytes_digest, combine_digests, stable_hash

__all__ = ["FsckFinding", "FsckReport", "fsck_lake", "manifest_body_digest"]

_log = get_logger("reliability.fsck")

# -- on-disk layout (mirrors repro.lake.persist/shard, by convention) --
MANIFEST = "manifest.json"
LINEAGE = "lineage.json"
WEIGHTS_DIR = "weights"
DATASETS_DIR = "datasets"
SHARDS_DIR = "shards"
QUARANTINE_DIR = "quarantine"
WEIGHT_EXT = ".rwb"
LEGACY_WEIGHT_EXT = ".npz"
DEFAULT_PREFIX_LEN = 2
#: Directories fsck never audits: disposable/derived artifacts
#: (embedding caches rebuild, quarantine holds what fsck itself moved,
#: checkpoints belong to the generator).  ``metrics.json`` at the top
#: level is likewise outside the integrity surface.
_IGNORED_DIRS = ("cache", QUARANTINE_DIR, ".checkpoint")


def manifest_body_digest(manifest: Dict) -> str:
    """Digest of the manifest body (everything except ``integrity``)."""
    body = {key: value for key, value in manifest.items() if key != "integrity"}
    return stable_hash(body, length=32)


#: One streaming file probe: (status, size, actual_digest).  Status is
#: "missing" | "truncated" | "digest-mismatch" | "ok".
_Probe = Tuple[str, Optional[int], Optional[str]]


def _probe_file(
    path: str, expected_digest: Optional[str], expected_size: Optional[int]
) -> _Probe:
    """Streaming presence/size/digest check of one file.

    Pure (no report state, no I/O beyond reading ``path``) so the
    shard-parallel walk can run it in worker processes.
    """
    if not os.path.exists(path):
        return ("missing", None, None)
    size = os.path.getsize(path)
    if expected_size is not None and size < expected_size:
        return ("truncated", size, None)
    if expected_digest:
        actual = stream_digest(path, length=len(expected_digest))
        if actual != expected_digest:
            return ("digest-mismatch", size, actual)
    return ("ok", size, None)


def _probe_weight_job(task: Tuple[str, Optional[str], Optional[int]]) -> _Probe:
    """Top-level (picklable) wave task wrapping :func:`_probe_file`."""
    path, expected_digest, expected_size = task
    return _probe_file(path, expected_digest, expected_size)


@dataclass
class FsckFinding:
    """One classified integrity problem."""

    kind: str
    path: str  # lake-relative, posix separators
    severity: str  # "error" | "warning"
    detail: str
    expected: Optional[str] = None
    actual: Optional[str] = None
    repaired: bool = False
    repair_action: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind,
            "path": self.path,
            "severity": self.severity,
            "detail": self.detail,
            "repaired": self.repaired,
        }
        if self.expected is not None:
            payload["expected"] = self.expected
        if self.actual is not None:
            payload["actual"] = self.actual
        if self.repair_action is not None:
            payload["repair_action"] = self.repair_action
        return payload


@dataclass
class FsckReport:
    """Outcome of one fsck walk."""

    directory: str
    findings: List[FsckFinding] = field(default_factory=list)
    files_scanned: int = 0
    elapsed_seconds: float = 0.0
    repair: bool = False

    @property
    def errors(self) -> List[FsckFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[FsckFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def clean(self) -> bool:
        """No findings at all — the lake verified end to end."""
        return not self.findings

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings alone keep a lake usable)."""
        return not self.errors

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def to_json_payload(self) -> Dict[str, object]:
        return {
            "directory": self.directory,
            "clean": self.clean,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "repair": self.repair,
            "findings": [f.to_dict() for f in sorted_findings(self.findings)],
        }

    def to_text(self) -> str:
        lines = [
            f"fsck {self.directory}: scanned {self.files_scanned} file(s)",
        ]
        for finding in sorted_findings(self.findings):
            marker = "repaired " if finding.repaired else ""
            lines.append(
                f"  [{finding.severity:<7}] {finding.kind:<16} "
                f"{finding.path}: {marker}{finding.detail}"
            )
        if self.clean:
            lines.append("  clean: every artifact verified")
        else:
            lines.append(
                f"  {len(self.errors)} error(s), {len(self.warnings)} warning(s)"
            )
        return "\n".join(lines)


def sorted_findings(findings: List[FsckFinding]) -> List[FsckFinding]:
    order = {"error": 0, "warning": 1}
    return sorted(findings, key=lambda f: (order[f.severity], f.path, f.kind))


class _Walk:
    """One fsck pass over a lake directory."""

    def __init__(self, directory: str, repair: bool, workers: int = 1):
        self.directory = directory
        self.repair = repair
        self.workers = max(1, int(workers))
        self.report = FsckReport(directory=directory, repair=repair)
        #: Parsed ``integrity.layout`` payload, or None (legacy/degraded).
        self.layout: Optional[Dict] = None

    # -- helpers -------------------------------------------------------
    def _abs(self, rel: str) -> str:
        return os.path.join(self.directory, rel.replace("/", os.sep))

    def found(self, finding: FsckFinding) -> FsckFinding:
        self.report.findings.append(finding)
        return finding

    def _quarantine(self, rel: str, finding: FsckFinding) -> None:
        """Move a bad blob aside (never delete payload bytes)."""
        if not self.repair:
            return
        source = self._abs(rel)
        target_dir = os.path.join(self.directory, QUARANTINE_DIR)
        os.makedirs(target_dir, exist_ok=True)
        target = os.path.join(target_dir, rel.replace("/", "__"))
        os.replace(source, target)
        finding.repaired = True
        finding.repair_action = f"quarantined to {QUARANTINE_DIR}/{os.path.basename(target)}"
        obs_metrics.inc(FSCK_REPAIRS)

    def _remove(self, rel: str, finding: FsckFinding) -> None:
        if not self.repair:
            return
        os.unlink(self._abs(rel))
        finding.repaired = True
        finding.repair_action = "removed"
        obs_metrics.inc(FSCK_REPAIRS)

    def _read(self, rel: str) -> Optional[bytes]:
        path = self._abs(rel)
        if not os.path.exists(path):
            return None
        with open(path, "rb") as handle:
            self.report.files_scanned += 1
            return handle.read()

    def _weight_rel(self, digest: str) -> str:
        """Where a record's weight blob should live.

        With a parsed layout this is exact; without one (legacy or
        corrupted integrity section) fsck probes the known placements —
        flat ``.rwb``, sharded ``.rwb``, legacy flat ``.npz`` — and
        audits the first that exists.  Both formats name files by
        content digest, so the fallback still verifies real bytes.
        """
        if self.layout is not None:
            ext = WEIGHT_EXT if self.layout.get("format", "rwb") == "rwb" else LEGACY_WEIGHT_EXT
            if self.layout.get("sharded"):
                prefix = digest[: int(self.layout.get("prefix_len", DEFAULT_PREFIX_LEN))]
                return f"{WEIGHTS_DIR}/{prefix}/{digest}{ext}"
            return f"{WEIGHTS_DIR}/{digest}{ext}"
        candidates = (
            f"{WEIGHTS_DIR}/{digest}{WEIGHT_EXT}",
            f"{WEIGHTS_DIR}/{digest[:DEFAULT_PREFIX_LEN]}/{digest}{WEIGHT_EXT}",
            f"{WEIGHTS_DIR}/{digest}{LEGACY_WEIGHT_EXT}",
        )
        for rel in candidates:
            if os.path.exists(self._abs(rel)):
                return rel
        return candidates[0]

    # -- checks --------------------------------------------------------
    def _apply_probe(
        self,
        rel: str,
        probe: _Probe,
        expected_digest: Optional[str],
        expected_size: Optional[int],
        what: str,
    ) -> None:
        status, size, actual = probe
        if status == "missing":
            self.found(FsckFinding(
                kind="missing", path=rel, severity="error",
                detail=f"{what} referenced by the manifest is not on disk",
                expected=expected_digest,
            ))
            return
        self.report.files_scanned += 1
        if status == "truncated":
            finding = self.found(FsckFinding(
                kind="truncated", path=rel, severity="error",
                detail=(
                    f"{what} is {size} byte(s), manifest records "
                    f"{expected_size}"
                ),
                expected=str(expected_size), actual=str(size),
            ))
            self._quarantine(rel, finding)
        elif status == "digest-mismatch":
            finding = self.found(FsckFinding(
                kind="digest-mismatch", path=rel, severity="error",
                detail=f"{what} bytes do not match the recorded digest",
                expected=expected_digest, actual=actual,
            ))
            self._quarantine(rel, finding)

    def check_file(
        self,
        rel: str,
        expected_digest: Optional[str],
        expected_size: Optional[int],
        what: str,
    ) -> None:
        """Verify one referenced file's presence, size, and content digest."""
        probe = _probe_file(self._abs(rel), expected_digest, expected_size)
        self._apply_probe(rel, probe, expected_digest, expected_size, what)

    def check_weights(
        self, tasks: List[Tuple[str, str, Optional[int], str]]
    ) -> None:
        """Verify every weight blob, shard-parallel when workers > 1.

        Probes are pure and per-file, so they fan out cleanly; findings
        (and quarantines) are applied in the main process, in task
        order, keeping reports deterministic regardless of worker count.
        """
        if self.workers > 1 and len(tasks) > 1:
            # Imported lazily: repro.parallel itself uses the
            # reliability fault hooks, and a module-level import here
            # would cycle through the package __init__.
            from repro.parallel import WaveExecutor

            executor = WaveExecutor(workers=self.workers)
            probes = executor.run_wave(
                _probe_weight_job,
                [(self._abs(rel), digest, size) for rel, digest, size, _ in tasks],
                label="fsck.weights",
            )
        else:
            probes = [
                _probe_file(self._abs(rel), digest, size)
                for rel, digest, size, _ in tasks
            ]
        for (rel, digest, size, what), probe in zip(tasks, probes):
            self._apply_probe(rel, probe, digest, size, what)

    def check_dataset_content(self, rel: str, dataset_digest: str) -> None:
        """Legacy fallback: recompute a dataset digest from its arrays."""
        path = self._abs(rel)
        try:
            with np.load(path) as payload:
                actual = combine_digests([
                    array_digest(payload["tokens"]),
                    array_digest(payload["labels"]),
                ])
        except Exception:
            finding = self.found(FsckFinding(
                kind="digest-mismatch", path=rel, severity="error",
                detail="dataset archive is unreadable",
                expected=dataset_digest,
            ))
            self._quarantine(rel, finding)
            return
        if actual != dataset_digest:
            finding = self.found(FsckFinding(
                kind="digest-mismatch", path=rel, severity="error",
                detail="dataset contents do not match the digest naming them",
                expected=dataset_digest, actual=actual,
            ))
            self._quarantine(rel, finding)

    def scan_orphans_and_temps(
        self, referenced: Dict[str, bool], include_shards: bool = False
    ) -> None:
        """Flag unreferenced blobs and tmp litter anywhere in the lake."""
        for dirpath, dirnames, filenames in os.walk(self.directory):
            rel_dir = os.path.relpath(dirpath, self.directory).replace(os.sep, "/")
            if rel_dir == ".":
                rel_dir = ""
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _IGNORED_DIRS
                )
            is_blob_dir = (
                rel_dir in (WEIGHTS_DIR, DATASETS_DIR)
                or rel_dir.startswith(WEIGHTS_DIR + "/")
                or (include_shards and rel_dir == SHARDS_DIR)
            )
            for filename in sorted(filenames):
                rel = f"{rel_dir}/{filename}" if rel_dir else filename
                if filename.endswith(".tmp"):
                    finding = self.found(FsckFinding(
                        kind="stale-temp", path=rel, severity="warning",
                        detail="leftover tmp file from an interrupted write",
                    ))
                    self._remove(rel, finding)
                    continue
                if is_blob_dir and rel not in referenced:
                    finding = self.found(FsckFinding(
                        kind="orphaned", path=rel, severity="warning",
                        detail=(
                            "blob is not referenced by the manifest "
                            "(likely debris of an uncommitted save)"
                        ),
                    ))
                    self._quarantine(rel, finding)

    # -- the walk ------------------------------------------------------
    def run(self) -> FsckReport:
        manifest_raw = self._read(MANIFEST)
        if manifest_raw is None:
            self.found(FsckFinding(
                kind="manifest-missing", path=MANIFEST, severity="error",
                detail="no manifest; directory is not a committed lake",
            ))
            self.scan_orphans_and_temps({})
            return self.report
        try:
            manifest = json.loads(manifest_raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self.found(FsckFinding(
                kind="manifest-corrupt", path=MANIFEST, severity="error",
                detail=f"manifest does not parse: {error}",
            ))
            self.scan_orphans_and_temps({})
            return self.report

        integrity = manifest.get("integrity") or {}
        files: Dict[str, Dict] = dict(integrity.get("files") or {})
        layout = integrity.get("layout")
        self.layout = dict(layout) if isinstance(layout, dict) else None
        if not integrity:
            self.found(FsckFinding(
                kind="integrity-absent", path=MANIFEST, severity="warning",
                detail=(
                    "manifest has no integrity section (pre-reliability "
                    "save); only structural and weight-digest checks run"
                ),
            ))
        else:
            recorded = str(integrity.get("manifest_digest") or "")
            recomputed = manifest_body_digest(manifest)
            if recorded != recomputed:
                self.found(FsckFinding(
                    kind="manifest-digest", path=MANIFEST, severity="error",
                    detail="manifest body does not match its integrity digest",
                    expected=recorded, actual=recomputed,
                ))

        referenced: Dict[str, bool] = {}

        # Shard integrity fragments: each is pinned (size + digest) by
        # the root manifest, then contributes its per-file entries.  An
        # unreadable fragment degrades that shard's weight checks to
        # filename-as-digest; it never aborts the walk.
        for rel in sorted(files):
            if not (rel.startswith(SHARDS_DIR + "/") and rel.endswith(".json")):
                continue
            referenced[rel] = True
            meta = files.get(rel) or {}
            self.check_file(
                rel,
                expected_digest=str(meta.get("digest") or "") or None,
                expected_size=meta.get("bytes"),
                what="shard integrity fragment",
            )
            fragment_raw = None
            path = self._abs(rel)
            if os.path.exists(path):
                with open(path, "rb") as handle:
                    fragment_raw = handle.read()
            if fragment_raw is None:
                continue
            try:
                fragment = json.loads(fragment_raw.decode("utf-8"))
                files.update(dict(fragment.get("files") or {}))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self.found(FsckFinding(
                    kind="manifest-corrupt", path=rel, severity="error",
                    detail=f"shard fragment does not parse: {error}",
                ))

        # Weight blobs: the filename *is* the content digest, so these
        # verify even on legacy lakes without an integrity section.
        weight_tasks: List[Tuple[str, str, Optional[int], str]] = []
        for entry in manifest.get("records", []):
            digest = str(entry.get("weights_digest") or "")
            rel = self._weight_rel(digest)
            if rel in referenced:
                continue
            referenced[rel] = True
            meta = files.get(rel) or {}
            weight_tasks.append((
                rel,
                str(meta.get("digest") or digest),
                meta.get("bytes"),
                f"weights of model {entry.get('model_id', '?')!r}",
            ))
        self.check_weights(weight_tasks)

        # Datasets: filenames are *content* digests of the arrays, not of
        # the archive bytes, so byte-level checks need the integrity
        # section; without it we reload and recompute the array digests.
        for entry in manifest.get("datasets", []):
            digest = str(entry.get("digest") or "")
            rel = f"{DATASETS_DIR}/{digest}.npz"
            if rel in referenced:
                continue
            referenced[rel] = True
            meta = files.get(rel)
            if meta is not None:
                self.check_file(
                    rel,
                    expected_digest=str(meta.get("digest") or "") or None,
                    expected_size=meta.get("bytes"),
                    what=f"dataset {entry.get('name', digest)!r}",
                )
            else:
                data = self._read(rel)
                if data is None:
                    self.found(FsckFinding(
                        kind="missing", path=rel, severity="error",
                        detail=(
                            f"dataset {entry.get('name', digest)!r} referenced "
                            f"by the manifest is not on disk"
                        ),
                        expected=digest,
                    ))
                else:
                    self.check_dataset_content(rel, digest)

        # Lineage: always written by save_lake (possibly an empty list).
        meta = files.get(LINEAGE)
        lineage_raw = self._read(LINEAGE)
        if lineage_raw is None:
            self.found(FsckFinding(
                kind="missing", path=LINEAGE, severity="error",
                detail="lineage file is not on disk",
            ))
        else:
            if meta is not None:
                expected_digest = str(meta.get("digest") or "")
                expected_size = meta.get("bytes")
                if expected_size is not None and len(lineage_raw) < expected_size:
                    self.found(FsckFinding(
                        kind="truncated", path=LINEAGE, severity="error",
                        detail=(
                            f"lineage is {len(lineage_raw)} byte(s), manifest "
                            f"records {expected_size}"
                        ),
                        expected=str(expected_size), actual=str(len(lineage_raw)),
                    ))
                elif expected_digest and bytes_digest(
                    lineage_raw, length=len(expected_digest)
                ) != expected_digest:
                    self.found(FsckFinding(
                        kind="digest-mismatch", path=LINEAGE, severity="error",
                        detail="lineage bytes do not match the recorded digest",
                        expected=expected_digest,
                        actual=bytes_digest(lineage_raw, length=len(expected_digest)),
                    ))
            try:
                json.loads(lineage_raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self.found(FsckFinding(
                    kind="manifest-corrupt", path=LINEAGE, severity="error",
                    detail=f"lineage does not parse: {error}",
                ))

        # Stray shard fragments are only classifiable as orphans when an
        # integrity section exists to say which fragments are real.
        self.scan_orphans_and_temps(referenced, include_shards=bool(integrity))
        return self.report


def fsck_lake(directory: str, repair: bool = False, workers: int = 1) -> FsckReport:
    """Verify a persisted lake; optionally quarantine what fails.

    Never raises on corruption — every problem becomes a classified
    :class:`FsckFinding` — so one bad blob cannot hide the rest of the
    walk.  Raises only if ``directory`` itself does not exist.
    ``workers > 1`` fans the weight-blob checks out across processes
    (worthwhile on sharded lakes, where each worker streams a disjoint
    slice of the files); the report is identical for any worker count.
    """
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no such lake directory: {directory!r}")
    start = time.perf_counter()
    obs_metrics.inc(FSCK_RUNS)
    with trace("fsck.run", directory=directory, repair=repair):
        report = _Walk(directory, repair=repair, workers=workers).run()
    report.elapsed_seconds = time.perf_counter() - start
    obs_metrics.inc(FSCK_FILES_SCANNED, report.files_scanned)
    obs_metrics.inc(FSCK_FINDINGS, len(report.findings))
    obs_metrics.observe(FSCK_RUN_SECONDS, report.elapsed_seconds)
    _log.info(
        "fsck.done",
        directory=directory,
        files=report.files_scanned,
        errors=len(report.errors),
        warnings=len(report.warnings),
        repaired=sum(1 for f in report.findings if f.repaired),
    )
    return report
