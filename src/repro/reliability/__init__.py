"""Crash-safe storage and execution: the lake's reliability layer.

The paper's benchmark-lake requirement rests on *verified ground truth*;
this package is what makes "verified" mean something on a machine that
can lose power mid-write.  Four pieces:

* :mod:`repro.reliability.atomic` — tmp-file + fsync + rename write
  primitives; every durable lake artifact goes through them, so a crash
  at any instant leaves the previous contents intact.
* :mod:`repro.reliability.fsck` — integrity verification over a
  persisted lake (``repro fsck``): classifies missing, truncated,
  digest-mismatched, and orphaned artifacts, and can quarantine them.
* :mod:`repro.reliability.faults` — deterministic, seeded fault
  injection (``FaultPlan``) the crash-safety test suites and the CI
  chaos job script failures with.
* :mod:`repro.reliability.checkpoint` — wave-granular generation
  checkpoints backing ``repro generate --resume``.
"""

from repro.reliability.atomic import (
    atomic_copy_file,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_npz,
    fsync_directory,
)
from repro.reliability.checkpoint import WaveCheckpoint
from repro.reliability.digest import STREAM_CHUNK_BYTES, stream_digest
from repro.reliability.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    inject_faults,
)
from repro.reliability.fsck import FsckFinding, FsckReport, fsck_lake

__all__ = [
    "atomic_copy_file",
    "STREAM_CHUNK_BYTES",
    "stream_digest",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "fsync_directory",
    "WaveCheckpoint",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "inject_faults",
    "FsckFinding",
    "FsckReport",
    "fsck_lake",
]
