"""Wave-granular checkpoints for resumable lake generation.

Generation is the expensive phase (real training per model), but it is
structured as a deterministic plan executed wave by wave — so the
natural checkpoint unit is one completed wave.  :class:`WaveCheckpoint`
persists each wave's results (pickled, written atomically) keyed by the
wave label, plus a ``meta.json`` carrying a fingerprint of the spec that
produced them.  ``repro generate --resume`` replays the (cheap) planning
pass, then satisfies every already-checkpointed wave from disk and
trains only what the crash interrupted; because registration consumes
results in canonical plan order either way, the resumed lake is
bit-identical to an uninterrupted run.

A checkpoint whose fingerprint does not match the current spec is
discarded wholesale — resuming half a run of a *different* lake would
silently corrupt ground truth.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
from typing import Any, Optional

from repro.errors import CheckpointError
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    RELIABILITY_CHECKPOINT_HITS,
    RELIABILITY_CHECKPOINT_STORES,
)
from repro.obs.logging import get_logger
from repro.reliability.atomic import atomic_write_bytes, atomic_write_json

__all__ = ["WaveCheckpoint"]

_log = get_logger("reliability.checkpoint")

_META = "meta.json"
_VERSION = 1


def _safe_label(label: str) -> str:
    return "".join(c if c.isalnum() or c in "._-" else "_" for c in label)


class WaveCheckpoint:
    """Directory-backed store of per-wave results for one generation run.

    Parameters
    ----------
    directory:
        Where checkpoints live (conventionally ``<lake>/.checkpoint``).
    fingerprint:
        Stable digest of the generation spec.  A mismatch with the
        on-disk meta invalidates everything.
    resume:
        ``False`` discards any existing checkpoint up front (a fresh
        run); ``True`` keeps compatible waves for reuse.
    """

    def __init__(self, directory: str, fingerprint: str, resume: bool = True):
        self.directory = directory
        self.fingerprint = fingerprint
        existing = self._read_meta()
        if existing is not None and (
            not resume
            or existing.get("fingerprint") != fingerprint
            or existing.get("version") != _VERSION
        ):
            if resume:
                _log.warning(
                    "checkpoint.discarded",
                    directory=directory,
                    reason="fingerprint or version mismatch",
                )
            self.clear()
            existing = None
        if existing is None:
            os.makedirs(directory, exist_ok=True)
            atomic_write_json(
                os.path.join(directory, _META),
                {"version": _VERSION, "fingerprint": fingerprint},
            )

    # ------------------------------------------------------------------
    def _read_meta(self) -> Optional[dict]:
        path = os.path.join(self.directory, _META)
        if not os.path.exists(path):
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return {}  # unreadable meta: treated as incompatible

    def _wave_path(self, label: str) -> str:
        return os.path.join(self.directory, f"wave-{_safe_label(label)}.pkl")

    # ------------------------------------------------------------------
    def load(self, label: str) -> Optional[Any]:
        """Results checkpointed for ``label``, or ``None``.

        A checkpoint file that exists but does not unpickle is a crash
        artifact that should be impossible (writes are atomic), so it
        raises :class:`CheckpointError` rather than silently retraining
        — the operator should know the store misbehaved.
        """
        path = self._wave_path(label)
        if not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception as error:
            raise CheckpointError(
                f"checkpoint for wave {label!r} at {path!r} is unreadable: "
                f"{error}"
            ) from error
        obs_metrics.inc(RELIABILITY_CHECKPOINT_HITS)
        _log.info("checkpoint.hit", label=label, path=path)
        return payload

    def store(self, label: str, payload: Any) -> None:
        """Atomically persist one wave's results."""
        atomic_write_bytes(
            self._wave_path(label),
            pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL),
        )
        obs_metrics.inc(RELIABILITY_CHECKPOINT_STORES)
        _log.debug("checkpoint.stored", label=label)

    def clear(self) -> None:
        """Remove the whole checkpoint directory (end of a finished run)."""
        shutil.rmtree(self.directory, ignore_errors=True)
