"""Crash-safe file writes: tmp file in the same directory + fsync + rename.

Every durable artifact the lake produces (weight blobs, manifests,
lineage, embedding caches, metrics snapshots, checkpoints) goes through
these primitives.  The contract: **a crash at any instant leaves the
destination either absent or holding its complete previous contents** —
never a partial file.  The sequence is the classic one:

1. create a uniquely-named tmp file *in the destination directory*
   (same filesystem, so the final rename cannot degrade to a copy),
2. write all bytes, flush, ``fsync`` the file,
3. ``os.replace`` onto the destination (atomic on POSIX and Windows),
4. ``fsync`` the directory so the rename itself is durable.

Fault-injection points (:mod:`repro.reliability.faults`) are threaded
through each stage; an :class:`~repro.reliability.faults.InjectedFault`
simulates a kill, so — exactly like a real crash — it leaves the tmp
file behind for ``repro fsck`` to find, while ordinary exceptions clean
up after themselves.
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import tempfile
from typing import Any, Mapping

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    RELIABILITY_ATOMIC_BYTES,
    RELIABILITY_ATOMIC_WRITES,
)
from repro.reliability import faults

__all__ = [
    "atomic_copy_file",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_npz",
    "fsync_directory",
]


def fsync_directory(directory: str) -> None:
    """Flush a directory's metadata (new names, renames) to disk.

    Best-effort: some platforms/filesystems refuse to open directories
    for syncing; durability of the *data* does not depend on this.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        with contextlib.suppress(OSError):
            os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes, fsync: bool = True) -> None:
    """Atomically replace ``path`` with ``data``.

    On any failure the destination is untouched: either the previous
    file survives intact or (for a first write) no file exists.
    """
    directory = os.path.dirname(os.path.abspath(path))
    name = os.path.basename(path)
    faults.raise_if_triggered(faults.WRITE_BEGIN, name)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            rule = faults.trigger(faults.WRITE_DATA, name)
            if rule is not None:
                written = data[: rule.truncate_at or 0]
                handle.write(written)
                handle.flush()
                raise faults.InjectedFault(
                    f"injected fault: write.data on {name!r} "
                    f"after {len(written)} byte(s)"
                )
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        faults.raise_if_triggered(faults.WRITE_RENAME, name)
        os.replace(tmp_path, path)
    except BaseException as exc:
        # An injected fault models a process kill, which cannot clean
        # up — leave the tmp litter for fsck, as a real crash would.
        if not isinstance(exc, faults.InjectedFault):
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
        raise
    if fsync:
        fsync_directory(directory)
    obs_metrics.inc(RELIABILITY_ATOMIC_WRITES)
    obs_metrics.inc(RELIABILITY_ATOMIC_BYTES, len(data))


def atomic_copy_file(
    source: str, path: str, fsync: bool = True,
    chunk_bytes: int = 1 << 20,
) -> int:
    """Atomically replace ``path`` with the bytes of ``source``, streamed.

    The out-of-core analogue of :func:`atomic_write_bytes`: the source
    is never materialized in memory, so exporting a multi-gigabyte
    weight shard costs one chunk buffer.  Same crash contract, same
    fault-injection points (keyed on the *destination* basename), and
    copying a file onto itself is safe — the source stays readable
    until the final rename.  Returns the number of bytes copied.
    """
    directory = os.path.dirname(os.path.abspath(path))
    name = os.path.basename(path)
    faults.raise_if_triggered(faults.WRITE_BEGIN, name)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{name}.", suffix=".tmp"
    )
    copied = 0
    try:
        with os.fdopen(fd, "wb") as handle, open(source, "rb") as reader:
            rule = faults.trigger(faults.WRITE_DATA, name)
            if rule is not None:
                handle.write(reader.read(rule.truncate_at or 0))
                handle.flush()
                raise faults.InjectedFault(
                    f"injected fault: write.data on {name!r} "
                    f"after {rule.truncate_at or 0} byte(s)"
                )
            while True:
                chunk = reader.read(chunk_bytes)
                if not chunk:
                    break
                handle.write(chunk)
                copied += len(chunk)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        faults.raise_if_triggered(faults.WRITE_RENAME, name)
        os.replace(tmp_path, path)
    except BaseException as exc:
        if not isinstance(exc, faults.InjectedFault):
            with contextlib.suppress(OSError):
                os.unlink(tmp_path)
        raise
    if fsync:
        fsync_directory(directory)
    obs_metrics.inc(RELIABILITY_ATOMIC_WRITES)
    obs_metrics.inc(RELIABILITY_ATOMIC_BYTES, copied)
    return copied


def atomic_write_json(
    path: str,
    payload: Any,
    indent: int = 1,
    sort_keys: bool = False,
    default: Any = None,
    fsync: bool = True,
) -> None:
    """Atomically write ``payload`` as JSON (UTF-8) to ``path``."""
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys, default=default)
    atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_npz(
    path: str, arrays: Mapping[str, np.ndarray], fsync: bool = True
) -> None:
    """Atomically write a name->array mapping as an ``.npz`` archive."""
    buffer = io.BytesIO()
    np.savez(buffer, **dict(arrays))
    atomic_write_bytes(path, buffer.getvalue(), fsync=fsync)
