"""Command-line interface: operate a model lake from the shell.

Subcommands::

    python -m repro generate --dir LAKE_DIR [--seed N] [--resume] [--shard] ...
    python -m repro fsck     LAKE_DIR [--repair] [--workers N] [--json]
    python -m repro migrate  --dir LAKE_DIR [--shard | --flat]
    python -m repro stats    --dir LAKE_DIR [--json]
    python -m repro search   --dir LAKE_DIR --query TEXT [--method M] [-k N]
    python -m repro query    --dir LAKE_DIR --q "FIND MODELS WHERE ..."
    python -m repro audit    --dir LAKE_DIR --model NAME_OR_ID
    python -m repro cite     --dir LAKE_DIR --model NAME_OR_ID
    python -m repro card     --dir LAKE_DIR --model NAME_OR_ID
    python -m repro metrics  --dir LAKE_DIR [--json] [--top N]
    python -m repro trace    report FILE [--top N] [--flame FILE] [--json]
    python -m repro bench    [--smoke] [--select NAMES] [--check]
                             [--results DIR] [--no-record] [--json]
    python -m repro lint     [PATHS ...] [--strict] [--graph] [--dataflow]
                             [--perf] [--json] [--select RULES]
                             [--ignore RULES] [--explain [RULE]]
                             [--baseline-update]
    python -m repro graph    [PATHS ...] [--dot | --json] [--out FILE]
                             [--cfg FUNC | --cfg path.py:FUNC]
    python -m repro perf-audit [PATHS ...] [--trace FILE] [--json] [--top N]

Global flags (before the subcommand)::

    --trace FILE      export hierarchical spans of this run as JSONL
    --profile         add CPU time + peak allocations to every span
    --log-level LVL   structured-log verbosity (default WARNING)

Every lake-directory command leaves its metrics snapshot at
``LAKE_DIR/metrics.json``; ``repro metrics`` prints the snapshot of the
last run against that lake (counters, gauges, latency percentiles).

Lakes are persisted with :mod:`repro.lake.persist`, so a lake generated
once can be searched, audited, and cited across invocations.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import asdict
from typing import Callable, List, Optional

from repro.analysis import LintConfig, collect_sources, render_json, render_text, run_lint
from repro.analysis.dataflow import find_function, render_cfg_dot, render_cfg_text
from repro.analysis.explain import explain_index, explain_rule, explainable_rules
from repro.analysis.perf import (
    DEFAULT_PERF_CACHE_NAME,
    PerfCache,
    analyze_perf,
    audit_findings,
    render_audit_json,
    render_audit_text,
)
from repro.analysis.graph import (
    build_project,
    load_contract,
    render_graph_dot,
    render_graph_json,
)
from repro.core.audit import ModelAuditor
from repro.core.citation import cite_model
from repro.core.docgen import CardGenerator
from repro.core.search import SearchEngine, execute_query
from repro.data.probes import make_text_probes
from repro.errors import AmbiguousModelNameError, ModelNotFoundError, ReproError
from repro.lake import LakeSpec, load_lake, migrate_lake
from repro.lake.generator import LakeGenerator
from repro.lake.stats import compute_statistics
from repro.obs import JSONLExporter, get_registry, trace, tracing
from repro.obs import logging as obs_logging
from repro.reliability.atomic import atomic_write_json
from repro.reliability.fsck import fsck_lake

_METRICS_FILE = "metrics.json"


def _resolve(lake, name_or_id: str) -> str:
    if name_or_id in lake:
        return name_or_id
    matches = lake.find_by_name(name_or_id)
    if len(matches) == 1:
        return matches[0].model_id
    if len(matches) > 1:
        raise AmbiguousModelNameError(
            name_or_id, [record.model_id for record in matches]
        )
    raise ModelNotFoundError(name_or_id)


def _emit(payload, as_json: bool, render: Callable[[], str]) -> None:
    """Shared ``--json`` helper: machine-readable or human rendering."""
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    else:
        print(render())


def _persist_metrics(directory: Optional[str], command: str) -> None:
    """Write this run's metrics snapshot next to the lake it touched."""
    if not directory or not os.path.isdir(directory):
        return
    payload = {
        "command": command,
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "metrics": get_registry().snapshot(),
    }
    atomic_write_json(
        os.path.join(directory, _METRICS_FILE), payload,
        indent=1, sort_keys=True, default=str,
    )


def _cache_dir(lake_dir: str) -> str:
    """Embedding-cache location for a persisted lake."""
    return os.path.join(lake_dir, "cache")


def _cmd_generate(args) -> int:
    spec = LakeSpec(
        num_foundations=args.foundations,
        chains_per_foundation=args.chains,
        max_chain_depth=args.depth,
        docs_per_domain=args.docs,
        seed=args.seed,
        num_lm_foundations=args.lm_foundations,
        opaque_names=args.opaque_names,
        workers=args.workers,
    )
    print(
        f"generating lake (seed={args.seed}, workers={args.workers}"
        f"{', resuming' if args.resume else ''}) ...",
        file=sys.stderr,
    )
    # Waves checkpoint into the lake directory as they complete; a run
    # killed mid-wave continues with --resume instead of retraining.
    generator = LakeGenerator(
        spec,
        checkpoint_dir=os.path.join(args.dir, ".checkpoint"),
        resume=args.resume,
    )
    bundle = generator.generate()
    bundle.save(args.dir, sharded=True if args.shard else None)
    # Only now is the lake durable; a crash during save_lake above would
    # still have been resumable from the retained checkpoints.
    generator.clear_checkpoint()
    print(f"saved {bundle.num_models} models to {args.dir}")
    print(compute_statistics(bundle.lake).to_text())
    return 0


def _cmd_migrate(args) -> int:
    sharded = None
    if args.shard:
        sharded = True
    elif args.flat:
        sharded = False
    summary = migrate_lake(args.dir, sharded=sharded)
    layout = summary["to_layout"]
    placement = (
        f"sharded (prefix_len={layout['prefix_len']})"
        if layout["sharded"] else "flat"
    )
    print(
        f"migrated {summary['models']} model(s) in {args.dir} to "
        f"{placement} layout; removed {summary['removed_files']} "
        f"stale file(s)"
    )
    return 0


def _cmd_fsck(args) -> int:
    try:
        report = fsck_lake(args.dir, repair=args.repair, workers=args.workers)
    except FileNotFoundError as error:
        # fsck deliberately avoids the lake loader, so the missing-dir
        # error arrives as OSError rather than a ReproError; map it onto
        # the CLI's uniform error surface.
        print(f"error: {error}", file=sys.stderr)
        return 2
    _emit(report.to_json_payload(), args.json, report.to_text)
    return report.exit_code()


def _cmd_stats(args) -> int:
    lake = load_lake(args.dir)
    statistics = compute_statistics(lake)
    _emit(asdict(statistics), args.json, statistics.to_text)
    return 0


def _cmd_search(args) -> int:
    lake = load_lake(args.dir)
    engine = SearchEngine(lake, make_text_probes(), cache_dir=_cache_dir(args.dir))
    hits = engine.search(args.query, k=args.k, method=args.method)
    if not hits:
        print("no results")
        return 1
    for rank, hit in enumerate(hits, start=1):
        record = lake.get_record(hit.model_id)
        print(f"{rank:>2}. {record.name:<44} {hit.score:.3f}  [{hit.model_id}]")
    return 0


def _cmd_query(args) -> int:
    lake = load_lake(args.dir)
    engine = SearchEngine(lake, make_text_probes(), cache_dir=_cache_dir(args.dir))
    hits = execute_query(engine, args.q)
    for rank, hit in enumerate(hits, start=1):
        record = lake.get_record(hit.model_id)
        print(f"{rank:>2}. {record.name:<44} {hit.score:.3f}  [{hit.model_id}]")
    return 0 if hits else 1


def _cmd_serve(args) -> int:
    from repro.serve import ServeConfig, run_server

    if args.window_ms < 0:
        print("error: --window-ms must be >= 0", file=sys.stderr)
        return 2
    config = ServeConfig(
        directory=args.dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        window=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        index_backend=args.backend,
    )

    def banner(server) -> None:
        print(
            f"serving {args.dir} on http://{config.host}:{server.port} "
            f"(models={len(server.snapshot.lake)}, "
            f"window={args.window_ms:.1f}ms, workers={config.workers})",
            flush=True,
        )

    return run_server(config, ready=banner)


def _cmd_audit(args) -> int:
    lake = load_lake(args.dir)
    model_id = _resolve(lake, args.model)
    generator = CardGenerator(lake, make_text_probes())
    report = ModelAuditor(lake, generator).audit(model_id)
    print(report.to_text())
    return 0 if report.compliance_rate >= 0.6 else 1


def _cmd_cite(args) -> int:
    lake = load_lake(args.dir)
    model_id = _resolve(lake, args.model)
    citation = cite_model(lake, model_id)
    print(citation.key())
    print(citation.to_bibtex())
    return 0


def _cmd_card(args) -> int:
    lake = load_lake(args.dir)
    model_id = _resolve(lake, args.model)
    print(lake.get_record(model_id).card.to_markdown())
    return 0


def _render_metrics(payload: dict) -> str:
    metrics = payload.get("metrics", {})
    lines = [
        f"last command:         {payload.get('command', '?')} "
        f"({payload.get('written_at', 'unknown time')})",
    ]
    counters = metrics.get("counters", {})
    if counters:
        lines.append("counters:")
        lines.extend(
            f"  {name:<44} {value}" for name, value in sorted(counters.items())
        )
    gauges = metrics.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        lines.extend(
            f"  {name:<44} {value:.6g}" for name, value in sorted(gauges.items())
        )
    histograms = metrics.get("histograms", {})
    if histograms:
        lines.append("histograms (count | mean | p50 | p90 | p99):")
        for name, summary in sorted(histograms.items()):
            cells = " | ".join(
                "-" if summary.get(key) is None else f"{summary[key]:.6g}"
                for key in ("mean", "p50", "p90", "p99")
            )
            lines.append(f"  {name:<44} {summary.get('count', 0)} | {cells}")
    if len(lines) == 1:
        lines.append("no metrics recorded")
    return "\n".join(lines)


def _render_top_operations(payload: dict, top: int) -> str:
    """The N slowest operations by p99, straight from the histograms."""
    histograms = payload.get("metrics", {}).get("histograms", {})
    rows = [
        (name, summary)
        for name, summary in histograms.items()
        if summary.get("p99") is not None
    ]
    if not rows:
        return "no latency histograms recorded"
    rows.sort(key=lambda item: item[1]["p99"], reverse=True)
    lines = [
        f"slowest operations (top {min(top, len(rows))} of {len(rows)} by p99):",
        f"  {'operation':<44} {'count':>7} {'p50':>10} {'p90':>10} {'p99':>10}",
    ]
    for name, summary in rows[:top]:
        cells = " ".join(
            "-".rjust(10) if summary.get(key) is None
            else f"{summary[key]:.6g}".rjust(10)
            for key in ("p50", "p90", "p99")
        )
        lines.append(f"  {name:<44} {summary.get('count', 0):>7} {cells}")
    return "\n".join(lines)


def _cmd_metrics(args) -> int:
    path = os.path.join(args.dir, _METRICS_FILE)
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    else:
        # No recorded run yet: load the lake so this process exercises
        # the stores, and report the fresh snapshot.
        load_lake(args.dir)
        payload = {
            "command": "metrics",
            "written_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            "metrics": get_registry().snapshot(),
        }
    if args.top is not None:
        _emit(payload, args.json, lambda: _render_top_operations(payload, args.top))
    else:
        _emit(payload, args.json, lambda: _render_metrics(payload))
    return 0


def _cmd_trace_report(args) -> int:
    from repro.obs.analyze import (
        analyze_trace,
        folded_stacks,
        load_trace,
        render_report,
    )

    spans = load_trace(args.file)
    if not spans:
        print(f"error: no spans in {args.file}", file=sys.stderr)
        return 1
    report = analyze_trace(spans)
    if args.flame:
        with open(args.flame, "w") as handle:
            handle.write("\n".join(folded_stacks(report)) + "\n")
        print(f"wrote folded stacks to {args.flame}", file=sys.stderr)
    payload = {
        "span_count": report.span_count,
        "trace_count": report.trace_count,
        "total_duration": report.total_duration,
        "profiled": report.profiled,
        "critical_path": [
            {
                "name": span.name,
                "duration": span.duration,
                "self_time": span.self_time,
            }
            for span in report.critical_path
        ],
        "operations": [
            {
                "name": op.name,
                "count": op.count,
                "total": op.total,
                "self_total": op.self_total,
                "mean": op.mean,
                "max": op.max_duration,
                "errors": op.errors,
            }
            for op in report.operations[: args.top]
        ],
    }
    _emit(payload, args.json, lambda: render_report(report, top=args.top))
    return 0


def _cmd_bench(args) -> int:
    from repro.obs import timeseries
    from repro.perf import registered_benches

    mode = "smoke" if args.smoke else "full"
    benches = registered_benches()
    selected = _parse_rule_list(args.select)
    if selected:
        known = {spec.name for spec in benches}
        unknown = sorted(set(selected) - known)
        if unknown:
            print(
                f"error: unknown benchmark(s) {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})",
                file=sys.stderr,
            )
            return 2
        benches = [spec for spec in benches if spec.name in selected]
    failed: List[str] = []
    documents = []
    for spec in benches:
        print(f"[bench] {spec.name} ({mode}) ...", file=sys.stderr)
        metrics = spec.fn(mode)
        result = timeseries.BenchResult(bench=spec.name, mode=mode, metrics=metrics)
        document = {"result": result.to_dict()}
        history = timeseries.load_trajectory(args.results, spec.name)
        if args.check:
            report = timeseries.check_regression(
                result, history, tolerances=spec.tolerances
            )
            document["check"] = {
                "passed": report.passed,
                "baseline_count": report.baseline_count,
                "regressions": [check.metric for check in report.regressions],
            }
            if not args.json:
                print(report.to_text())
            if not report.passed:
                failed.append(spec.name)
        elif not args.json:
            rendered = " ".join(
                f"{name}={value:.6g}" for name, value in sorted(metrics.items())
            )
            print(f"{spec.name}: {rendered}")
        if not args.no_record:
            path = timeseries.append_result(args.results, result)
            print(f"[bench] recorded -> {path}", file=sys.stderr)
        documents.append(document)
    if args.json:
        print(json.dumps(documents, indent=2, sort_keys=True, default=str))
    if failed:
        print(
            f"error: perf regression in: {', '.join(failed)}", file=sys.stderr
        )
        return 1
    return 0


def _parse_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    names = [name.strip() for name in raw.split(",") if name.strip()]
    return names or None


def _cmd_lint(args) -> int:
    if args.explain is not None:
        if args.explain == "":
            # Bare --explain: the grouped index of every rule.
            print(explain_index())
            return 0
        rendered = explain_rule(args.explain)
        if rendered is None:
            known = ", ".join(explainable_rules())
            print(
                f"error: unknown rule {args.explain!r}; known rules: {known}",
                file=sys.stderr,
            )
            return 2
        print(rendered)
        return 0
    config = LintConfig(
        paths=args.paths,
        root=args.root,
        baseline_path=args.baseline,
        cache_path=args.cache,
        use_cache=not args.no_cache,
        # Graph, dataflow, and perf rules guard the architecture, the
        # concurrency/resource invariants, and the hot paths, so strict
        # mode implies all three.
        graph=(args.graph or args.strict) and not args.no_graph,
        dataflow=(args.dataflow or args.strict) and not args.no_dataflow,
        perf=(args.perf or args.strict) and not args.no_perf,
        arch_path=args.arch,
        select=_parse_rule_list(args.select),
        ignore=_parse_rule_list(args.ignore) or (),
        baseline_update=args.baseline_update,
    )
    result = run_lint(config)
    if args.json:
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return result.exit_code(strict=args.strict)


def _cmd_perf_audit(args) -> int:
    from repro.obs import timeseries
    from repro.obs.analyze import analyze_trace, load_trace

    root = os.path.abspath(args.root)
    contract = load_contract(
        args.arch or os.path.join(root, ".repro-arch.toml")
    )
    sources = collect_sources(root, args.paths)
    project = build_project(sources, contract)
    cache = PerfCache(os.path.join(root, DEFAULT_PERF_CACHE_NAME))
    report = analyze_perf(sources, project, cache)
    cache.save()
    trace_report = None
    if args.trace_file:
        spans = load_trace(args.trace_file)
        trace_report = analyze_trace(spans)
    audit = audit_findings(
        report.findings,
        sources,
        source_roots=project.source_roots,
        trace_report=trace_report,
    )
    # The trajectory join lives here, not in the analysis layer: the
    # layer contract keeps repro.analysis off repro.obs.timeseries.
    trajectory = timeseries.load_trajectory(args.results, "lint.perf")
    trajectory_note = None
    if trajectory:
        latest = trajectory[-1]
        cold = latest.metrics.get("cold_seconds")
        trajectory_note = {
            "bench": "lint.perf",
            "points": len(trajectory),
            "latest_mode": latest.mode,
            "latest_cold_seconds": cold,
        }
    if args.json:
        payload = render_audit_json(audit, top=args.top)
        if trajectory_note:
            payload["trajectory"] = trajectory_note
        print(json.dumps(payload, indent=2, sort_keys=True, default=str))
    else:
        print(render_audit_text(audit, top=args.top))
        if trajectory_note:
            print(
                f"trajectory: lint.perf has {trajectory_note['points']} "
                f"recorded point(s), latest cold sweep "
                f"{trajectory_note['latest_cold_seconds']}s "
                f"({trajectory_note['latest_mode']})"
            )
    return 0


def _cmd_graph(args) -> int:
    root = os.path.abspath(args.root)
    contract = load_contract(
        args.arch or os.path.join(root, ".repro-arch.toml")
    )
    sources = collect_sources(root, args.paths)
    if args.cfg:
        fn = find_function(sources, args.cfg)
        if fn is None:
            print(f"error: no function named {args.cfg!r}", file=sys.stderr)
            return 2
        cfg = fn.cfg
        rendered = render_cfg_dot(cfg) if args.dot else render_cfg_text(cfg)
        if args.out:
            with open(args.out, "w") as handle:
                handle.write(rendered)
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            print(rendered)
        return 0
    project = build_project(sources, contract)
    if args.dot:
        rendered = render_graph_dot(project)
    else:
        rendered = render_graph_json(project, closures=args.closures)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered)
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(rendered)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Model-lake operations"
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="export spans of this invocation as JSONL to FILE",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="record CPU time and peak allocations on every span "
             "(use with --trace)",
    )
    parser.add_argument(
        "--log-level", default="WARNING",
        help="structured-log level for the repro library (default WARNING)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate and save a lake")
    generate.add_argument("--dir", required=True)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--foundations", type=int, default=2)
    generate.add_argument("--chains", type=int, default=4)
    generate.add_argument("--depth", type=int, default=1)
    generate.add_argument("--docs", type=int, default=18)
    generate.add_argument("--lm-foundations", type=int, default=0)
    generate.add_argument("--opaque-names", action="store_true")
    generate.add_argument(
        "--workers", type=int, default=1,
        help="parallel training workers (result is identical for any value)",
    )
    generate.add_argument(
        "--resume", action="store_true",
        help="resume a previously interrupted generation from its "
             "wave checkpoints",
    )
    generate.add_argument(
        "--shard", action="store_true",
        help="force the sharded on-disk layout regardless of lake size "
             "(default: auto-shard large lakes)",
    )
    generate.set_defaults(func=_cmd_generate)

    fsck = sub.add_parser(
        "fsck", help="verify a saved lake's on-disk integrity"
    )
    fsck.add_argument("dir", help="lake directory to check")
    fsck.add_argument("--repair", action="store_true",
                      help="quarantine corrupt artifacts and remove "
                           "stale temp files")
    fsck.add_argument("--workers", type=int, default=1,
                      help="parallel weight-check workers (the report is "
                           "identical for any value)")
    fsck.add_argument("--json", action="store_true",
                      help="emit machine-readable JSON")
    fsck.set_defaults(func=_cmd_fsck)

    migrate = sub.add_parser(
        "migrate", help="rewrite a saved lake to the current on-disk layout"
    )
    migrate.add_argument("--dir", required=True)
    placement = migrate.add_mutually_exclusive_group()
    placement.add_argument("--shard", action="store_true",
                           help="force the sharded layout")
    placement.add_argument("--flat", action="store_true",
                           help="force the flat (unsharded) layout")
    migrate.set_defaults(func=_cmd_migrate)

    stats = sub.add_parser("stats", help="lake statistics")
    stats.add_argument("--dir", required=True)
    stats.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    stats.set_defaults(func=_cmd_stats)

    search = sub.add_parser("search", help="free-text model search")
    search.add_argument("--dir", required=True)
    search.add_argument("--query", required=True)
    search.add_argument("--method", default="hybrid",
                        choices=["keyword", "behavioral", "hybrid"])
    search.add_argument("-k", type=int, default=5)
    search.set_defaults(func=_cmd_search)

    query = sub.add_parser("query", help="declarative model query")
    query.add_argument("--dir", required=True)
    query.add_argument("--q", required=True)
    query.set_defaults(func=_cmd_query)

    serve = sub.add_parser(
        "serve", help="serve lake search over HTTP (long-lived)"
    )
    serve.add_argument("--dir", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8484,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--workers", type=int, default=2,
                       help="scoring threads (batches overlap across them)")
    serve.add_argument("--window-ms", type=float, default=2.0,
                       help="micro-batch latency window; 0 disables batching")
    serve.add_argument("--max-batch", type=int, default=64,
                       help="dispatch a batch early once this full")
    serve.add_argument("--backend", default="flat",
                       choices=["flat", "hnsw", "sharded"],
                       help="behavioral index backend")
    serve.set_defaults(func=_cmd_serve)

    audit = sub.add_parser("audit", help="audit one model")
    audit.add_argument("--dir", required=True)
    audit.add_argument("--model", required=True)
    audit.set_defaults(func=_cmd_audit)

    cite = sub.add_parser("cite", help="cite one model")
    cite.add_argument("--dir", required=True)
    cite.add_argument("--model", required=True)
    cite.set_defaults(func=_cmd_cite)

    card = sub.add_parser("card", help="print a model card")
    card.add_argument("--dir", required=True)
    card.add_argument("--model", required=True)
    card.set_defaults(func=_cmd_card)

    metrics = sub.add_parser(
        "metrics", help="metrics snapshot of the last run against a lake"
    )
    metrics.add_argument("--dir", required=True)
    metrics.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")
    metrics.add_argument("--top", type=int, default=None, metavar="N",
                         help="show only the N slowest operations by p99")
    metrics.set_defaults(func=_cmd_metrics)

    trace_cmd = sub.add_parser(
        "trace", help="analyze an exported trace file"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_report = trace_sub.add_parser(
        "report",
        help="critical path, hotspots, and per-operation aggregates",
    )
    trace_report.add_argument("file", help="JSONL trace (from --trace FILE)")
    trace_report.add_argument("--top", type=int, default=10, metavar="N",
                              help="hotspot rows to show (default 10)")
    trace_report.add_argument("--flame", default=None, metavar="FILE",
                              help="also write folded stacks for "
                                   "flamegraph renderers to FILE")
    trace_report.add_argument("--json", action="store_true",
                              help="emit machine-readable JSON")
    trace_report.set_defaults(func=_cmd_trace_report)

    bench = sub.add_parser(
        "bench", help="run the operational perf suite and record the trajectory"
    )
    bench.add_argument("--smoke", action="store_true",
                       help="small fast variants suitable for CI")
    bench.add_argument("--select", default=None, metavar="NAME[,NAME...]",
                       help="run only these benchmarks")
    bench.add_argument("--check", action="store_true",
                       help="fail (exit 1) if any metric regresses beyond "
                            "its tolerance vs the recorded trajectory")
    bench.add_argument("--results", default=os.path.join("benchmarks", "results"),
                       metavar="DIR",
                       help="trajectory location (default benchmarks/results)")
    bench.add_argument("--no-record", action="store_true",
                       help="measure and check without appending to the "
                            "trajectory")
    bench.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON")
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="static analysis of the repo's invariants"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    lint.add_argument(
        "--root", default=".",
        help="project root: paths, baseline, and cache resolve against it",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="fail on warnings and stale baseline entries, not just errors",
    )
    lint.add_argument("--json", action="store_true",
                      help="emit the stable machine-readable report")
    lint.add_argument("--verbose", action="store_true",
                      help="also list baseline-suppressed findings")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="suppression ledger (default ROOT/.repro-lint.json)")
    lint.add_argument("--cache", default=None, metavar="FILE",
                      help="findings cache (default ROOT/.repro-lint-cache.json)")
    lint.add_argument("--no-cache", action="store_true",
                      help="ignore and do not write the findings cache")
    lint.add_argument("--graph", action="store_true",
                      help="also run whole-program graph rules "
                           "(implied by --strict)")
    lint.add_argument("--no-graph", action="store_true",
                      help="skip graph rules even under --strict")
    lint.add_argument("--dataflow", action="store_true",
                      help="also run CFG/taint dataflow rules "
                           "(implied by --strict)")
    lint.add_argument("--no-dataflow", action="store_true",
                      help="skip dataflow rules even under --strict")
    lint.add_argument("--perf", action="store_true",
                      help="also run cost-model perf rules "
                           "(implied by --strict)")
    lint.add_argument("--no-perf", action="store_true",
                      help="skip perf rules even under --strict")
    lint.add_argument("--explain", nargs="?", const="", default=None,
                      metavar="RULE",
                      help="print what RULE checks, with a minimal "
                           "positive/negative example, then exit; with "
                           "no RULE, list every rule grouped by pack")
    lint.add_argument("--baseline-update", action="store_true",
                      help="rewrite the baseline ledger in place: drop "
                           "stale entries, add new findings with a TODO "
                           "reason that --strict still rejects")
    lint.add_argument("--arch", default=None, metavar="FILE",
                      help="layer contract (default ROOT/.repro-arch.toml)")
    lint.add_argument("--select", default=None, metavar="RULE[,RULE...]",
                      help="run only these rules")
    lint.add_argument("--ignore", default=None, metavar="RULE[,RULE...]",
                      help="drop findings of these rules")
    lint.set_defaults(func=_cmd_lint)

    graph = sub.add_parser(
        "graph", help="export the project import graph"
    )
    graph.add_argument(
        "paths", nargs="*", default=["src", "tests", "benchmarks"],
        help="files or directories to include (default: src tests benchmarks)",
    )
    graph.add_argument(
        "--root", default=".",
        help="project root: paths and the contract resolve against it",
    )
    graph.add_argument("--dot", action="store_true",
                       help="emit Graphviz source instead of JSON")
    graph.add_argument("--json", action="store_true",
                       help="emit the stable JSON document (default)")
    graph.add_argument("--closures", action="store_true",
                       help="include each module's reverse-import closure "
                            "in the JSON document")
    graph.add_argument("--arch", default=None, metavar="FILE",
                       help="layer contract (default ROOT/.repro-arch.toml)")
    graph.add_argument("--cfg", default=None, metavar="FUNC",
                       help="render the control-flow graph of one function "
                            "(fully-qualified, bare name, or the exact "
                            "path/to/file.py:qualname form) instead of the "
                            "import graph; combine with --dot for Graphviz")
    graph.add_argument("--out", default=None, metavar="FILE",
                       help="write to FILE instead of stdout")
    graph.set_defaults(func=_cmd_graph)

    perf_audit = sub.add_parser(
        "perf-audit",
        help="rank perf-lint findings by measured profile self-time",
    )
    perf_audit.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    perf_audit.add_argument(
        "--root", default=".",
        help="project root: paths and the contract resolve against it",
    )
    # dest avoids clashing with the global --trace (span export).
    perf_audit.add_argument(
        "--trace", dest="trace_file", default=None, metavar="FILE",
        help="JSONL trace to join against: findings in functions the "
             "profile never saw are demoted to info",
    )
    perf_audit.add_argument(
        "--results", default=os.path.join("benchmarks", "results"),
        metavar="DIR",
        help="trajectory location for the lint.perf context line "
             "(default benchmarks/results)",
    )
    perf_audit.add_argument("--top", type=int, default=0, metavar="N",
                            help="show only the N hottest findings")
    perf_audit.add_argument("--json", action="store_true",
                            help="emit machine-readable JSON")
    perf_audit.add_argument("--arch", default=None, metavar="FILE",
                            help="layer contract "
                                 "(default ROOT/.repro-arch.toml)")
    perf_audit.set_defaults(func=_cmd_perf_audit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # One CLI invocation == one metrics run: the snapshot persisted next
    # to the lake describes exactly this command.
    get_registry().reset()
    obs_logging.configure(args.log_level)
    exporter = None
    if args.trace:
        try:
            exporter = tracing.add_exporter(JSONLExporter(args.trace))
        except OSError as error:
            print(f"error: cannot open trace file: {error}", file=sys.stderr)
            return 2
    if args.profile:
        tracing.set_profiling(True)
    try:
        with trace(f"cli.{args.command}"):
            code = args.func(args)
        # metrics is a read-only reporter, and fsck must not write into
        # the very directory whose integrity it is judging.
        if args.command not in ("metrics", "fsck"):
            _persist_metrics(getattr(args, "dir", None), args.command)
        return code
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if args.profile:
            tracing.set_profiling(False)
        if exporter is not None:
            tracing.remove_exporter(exporter)
            exporter.close()


if __name__ == "__main__":
    raise SystemExit(main())
