"""Model Lakes: management, search, attribution, and versioning for
populations of trained models.

A faithful, self-contained implementation of the system envisioned in
*Model Lakes* (Pal, Bau, Miller — EDBT 2025): a lake stores genuinely
trained models with heterogeneous documentation quality, and lake tasks
— attribution, versioning, search, benchmarking, documentation
generation, auditing, citation — operate over the three viewpoints
``M = (D, A, f*, theta, p_theta)``.

Quickstart::

    from repro.lake import LakeSpec, generate_lake
    from repro.core.search import SearchEngine

    bundle = generate_lake(LakeSpec(seed=0))
    engine = SearchEngine(bundle.lake)
    for hit in engine.search("summarize legal documents", k=5):
        print(bundle.lake.get_record(hit.model_id).name, hit.score)
"""

__version__ = "0.1.0"

from repro import data, errors, index, interp, lake, nn, obs, transforms, utils, weightspace
from repro import core

__all__ = [
    "__version__",
    "core", "data", "errors", "index", "interp", "lake", "nn", "obs",
    "transforms", "utils", "weightspace",
]
