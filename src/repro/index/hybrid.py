"""Hybrid index: weighted fusion of a metadata index and a content index.

§5: "Many of the model lake tasks will benefit from hybrid approach,
that indexes both metadata and model embeddings."  The hybrid index
holds one vector index per channel and fuses their similarity scores
with a mixing weight alpha (swept in the E1 ablation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError


class HybridIndex:
    """Score-fusion over a metadata channel and a content channel.

    Both channels must be indexes exposing ``query(vector, k)`` with
    cosine-similarity scores.  Fused score =
    ``alpha * metadata_sim + (1 - alpha) * content_sim``; items missing
    from one channel's top results contribute similarity 0 there.
    """

    def __init__(self, metadata_index, content_index, alpha: float = 0.5):
        if not 0.0 <= alpha <= 1.0:
            raise ConfigError(f"alpha must be in [0, 1], got {alpha}")
        self.metadata_index = metadata_index
        self.content_index = content_index
        self.alpha = alpha

    def query(
        self,
        metadata_vector: Optional[np.ndarray],
        content_vector: Optional[np.ndarray],
        k: int = 10,
        candidate_pool: int = 50,
    ) -> List[Tuple[str, float]]:
        """Fused top-k; either channel's query vector may be None."""
        scores: Dict[str, float] = {}
        if metadata_vector is not None and self.alpha > 0:
            for item_id, sim in self.metadata_index.query(metadata_vector, k=candidate_pool):
                scores[item_id] = scores.get(item_id, 0.0) + self.alpha * sim
        if content_vector is not None and self.alpha < 1:
            for item_id, sim in self.content_index.query(content_vector, k=candidate_pool):
                scores[item_id] = scores.get(item_id, 0.0) + (1.0 - self.alpha) * sim
        ranked = sorted(scores.items(), key=lambda kv: -kv[1])
        return ranked[:k]
