"""Persistent embedding cache keyed by weight-store content digests.

Embedding a model means rehydrating its weights and running probes or
SVDs over them — by far the most expensive part of building a
:class:`~repro.core.search.engine.SearchEngine`.  But an embedding is a
pure function of (embedder identity, model weights), and the weight
store already names every parameter set by content digest.  So the cache
key is ``(space, weights_digest)`` where *space* encodes the embedder
and its configuration; any model whose digest is cached skips
rehydration and embedding entirely.

On disk each space is one ``.npz`` under the cache directory
(conventionally ``<lake>/cache/``) mapping digests to vectors, so warm
rebuilds across processes cost one file read.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Set

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.instrument import EMBED_CACHE_HITS, EMBED_CACHE_MISSES
from repro.obs.logging import get_logger
from repro.reliability.atomic import atomic_write_npz

_log = get_logger("index.embed_cache")


class EmbeddingCache:
    """Two-level (memory + optional directory) embedding cache.

    ``directory=None`` keeps the cache purely in-memory, which still
    dedups embeddings within a process; with a directory, spaces are
    persisted as ``embeddings-<space>.npz`` and survive across runs.
    """

    def __init__(self, directory: Optional[str] = None):
        self._directory = directory
        self._spaces: Dict[str, Dict[str, np.ndarray]] = {}
        self._dirty: Set[str] = set()
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def _path(self, space: str) -> str:
        assert self._directory is not None
        return os.path.join(self._directory, f"embeddings-{space}.npz")

    def _load_space(self, space: str) -> Dict[str, np.ndarray]:
        vectors = self._spaces.get(space)
        if vectors is not None:
            return vectors
        vectors = {}
        if self._directory is not None and os.path.exists(self._path(space)):
            with np.load(self._path(space)) as archive:
                vectors = {digest: archive[digest] for digest in archive.files}
            _log.debug("space.loaded", space=space, entries=len(vectors))
        self._spaces[space] = vectors
        return vectors

    # ------------------------------------------------------------------
    def get(self, space: str, digest: str) -> Optional[np.ndarray]:
        """Cached embedding for ``digest`` in ``space``, or None."""
        vector = self._load_space(space).get(digest)
        if vector is None:
            obs_metrics.inc(EMBED_CACHE_MISSES)
            return None
        obs_metrics.inc(EMBED_CACHE_HITS)
        return vector

    def put(self, space: str, digest: str, vector: np.ndarray) -> None:
        self._load_space(space)[digest] = np.asarray(vector, dtype=np.float64)
        self._dirty.add(space)

    def __len__(self) -> int:
        return sum(len(vectors) for vectors in self._spaces.values())

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist dirty spaces to disk (atomic per space); no-op in memory mode."""
        if self._directory is None:
            self._dirty.clear()
            return
        for space in sorted(self._dirty):
            vectors = self._spaces[space]
            atomic_write_npz(self._path(space), vectors)
            _log.debug("space.flushed", space=space, entries=len(vectors))
        self._dirty.clear()
