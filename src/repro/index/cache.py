"""Persistent embedding cache keyed by weight-store content digests.

Embedding a model means rehydrating its weights and running probes or
SVDs over them — by far the most expensive part of building a
:class:`~repro.core.search.engine.SearchEngine`.  But an embedding is a
pure function of (embedder identity, model weights), and the weight
store already names every parameter set by content digest.  So the cache
key is ``(space, weights_digest)`` where *space* encodes the embedder
and its configuration; any model whose digest is cached skips
rehydration and embedding entirely.

On disk each space is one ``.npz`` under the cache directory
(conventionally ``<lake>/cache/``) mapping digests to vectors — or,
when the lake itself is sharded, one ``.npz`` *per digest-prefix shard*
under ``embeddings-<space>/<pp>.npz``.  Sharded spaces load lazily, a
shard at a time as digests are looked up, so a warm rebuild touching a
slice of the lake never materializes the whole cache; and each flush
rewrites only the shards that actually changed.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.instrument import EMBED_CACHE_HITS, EMBED_CACHE_MISSES
from repro.obs.logging import get_logger
from repro.reliability.atomic import atomic_write_npz

_log = get_logger("index.embed_cache")


class EmbeddingCache:
    """Two-level (memory + optional directory) embedding cache.

    ``directory=None`` keeps the cache purely in-memory, which still
    dedups embeddings within a process; with a directory, spaces are
    persisted as ``embeddings-<space>.npz`` and survive across runs.
    ``prefix_len`` (matching the lake's
    :class:`~repro.lake.shard.ShardLayout`) shards each space by digest
    prefix instead.
    """

    def __init__(
        self, directory: Optional[str] = None, prefix_len: Optional[int] = None
    ):
        self._directory = directory
        self._prefix_len = prefix_len
        #: space -> shard key -> digest -> vector.  Unsharded caches use
        #: the single shard key "".
        self._spaces: Dict[str, Dict[str, Dict[str, np.ndarray]]] = {}
        self._dirty: Set[Tuple[str, str]] = set()
        # Serializes lazy shard loads, puts, and flushes.  Without it,
        # two requests first-touching the same shard both miss
        # ``shards.get``, both read the npz, and the loser's
        # ``shards[shard] = vectors`` overwrites a dict the winner may
        # already have put fresh embeddings into — which a later flush
        # then persists *without* those entries (silent cache loss).
        # Reentrant because ``put`` loads the shard it writes to.
        self._lock = threading.RLock()
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    def _shard_of(self, digest: str) -> str:
        return digest[: self._prefix_len] if self._prefix_len else ""

    def _path(self, space: str, shard: str) -> str:
        assert self._directory is not None
        if shard:
            return os.path.join(
                self._directory, f"embeddings-{space}", f"{shard}.npz"
            )
        return os.path.join(self._directory, f"embeddings-{space}.npz")

    def _load_shard(self, space: str, shard: str) -> Dict[str, np.ndarray]:
        """The (lazily loaded) digest->vector dict for one shard.

        Runs entirely under the cache lock: exactly one thread performs
        the disk read for a given shard, and every later caller gets the
        *same* dict object, so concurrent puts can never be lost to a
        racing reload.
        """
        with self._lock:
            shards = self._spaces.setdefault(space, {})
            vectors = shards.get(shard)
            if vectors is not None:
                return vectors
            vectors = {}
            if self._directory is not None:
                path = self._path(space, shard)
                if os.path.exists(path):
                    with np.load(path) as archive:  # repro: noqa[whole-file-read]
                        vectors = {
                            digest: archive[digest] for digest in archive.files
                        }
                    _log.debug(
                        "shard.loaded", space=space, shard=shard or "-",
                        entries=len(vectors),
                    )
            shards[shard] = vectors
            return vectors

    # ------------------------------------------------------------------
    def get(self, space: str, digest: str) -> Optional[np.ndarray]:
        """Cached embedding for ``digest`` in ``space``, or None."""
        vector = self._load_shard(space, self._shard_of(digest)).get(digest)
        if vector is None:
            obs_metrics.inc(EMBED_CACHE_MISSES)
            return None
        obs_metrics.inc(EMBED_CACHE_HITS)
        return vector

    def put(self, space: str, digest: str, vector: np.ndarray) -> None:
        shard = self._shard_of(digest)
        with self._lock:
            self._load_shard(space, shard)[digest] = np.asarray(
                vector, dtype=np.float64
            )
            self._dirty.add((space, shard))

    def __len__(self) -> int:
        with self._lock:
            return sum(
                len(vectors)
                for shards in self._spaces.values()
                for vectors in shards.values()
            )

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Persist dirty shards to disk (atomic per file); no-op in memory mode.

        Holds the cache lock for the whole sweep so a concurrent reader
        can neither observe a shard file mid-rewrite through a racing
        lazy load nor slip a put between the snapshot and the dirty-set
        clear (which would silently drop its dirty mark).
        """
        with self._lock:
            if self._directory is None:
                self._dirty.clear()
                return
            for space, shard in sorted(self._dirty):
                vectors = self._spaces[space][shard]
                path = self._path(space, shard)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                atomic_write_npz(path, vectors)
                _log.debug(
                    "shard.flushed", space=space, shard=shard or "-",
                    entries=len(vectors),
                )
            self._dirty.clear()
