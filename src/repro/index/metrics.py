"""Index-quality metrics: recall against exact search."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.index.flat import FlatIndex


def recall_at_k(
    approx_results: Sequence[Tuple[str, float]],
    exact_results: Sequence[Tuple[str, float]],
    k: int,
) -> float:
    """|approx top-k ∩ exact top-k| / k."""
    approx_ids = {item_id for item_id, _ in approx_results[:k]}
    exact_ids = [item_id for item_id, _ in exact_results[:k]]
    if not exact_ids:
        return 1.0
    return len(approx_ids.intersection(exact_ids)) / len(exact_ids)


def measure_recall(
    index,
    exact: FlatIndex,
    queries: np.ndarray,
    k: int = 10,
) -> float:
    """Mean recall@k of ``index`` vs the exact index over query vectors."""
    recalls = [
        recall_at_k(index.query(q, k=k), exact.query(q, k=k), k) for q in queries
    ]
    return float(np.mean(recalls)) if recalls else 1.0
