"""Shard-partitioned nearest-neighbor index with deterministic merge.

A sharded lake groups every artifact by weight-digest prefix; this
index mirrors that partition on the search side.  Each shard owns an
independent backend index (flat or HNSW) over just its items, shard
builds fan out across processes through
:class:`~repro.parallel.WaveExecutor`, and a query probes every shard
and merges the per-shard top-k by ``(-score, id)`` — a total order, so
results are identical for any worker count and any shard arrangement.

With the flat backend the merge is *exactly* equivalent to one global
brute-force index (each shard scan is exact, and the union of exact
top-k supersets contains the global top-k); with HNSW it bounds the
blast radius of approximation to a shard.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError, IndexError_
from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex
from repro.obs.tracing import trace

_BACKENDS = ("flat", "hnsw")


def _build_shard(task) -> Tuple[str, object]:
    """Build one shard's backend index (top-level: wave-picklable)."""
    key, backend, backend_kwargs, ids, vectors = task
    index = (
        HNSWIndex(**backend_kwargs) if backend == "hnsw"
        else FlatIndex(**backend_kwargs)
    )
    index.build(ids, np.asarray(vectors, dtype=np.float64))
    return key, index


class ShardedIndex:
    """Digest-prefix-partitioned index over per-shard backend indexes.

    Parameters
    ----------
    backend:
        ``"flat"`` (exact per shard, exact after merge) or ``"hnsw"``.
    prefix_len:
        Default shard key length taken from each item id when ``build``
        is not given explicit keys.
    workers:
        Shard builds run through a :class:`~repro.parallel.WaveExecutor`
        with this many processes (1 = inline).
    backend_kwargs:
        Forwarded to each shard's backend constructor.
    """

    def __init__(
        self,
        backend: str = "flat",
        prefix_len: int = 2,
        workers: int = 1,
        **backend_kwargs,
    ):
        if backend not in _BACKENDS:
            raise ConfigError(
                f"unknown sharded backend {backend!r}; expected one of {_BACKENDS}"
            )
        self.backend = backend
        self.prefix_len = prefix_len
        self.workers = max(1, int(workers))
        self._backend_kwargs = dict(backend_kwargs)
        self._shards: Dict[str, object] = {}
        self._key_of: Dict[str, str] = {}

    def __len__(self) -> int:
        return len(self._key_of)

    @property
    def shard_keys(self) -> List[str]:
        return sorted(self._shards)

    def build(
        self,
        ids: Sequence[str],
        vectors: np.ndarray,
        keys: Optional[Sequence[str]] = None,
    ) -> None:
        """Partition items by key and build every shard index.

        ``keys`` aligns with ``ids`` and names each item's shard —
        conventionally the first ``prefix_len`` characters of its weight
        digest, falling back to a prefix of the id itself.  Shards build
        in sorted-key order (and in parallel when ``workers > 1``; wave
        results preserve task order, so the result is identical).
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if len(ids) != len(vectors):
            raise IndexError_(f"{len(ids)} ids but {len(vectors)} vectors")
        if keys is None:
            keys = [item_id[: self.prefix_len] for item_id in ids]
        if len(keys) != len(ids):
            raise IndexError_(f"{len(ids)} ids but {len(keys)} shard keys")

        grouped: Dict[str, List[int]] = {}
        for row, key in enumerate(keys):
            grouped.setdefault(str(key), []).append(row)
        tasks = [
            (
                key,
                self.backend,
                self._backend_kwargs,
                [ids[row] for row in grouped[key]],
                vectors[grouped[key]],
            )
            for key in sorted(grouped)
        ]
        with trace(
            "index.sharded.build",
            shards=len(tasks), items=len(ids), workers=self.workers,
        ):
            if self.workers > 1 and len(tasks) > 1:
                from repro.parallel import WaveExecutor

                built = WaveExecutor(workers=self.workers).run_wave(
                    _build_shard, tasks, label="index.shards"
                )
            else:
                built = [_build_shard(task) for task in tasks]
        self._shards = {key: index for key, index in built}
        self._key_of = {}
        for key in sorted(grouped):
            for row in grouped[key]:
                self._key_of[ids[row]] = key

    def query(self, vector: np.ndarray, k: int = 10) -> List[Tuple[str, float]]:
        """Global top-k: probe every shard, merge by ``(-score, id)``."""
        merged: List[Tuple[float, str]] = []
        for key in sorted(self._shards):
            for item_id, score in self._shards[key].query(vector, k=k):
                merged.append((-float(score), item_id))
        merged.sort()
        return [(item_id, -neg) for neg, item_id in merged[:k]]

    def query_batch(
        self, vectors: np.ndarray, k: int = 10
    ) -> List[List[Tuple[str, float]]]:
        """Batched global top-k: one batched probe per shard, then the
        same ``(-score, id)`` merge as :meth:`query`, per row.

        With a flat backend each shard scores the whole batch in a
        single matrix-matrix product, so the scan cost of N coalesced
        queries is one BLAS call per shard instead of N.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        batch = vectors.shape[0]
        if batch == 0:
            return []
        per_query: List[List[Tuple[float, str]]] = [[] for _ in range(batch)]
        for key in sorted(self._shards):
            shard_results = self._shards[key].query_batch(vectors, k=k)
            for row, hits in enumerate(shard_results):
                per_query[row].extend(
                    (-float(score), item_id) for item_id, score in hits
                )
        results: List[List[Tuple[str, float]]] = []
        for merged in per_query:
            merged.sort()
            results.append([(item_id, -neg) for neg, item_id in merged[:k]])
        return results

    def vector_of(self, item_id: str) -> np.ndarray:
        key = self._key_of.get(item_id)
        if key is None:
            raise IndexError_(f"id not in index: {item_id!r}")
        return self._shards[key].vector_of(item_id)
