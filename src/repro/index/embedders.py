"""Model embedders: map lake models into vector spaces for the indexer.

Three embedding families, matching the paper's three viewpoints:

* :class:`BehavioralEmbedder` — extrinsic: the model's *competence
  profile* over a shared probe set (works across model families, the
  property §5's indexer needs).
* :class:`OutputEmbedder` — extrinsic, fine-grained: the full output
  distribution on probes (model-as-query similarity, Lu et al. style).
* :class:`WeightStatEmbedder` — intrinsic: fixed-dimension statistics
  of the parameter tensors (cross-architecture comparable).
* :class:`MetadataEmbedder` — documentation: hashed TF vector of the
  model card text.

All embedders return L2-normalized vectors so cosine similarity is a
dot product everywhere downstream.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.data.probes import ProbeSet
from repro.data.domains import domain_index
from repro.errors import ConfigError
from repro.lake.card import ModelCard
from repro.nn.module import Module
from repro.utils.hashing import array_digest, text_digest
from repro.utils.text import simple_tokenize


def l2_normalize(vector: np.ndarray) -> np.ndarray:
    """Unit-normalize; zero vectors are returned unchanged."""
    norm = np.linalg.norm(vector)
    if norm < 1e-12:
        return vector
    return vector / norm


class _BatchEmbedMixin:
    """Shared batch path: embed many models into one matrix.

    The matrix feeds ``FlatIndex.build`` (one vectorized normalize +
    assignment) instead of per-model ``add`` calls.
    """

    def embed_all(self, models: Sequence[Module]) -> np.ndarray:
        if not models:
            return np.zeros((0, getattr(self, "dim", 0)))
        return np.stack([self.embed(model) for model in models])


class BehavioralEmbedder(_BatchEmbedMixin):
    """Competence profile over a shared probe set.

    For classifier-style models (anything exposing ``predict_proba``),
    component ``i`` is the probability the model assigns to probe ``i``'s
    true domain class.  For language models (anything exposing
    ``forward`` over token ids and no ``predict_proba``), component ``i``
    is ``exp(-NLL_i)``, the per-token likelihood of the probe sequence.
    Both are "how well does the model handle probe i" scores in [0, 1],
    so heterogeneous models land in one comparable space.
    """

    def __init__(self, probes: ProbeSet):
        self.probes = probes
        self.dim = probes.num_probes

    @property
    def space_key(self) -> str:
        """Embedding-cache space: ties cached vectors to this probe set."""
        return f"behavioral-{array_digest(self.probes.tokens, length=12)}"

    def embed(self, model: Module) -> np.ndarray:
        if hasattr(model, "predict_proba"):
            probabilities = model.predict_proba(self.probes.tokens)
            labels = [domain_index(d) for d in self.probes.domains]
            profile = probabilities[np.arange(len(labels)), labels]
        else:
            profile = self._lm_profile(model)
        return l2_normalize(np.asarray(profile, dtype=np.float64))

    def _lm_profile(self, model: Module) -> np.ndarray:
        # Vectorized per-probe exp(-NLL): a "step" is every valid (>0)
        # position except each row's last, targeting the token one
        # position over; rows with fewer than two valid tokens score 0.
        tokens = self.probes.tokens
        logits = model(tokens).data
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        valid = tokens > 0
        counts = valid.sum(axis=1)
        seq_len = tokens.shape[1]
        last = np.where(
            counts > 0, seq_len - 1 - np.argmax(valid[:, ::-1], axis=1), -1
        )
        steps = valid & (np.arange(seq_len)[None, :] < last[:, None])
        targets = np.zeros_like(tokens)
        targets[:, :-1] = tokens[:, 1:]
        gathered = np.take_along_axis(
            log_probs, targets[..., None], axis=2
        )[..., 0]
        step_counts = np.maximum(steps.sum(axis=1), 1)
        nll = -(gathered * steps).sum(axis=1) / step_counts
        return np.where(counts >= 2, np.exp(-nll), 0.0)


class OutputEmbedder:
    """Full flattened output distribution on the probe set.

    Only meaningful within one output space (e.g. classifiers over the
    same label set); used for fine-grained related-model search.
    """

    def __init__(self, probes: ProbeSet):
        self.probes = probes

    def embed(self, model: Module) -> np.ndarray:
        if not hasattr(model, "predict_proba"):
            raise ConfigError(
                "OutputEmbedder requires a model with predict_proba; "
                "use BehavioralEmbedder for heterogeneous model sets"
            )
        return l2_normalize(model.predict_proba(self.probes.tokens).ravel())


class WeightStatEmbedder(_BatchEmbedMixin):
    """Fixed-dimension intrinsic embedding from parameter statistics.

    Cross-architecture comparable: global weight quantiles, moments,
    sparsity, and aggregated per-matrix spectral summaries.  These are
    the "important intrinsic model features" a hybrid index combines
    with metadata (§5 Indexer).
    """

    #: Quantile grid for the global weight distribution.
    QUANTILES = np.linspace(0.02, 0.98, 17)

    def __init__(self, num_singular: int = 4):
        self.num_singular = num_singular
        self.dim = len(self.QUANTILES) + 6 + num_singular

    @property
    def space_key(self) -> str:
        """Embedding-cache space: ties cached vectors to this config."""
        return f"weightstat-s{self.num_singular}"

    def embed(self, model: Module) -> np.ndarray:
        state = model.state_dict()
        flat = np.concatenate([arr.ravel() for arr in state.values()])
        quantiles = np.quantile(flat, self.QUANTILES)
        moments = np.array([
            flat.mean(),
            flat.std(),
            np.abs(flat).mean(),
            float((flat == 0).mean()),                # sparsity (pruning signature)
            float(np.log1p(flat.size)),               # scale proxy
            float(len(state)),                        # depth proxy
        ])
        spectral = self._spectral_summary(state)
        return l2_normalize(np.concatenate([quantiles, moments, spectral]))

    def _spectral_summary(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        """Mean of the top-k normalized singular values across matrices."""
        tops = []
        for arr in state.values():
            if arr.ndim != 2 or min(arr.shape) < 2:
                continue
            singular = np.linalg.svd(arr, compute_uv=False)
            padded = np.zeros(self.num_singular)
            top = singular[: self.num_singular]
            padded[: len(top)] = top / (singular.sum() + 1e-12)
            tops.append(padded)
        if not tops:
            return np.zeros(self.num_singular)
        return np.mean(tops, axis=0)


class MetadataEmbedder:
    """Feature-hashed term-frequency embedding of model-card text."""

    def __init__(self, dim: int = 128):
        if dim <= 0:
            raise ConfigError(f"dim must be positive, got {dim}")
        self.dim = dim

    def embed_card(self, card: ModelCard) -> np.ndarray:
        return self.embed_text(card.text())

    def embed_text(self, text: str) -> np.ndarray:
        vector = np.zeros(self.dim)
        for token in simple_tokenize(text):
            bucket = int(text_digest(token, length=8), 16)
            sign = 1.0 if (bucket >> 1) % 2 == 0 else -1.0
            vector[bucket % self.dim] += sign
        return l2_normalize(vector)

    # Uniform interface: accepts (model, card) like hybrid callers use.
    def embed(self, card: ModelCard) -> np.ndarray:
        return self.embed_card(card)


class ConcatEmbedder:
    """Weighted concatenation of several model embedders."""

    def __init__(self, embedders: Sequence, weights: Optional[Sequence[float]] = None):
        if not embedders:
            raise ConfigError("ConcatEmbedder needs at least one embedder")
        self.embedders = list(embedders)
        self.weights = list(weights) if weights is not None else [1.0] * len(embedders)
        if len(self.weights) != len(self.embedders):
            raise ConfigError("weights must match embedders in length")

    def embed(self, model: Module) -> np.ndarray:
        parts = [
            weight * embedder.embed(model)
            for embedder, weight in zip(self.embedders, self.weights)
        ]
        return l2_normalize(np.concatenate(parts))
