"""Exact (brute-force) nearest-neighbor index — the recall-1.0 baseline."""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.embedders import l2_normalize


class FlatIndex:
    """Exact cosine-similarity search by full scan.

    Serves both as a usable small-lake index and as the ground truth
    against which approximate indexes (HNSW, LSH) are measured.

    Incremental ``add`` calls buffer rows and materialize the matrix
    lazily (one stack per query burst instead of one copy per add);
    ``build`` ingests a whole batch in a single vectorized pass.

    Consistency: every read path (``query``, ``query_batch``,
    ``vector_of``) seals the pending buffer first, under the index lock,
    so a search issued between ``add`` calls always sees every row added
    before it — and two threads touching the index concurrently can
    never double-materialize the buffer (which would duplicate rows) or
    observe a half-written matrix.  ``seal`` exposes the flush
    explicitly for builders that want to pay the stack eagerly.
    """

    def __init__(self) -> None:
        self._ids: List[str] = []
        self._vectors: Optional[np.ndarray] = None
        self._pending: List[np.ndarray] = []
        self._id_to_row: Dict[str, int] = {}
        # One lock serializes buffer mutation and materialization; reads
        # of the sealed matrix happen on a reference captured under the
        # lock, so a concurrent rebuild can never swap it mid-scan.
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        # Locks don't pickle; shard builds ship indexes across process
        # boundaries.  Seal first so the pickled payload is one matrix.
        self.seal()
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._ids)

    def _dim(self) -> Optional[int]:
        if self._vectors is not None:
            return self._vectors.shape[1]
        if self._pending:
            return self._pending[0].shape[0]
        return None

    def add(self, item_id: str, vector: np.ndarray) -> None:
        vector = l2_normalize(np.asarray(vector, dtype=np.float64))
        with self._lock:
            dim = self._dim()
            if dim is not None and vector.shape[0] != dim:
                raise IndexError_(
                    f"vector dim {vector.shape[0]} != index dim {dim}"
                )
            self._pending.append(vector)
            self._id_to_row.setdefault(item_id, len(self._ids))
            self._ids.append(item_id)

    def _materialize_locked(self) -> Tuple[List[str], Optional[np.ndarray]]:
        """Flush pending rows; returns a consistent (ids, matrix) view.

        Must be called with the lock held.  The returned references are
        safe to use after the lock is released: the matrix is replaced
        on growth, never mutated in place.
        """
        if self._pending:
            block = np.stack(self._pending)
            self._vectors = (
                block if self._vectors is None
                else np.concatenate([self._vectors, block])
            )
            self._pending = []
        return self._ids[: len(self._ids)], self._vectors

    def seal(self) -> None:
        """Flush buffered adds now, so later reads pay no stack."""
        with self._lock:
            self._materialize_locked()

    def build(self, ids: Sequence[str], vectors: np.ndarray) -> None:
        """Replace the index contents with a whole batch at once."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if len(ids) != len(vectors):
            raise IndexError_(f"{len(ids)} ids but {len(vectors)} vectors")
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms < 1e-12] = 1.0
        normalized = vectors / norms
        id_to_row: Dict[str, int] = {}
        for row, item_id in enumerate(ids):
            id_to_row.setdefault(item_id, row)
        with self._lock:
            self._vectors = normalized
            self._ids = list(ids)
            self._pending = []
            self._id_to_row = id_to_row

    @staticmethod
    def _top_k(similarities: np.ndarray, k: int) -> np.ndarray:
        """Row indices of the top-k similarities, best first.

        Shared by the single-query and batched paths so both rank one
        score vector with exactly the same operations.
        """
        k = min(k, similarities.shape[0])
        top = np.argpartition(-similarities, k - 1)[:k]
        return top[np.argsort(-similarities[top])]

    def query(self, vector: np.ndarray, k: int = 10) -> List[Tuple[str, float]]:
        """Top-k (id, cosine similarity) pairs, best first."""
        with self._lock:
            ids, matrix = self._materialize_locked()
        if matrix is None or not ids:
            return []
        vector = l2_normalize(np.asarray(vector, dtype=np.float64))
        similarities = matrix @ vector
        top = self._top_k(similarities, k)
        return [(ids[i], float(similarities[i])) for i in top]

    def query_batch(
        self, vectors: np.ndarray, k: int = 10
    ) -> List[List[Tuple[str, float]]]:
        """Top-k for every row of ``vectors`` against one sealed view.

        The batch amortizes the lock, the buffer materialization, and
        (in the serving path) the executor dispatch; each row is then
        scored with *the same* matrix-vector product the single-query
        path uses.  Deliberately not one matrix-matrix product: BLAS
        gemm and gemv accumulate in different orders, so a gemm-scored
        batch returns ULP-different scores depending on which other
        queries shared the batch — and near-tied ranks could flip.
        Bit-identical results regardless of batch composition is the
        contract micro-batched serving relies on.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        if vectors.shape[0] == 0:
            return []
        with self._lock:
            ids, matrix = self._materialize_locked()
        if matrix is None or not ids:
            return [[] for _ in range(vectors.shape[0])]
        results: List[List[Tuple[str, float]]] = []
        # Per-row gemv on purpose: one gemm would break bit-parity with
        # query() (see docstring).
        for row in vectors:  # repro: noqa[python-loop-over-array]
            similarities = matrix @ l2_normalize(row)
            top = self._top_k(similarities, k)
            results.append([(ids[i], float(similarities[i])) for i in top])
        return results

    def vector_of(self, item_id: str) -> np.ndarray:
        with self._lock:
            row = self._id_to_row.get(item_id)
            if row is None:
                raise IndexError_(f"id not in index: {item_id!r}")
            _, matrix = self._materialize_locked()
        assert matrix is not None
        return matrix[row]
