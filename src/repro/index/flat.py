"""Exact (brute-force) nearest-neighbor index — the recall-1.0 baseline."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.embedders import l2_normalize


class FlatIndex:
    """Exact cosine-similarity search by full scan.

    Serves both as a usable small-lake index and as the ground truth
    against which approximate indexes (HNSW, LSH) are measured.
    """

    def __init__(self) -> None:
        self._ids: List[str] = []
        self._vectors: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, item_id: str, vector: np.ndarray) -> None:
        vector = l2_normalize(np.asarray(vector, dtype=np.float64))
        if self._vectors is None:
            self._vectors = vector[None, :]
        else:
            if vector.shape[0] != self._vectors.shape[1]:
                raise IndexError_(
                    f"vector dim {vector.shape[0]} != index dim {self._vectors.shape[1]}"
                )
            self._vectors = np.vstack([self._vectors, vector])
        self._ids.append(item_id)

    def build(self, ids: Sequence[str], vectors: np.ndarray) -> None:
        vectors = np.asarray(vectors, dtype=np.float64)
        if len(ids) != len(vectors):
            raise IndexError_(f"{len(ids)} ids but {len(vectors)} vectors")
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms < 1e-12] = 1.0
        self._vectors = vectors / norms
        self._ids = list(ids)

    def query(self, vector: np.ndarray, k: int = 10) -> List[Tuple[str, float]]:
        """Top-k (id, cosine similarity) pairs, best first."""
        if self._vectors is None or not len(self._ids):
            return []
        vector = l2_normalize(np.asarray(vector, dtype=np.float64))
        similarities = self._vectors @ vector
        k = min(k, len(self._ids))
        top = np.argpartition(-similarities, k - 1)[:k]
        top = top[np.argsort(-similarities[top])]
        return [(self._ids[i], float(similarities[i])) for i in top]

    def vector_of(self, item_id: str) -> np.ndarray:
        try:
            index = self._ids.index(item_id)
        except ValueError:
            raise IndexError_(f"id not in index: {item_id!r}") from None
        assert self._vectors is not None
        return self._vectors[index]
