"""Exact (brute-force) nearest-neighbor index — the recall-1.0 baseline."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexError_
from repro.index.embedders import l2_normalize


class FlatIndex:
    """Exact cosine-similarity search by full scan.

    Serves both as a usable small-lake index and as the ground truth
    against which approximate indexes (HNSW, LSH) are measured.

    Incremental ``add`` calls buffer rows and materialize the matrix
    lazily (one stack per query burst instead of one copy per add);
    ``build`` ingests a whole batch in a single vectorized pass.
    """

    def __init__(self) -> None:
        self._ids: List[str] = []
        self._vectors: Optional[np.ndarray] = None
        self._pending: List[np.ndarray] = []
        self._id_to_row: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._ids)

    def _dim(self) -> Optional[int]:
        if self._vectors is not None:
            return self._vectors.shape[1]
        if self._pending:
            return self._pending[0].shape[0]
        return None

    def add(self, item_id: str, vector: np.ndarray) -> None:
        vector = l2_normalize(np.asarray(vector, dtype=np.float64))
        dim = self._dim()
        if dim is not None and vector.shape[0] != dim:
            raise IndexError_(
                f"vector dim {vector.shape[0]} != index dim {dim}"
            )
        self._pending.append(vector)
        self._id_to_row.setdefault(item_id, len(self._ids))
        self._ids.append(item_id)

    def _materialize(self) -> None:
        if not self._pending:
            return
        block = np.stack(self._pending)
        self._vectors = (
            block if self._vectors is None
            else np.concatenate([self._vectors, block])
        )
        self._pending = []

    def build(self, ids: Sequence[str], vectors: np.ndarray) -> None:
        """Replace the index contents with a whole batch at once."""
        vectors = np.asarray(vectors, dtype=np.float64)
        if len(ids) != len(vectors):
            raise IndexError_(f"{len(ids)} ids but {len(vectors)} vectors")
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        norms[norms < 1e-12] = 1.0
        self._vectors = vectors / norms
        self._ids = list(ids)
        self._pending = []
        self._id_to_row = {}
        for row, item_id in enumerate(self._ids):
            self._id_to_row.setdefault(item_id, row)

    def query(self, vector: np.ndarray, k: int = 10) -> List[Tuple[str, float]]:
        """Top-k (id, cosine similarity) pairs, best first."""
        self._materialize()
        if self._vectors is None or not len(self._ids):
            return []
        vector = l2_normalize(np.asarray(vector, dtype=np.float64))
        similarities = self._vectors @ vector
        k = min(k, len(self._ids))
        top = np.argpartition(-similarities, k - 1)[:k]
        top = top[np.argsort(-similarities[top])]
        return [(self._ids[i], float(similarities[i])) for i in top]

    def vector_of(self, item_id: str) -> np.ndarray:
        row = self._id_to_row.get(item_id)
        if row is None:
            raise IndexError_(f"id not in index: {item_id!r}")
        self._materialize()
        assert self._vectors is not None
        return self._vectors[row]
