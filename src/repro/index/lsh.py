"""Random-hyperplane LSH index (cosine-similarity family).

The second approximate-index baseline for E5: cheap to build, with a
recall/latency profile that contrasts instructively with HNSW's.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigError, IndexError_
from repro.index.embedders import l2_normalize
from repro.utils.rng import derive_rng


class LSHIndex:
    """Multi-table signed-random-projection LSH.

    Each table hashes a vector to a ``bits_per_table``-bit signature via
    random hyperplanes.  Queries collect the union of colliding buckets
    across tables and re-rank candidates exactly.
    """

    def __init__(self, num_tables: int = 8, bits_per_table: int = 8, seed: int = 0):
        if num_tables < 1 or bits_per_table < 1:
            raise ConfigError("num_tables and bits_per_table must be positive")
        self.num_tables = num_tables
        self.bits_per_table = bits_per_table
        self.seed = seed
        self._planes: Optional[np.ndarray] = None  # (tables, bits, dim)
        self._tables: List[Dict[int, List[int]]] = [
            defaultdict(list) for _ in range(num_tables)
        ]
        self._ids: List[str] = []
        self._vectors: List[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._ids)

    def _ensure_planes(self, dim: int) -> None:
        if self._planes is None:
            rng = derive_rng(self.seed, f"lsh:{dim}")
            self._planes = rng.normal(
                size=(self.num_tables, self.bits_per_table, dim)
            )
        elif self._planes.shape[-1] != dim:
            raise IndexError_(
                f"vector dim {dim} != index dim {self._planes.shape[-1]}"
            )

    def _signatures(self, vector: np.ndarray) -> List[int]:
        assert self._planes is not None
        bits = (self._planes @ vector) > 0  # (tables, bits)
        powers = 1 << np.arange(self.bits_per_table)
        return [int((row * powers).sum()) for row in bits]

    def add(self, item_id: str, vector: np.ndarray) -> None:
        vector = l2_normalize(np.asarray(vector, dtype=np.float64))
        self._ensure_planes(vector.shape[0])
        node = len(self._ids)
        self._ids.append(item_id)
        self._vectors.append(vector)
        for table, signature in zip(self._tables, self._signatures(vector)):
            table[signature].append(node)

    def build(self, ids: Sequence[str], vectors: np.ndarray) -> None:
        for item_id, vector in zip(ids, np.asarray(vectors, dtype=np.float64)):
            self.add(item_id, vector)

    def query(self, vector: np.ndarray, k: int = 10) -> List[Tuple[str, float]]:
        """Top-k among bucket-colliding candidates (exact re-ranking)."""
        if not self._ids:
            return []
        vector = l2_normalize(np.asarray(vector, dtype=np.float64))
        self._ensure_planes(vector.shape[0])
        candidates: Set[int] = set()
        for table, signature in zip(self._tables, self._signatures(vector)):
            candidates.update(table.get(signature, ()))
        if not candidates:
            # Degenerate fallback: empty buckets -> scan everything.
            candidates = set(range(len(self._ids)))
        scored = sorted(
            ((float(self._vectors[node] @ vector), node) for node in candidates),
            reverse=True,
        )
        return [(self._ids[node], sim) for sim, node in scored[:k]]
