"""Embedders and nearest-neighbor indexes over model embeddings."""

from repro.index.cache import EmbeddingCache
from repro.index.embedders import (
    BehavioralEmbedder,
    ConcatEmbedder,
    MetadataEmbedder,
    OutputEmbedder,
    WeightStatEmbedder,
    l2_normalize,
)
from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex
from repro.index.lsh import LSHIndex
from repro.index.hybrid import HybridIndex
from repro.index.metrics import measure_recall, recall_at_k
from repro.index.sharded import ShardedIndex

__all__ = [
    "BehavioralEmbedder", "ConcatEmbedder", "EmbeddingCache",
    "MetadataEmbedder", "OutputEmbedder", "WeightStatEmbedder",
    "l2_normalize", "FlatIndex", "HNSWIndex", "LSHIndex", "HybridIndex",
    "ShardedIndex", "measure_recall", "recall_at_k",
]
