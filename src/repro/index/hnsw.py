"""Hierarchical Navigable Small World graphs (Malkov & Yashunin, 2020).

Implemented from scratch: the paper singles HNSW out as the practical
index for high-dimensional model embeddings while noting it "provides no
formal guarantees on correctness and its use in model lakes remains
under-explored" — so we build it and measure its recall/latency
trade-offs ourselves (benchmark E5).

Distances are cosine distances (vectors are normalized on insert).
Vectors live in one contiguous matrix, so each beam expansion scores all
of a node's unvisited neighbors with a single matrix-vector product; the
original one-distance-at-a-time path is kept behind ``vectorized=False``
and the two are verified equivalent by the test suite.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ConfigError, IndexError_
from repro.index.embedders import l2_normalize
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import (
    HNSW_DISTANCE_COMPS,
    HNSW_INSERTS,
    HNSW_QUERIES,
)
from repro.obs.tracing import trace


class HNSWIndex:
    """Multi-layer proximity graph supporting incremental insertion.

    Parameters
    ----------
    m:
        Max out-degree per node on upper layers (layer 0 allows ``2m``).
    ef_construction:
        Candidate-list width during insertion.
    ef_search:
        Default candidate-list width during queries (>= k for good recall).
    seed:
        Level-sampling RNG seed (levels follow Geom(1/ln m)).
    vectorized:
        Score neighbor batches with one matrix op per beam expansion
        (default).  ``False`` selects the scalar reference path, which
        visits nodes in the same order and returns the same results.
    """

    def __init__(
        self,
        m: int = 8,
        ef_construction: int = 64,
        ef_search: int = 32,
        seed: int = 0,
        vectorized: bool = True,
    ):
        if m < 2:
            raise ConfigError(f"m must be >= 2, got {m}")
        if ef_construction < m or ef_search < 1:
            raise ConfigError("ef_construction must be >= m and ef_search >= 1")
        self.m = m
        self.m0 = 2 * m
        self.ef_construction = ef_construction
        self.ef_search = ef_search
        self.vectorized = vectorized
        self._ml = 1.0 / math.log(m)
        self._rng = np.random.default_rng(seed)

        self._ids: List[str] = []
        self._id_to_index: Dict[str, int] = {}
        #: All vectors, row-per-node, grown geometrically.
        self._matrix: np.ndarray = np.empty((0, 0), dtype=np.float64)
        self._count = 0
        #: neighbors[layer][node] -> list of neighbor node indices
        self._neighbors: List[Dict[int, List[int]]] = []
        self._entry_point: Optional[int] = None
        self._max_layer = -1
        #: Running count of cosine-distance evaluations (the index's unit
        #: of work); flushed to the global metrics registry per operation.
        self._distance_count = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    @property
    def distance_computations(self) -> int:
        return self._distance_count

    def _append_vector(self, vector: np.ndarray) -> None:
        if self._matrix.shape[1] != vector.shape[0]:
            if self._count:
                raise IndexError_(
                    f"vector dim {vector.shape[0]} != index dim {self._matrix.shape[1]}"
                )
            self._matrix = np.empty((4, vector.shape[0]), dtype=np.float64)
        if self._count == self._matrix.shape[0]:
            grown = np.empty(
                (2 * self._matrix.shape[0], self._matrix.shape[1]), dtype=np.float64
            )
            grown[: self._count] = self._matrix[: self._count]
            self._matrix = grown
        self._matrix[self._count] = vector
        self._count += 1

    def _distance(self, a: int, query: np.ndarray) -> float:
        self._distance_count += 1
        return 1.0 - float(self._matrix[a] @ query)

    def _batch_distances(self, nodes: List[int], query: np.ndarray) -> np.ndarray:
        """All cosine distances node->query in one matrix-vector product."""
        self._distance_count += len(nodes)
        return 1.0 - self._matrix[nodes] @ query

    def _sample_level(self) -> int:
        return int(-math.log(max(self._rng.random(), 1e-12)) * self._ml)

    # ------------------------------------------------------------------
    def add(self, item_id: str, vector: np.ndarray) -> None:
        """Insert one element (standard HNSW insertion)."""
        if item_id in self._id_to_index:
            raise IndexError_(f"duplicate id in HNSW index: {item_id!r}")
        before = self._distance_count
        with trace("index.hnsw.insert", size=len(self._ids)):
            self._insert(item_id, vector)
        obs_metrics.inc(HNSW_INSERTS)
        obs_metrics.inc(HNSW_DISTANCE_COMPS, self._distance_count - before)

    def _insert(self, item_id: str, vector: np.ndarray) -> None:
        vector = l2_normalize(np.asarray(vector, dtype=np.float64))
        node = len(self._ids)
        self._ids.append(item_id)
        self._id_to_index[item_id] = node
        self._append_vector(vector)

        level = self._sample_level()
        old_max = self._max_layer
        while self._max_layer < level:
            self._neighbors.append({})
            self._max_layer += 1
        for layer in range(level + 1):
            self._neighbors[layer][node] = []

        if self._entry_point is None:
            self._entry_point = node
            return

        entry = self._entry_point
        # Greedy descent through pre-existing layers above the new level.
        for layer in range(old_max, level, -1):
            entry = self._greedy_closest(vector, entry, layer)

        # Link at each pre-existing layer from min(level, old max) down to 0.
        # (Layers above old_max contain only the new node: nothing to link.)
        for layer in range(min(level, old_max), -1, -1):
            candidates = self._search_layer(vector, [entry], layer, self.ef_construction)
            max_degree = self.m0 if layer == 0 else self.m
            selected = self._select_neighbors(candidates, self.m)
            self._neighbors[layer][node] = [idx for _, idx in selected]
            for _, neighbor in selected:
                links = self._neighbors[layer][neighbor]
                links.append(node)
                if len(links) > max_degree:
                    # Prune with the same diversity heuristic, relative to
                    # the over-full neighbor.
                    neighbor_vec = self._matrix[neighbor]
                    if self.vectorized:
                        link_dists = self._batch_distances(links, neighbor_vec)
                        scored = sorted(zip((float(d) for d in link_dists), links))
                    else:
                        self._distance_count += len(links)
                        scored = sorted(
                            (1.0 - float(self._matrix[other] @ neighbor_vec), other)
                            for other in links
                        )
                    kept = self._select_neighbors(scored, max_degree)
                    self._neighbors[layer][neighbor] = [o for _, o in kept]
            entry = selected[0][1] if selected else entry

        if level > old_max:
            self._entry_point = node

    def _layer_of(self, node: int) -> int:
        for layer in range(self._max_layer, -1, -1):
            if node in self._neighbors[layer]:
                return layer
        return 0

    def _greedy_closest(self, query: np.ndarray, entry: int, layer: int) -> int:
        """Greedy search: move to the closest neighbor until no improvement."""
        current = entry
        current_dist = self._distance(current, query)
        if self.vectorized:
            while True:
                neighbors = self._neighbors[layer].get(current, [])
                if not neighbors:
                    return current
                dists = self._batch_distances(neighbors, query)
                best = int(np.argmin(dists))
                if float(dists[best]) >= current_dist:
                    return current
                current, current_dist = neighbors[best], float(dists[best])
        improved = True
        while improved:
            improved = False
            for neighbor in self._neighbors[layer].get(current, []):
                dist = self._distance(neighbor, query)
                if dist < current_dist:
                    current, current_dist = neighbor, dist
                    improved = True
        return current

    def _search_layer(
        self, query: np.ndarray, entries: Sequence[int], layer: int, ef: int
    ) -> List[Tuple[float, int]]:
        """Best-first beam search on one layer; returns sorted (dist, node).

        The vectorized path batches each expansion's unvisited-neighbor
        distances into one matrix op, then runs the identical heap logic
        over the precomputed values, so both paths visit and return the
        same nodes in the same order.
        """
        visited: Set[int] = set(entries)
        candidates: List[Tuple[float, int]] = []
        results: List[Tuple[float, int]] = []  # max-heap via negative dist
        for entry in entries:
            dist = self._distance(entry, query)
            heapq.heappush(candidates, (dist, entry))
            heapq.heappush(results, (-dist, entry))
        while candidates:
            dist, node = heapq.heappop(candidates)
            worst = -results[0][0]
            if dist > worst and len(results) >= ef:
                break
            fresh: List[int] = []
            for neighbor in self._neighbors[layer].get(node, []):
                if neighbor not in visited:
                    visited.add(neighbor)
                    fresh.append(neighbor)
            if not fresh:
                continue
            if self.vectorized:
                fresh_dists = self._batch_distances(fresh, query)
            else:
                fresh_dists = np.array(
                    [self._distance(neighbor, query) for neighbor in fresh]
                )
            for neighbor, neighbor_dist in zip(fresh, fresh_dists):
                neighbor_dist = float(neighbor_dist)
                worst = -results[0][0]
                if len(results) < ef or neighbor_dist < worst:
                    heapq.heappush(candidates, (neighbor_dist, neighbor))
                    heapq.heappush(results, (-neighbor_dist, neighbor))
                    if len(results) > ef:
                        heapq.heappop(results)
        return sorted((-neg, node) for neg, node in results)

    def _select_neighbors(
        self, candidates: List[Tuple[float, int]], m: int
    ) -> List[Tuple[float, int]]:
        """Heuristic neighbor selection (Algorithm 4 of the HNSW paper).

        Scanning candidates closest-first, keep a candidate only if it is
        closer to the query than to every already-selected neighbor.
        This diversifies edges across clusters, which is what keeps the
        graph navigable on clustered data.  Falls back to closest-first
        fill if the heuristic selects fewer than m.

        The vectorized path scores a candidate against all selected
        neighbors with one matrix-vector product; the scalar path
        evaluates the same pair distances one at a time (no
        short-circuit), so both paths build identical graphs from an
        identical number of distance computations.
        """
        selected: List[Tuple[float, int]] = []
        skipped: List[Tuple[float, int]] = []
        for dist, node in candidates:
            if len(selected) >= m:
                break
            vec = self._matrix[node]
            if not selected:
                diverse = True
            elif self.vectorized:
                pair_dists = self._batch_distances(
                    [other for _, other in selected], vec
                )
                diverse = bool(np.all(dist < pair_dists))
            else:
                self._distance_count += len(selected)
                pair_dists = [
                    1.0 - float(vec @ self._matrix[other])
                    for _, other in selected
                ]
                diverse = all(dist < pair for pair in pair_dists)
            if diverse:
                selected.append((dist, node))
            else:
                skipped.append((dist, node))
        for item in skipped:
            if len(selected) >= m:
                break
            selected.append(item)
        return selected

    # ------------------------------------------------------------------
    def query(
        self, vector: np.ndarray, k: int = 10, ef: Optional[int] = None
    ) -> List[Tuple[str, float]]:
        """Approximate top-k (id, cosine similarity), best first."""
        if self._entry_point is None:
            return []
        before = self._distance_count
        with trace("index.hnsw.query", k=k, size=len(self._ids)):
            vector = l2_normalize(np.asarray(vector, dtype=np.float64))
            ef = max(ef or self.ef_search, k)
            entry = self._entry_point
            for layer in range(self._max_layer, 0, -1):
                entry = self._greedy_closest(vector, entry, layer)
            results = self._search_layer(vector, [entry], 0, ef)
            top = results[:k]
        obs_metrics.inc(HNSW_QUERIES)
        obs_metrics.inc(HNSW_DISTANCE_COMPS, self._distance_count - before)
        return [(self._ids[node], 1.0 - dist) for dist, node in top]

    def query_batch(
        self, vectors: np.ndarray, k: int = 10, ef: Optional[int] = None
    ) -> List[List[Tuple[str, float]]]:
        """Top-k for every row of ``vectors``, one graph walk per row.

        HNSW beam searches don't vectorize across queries (each walk
        takes its own path through the graph), so this is a sequential
        sweep — it exists so callers that batch over heterogeneous index
        backends can use one entry point, and each row returns exactly
        what :meth:`query` would.
        """
        vectors = np.asarray(vectors, dtype=np.float64)
        if vectors.ndim == 1:
            vectors = vectors[None, :]
        return [self.query(row, k=k, ef=ef) for row in vectors]

    def build(self, ids: Sequence[str], vectors: np.ndarray) -> None:
        for item_id, vector in zip(ids, np.asarray(vectors, dtype=np.float64)):
            self.add(item_id, vector)

    def stats(self) -> Dict[str, float]:
        """Structural statistics (layer count, degree distribution)."""
        degrees = [
            len(links)
            for layer in self._neighbors
            for links in layer.values()
        ]
        return {
            "num_elements": float(len(self._ids)),
            "num_layers": float(self._max_layer + 1),
            "mean_degree": float(np.mean(degrees)) if degrees else 0.0,
            "max_degree": float(max(degrees)) if degrees else 0.0,
            "distance_computations": float(self._distance_count),
        }
