"""The model lake: records, cards, stores, generation, corruption."""

from repro.lake.card import CARD_CONTENT_FIELDS, ModelCard
from repro.lake.record import ModelHistory, ModelRecord
from repro.lake.store import WeightStore
from repro.lake.lake import ModelLake
from repro.lake.generator import (
    DEFAULT_TRANSFORM_MIX,
    GeneratedLake,
    LakeGenerator,
    LakeGroundTruth,
    LakeSpec,
    generate_lake,
)
from repro.lake.corruption import CardCorruptor, CorruptionReport, CORRUPTIBLE_FIELDS
from repro.lake.persist import load_lake, migrate_lake, save_lake
from repro.lake.shard import ShardLayout
from repro.lake.stats import LakeStatistics, compute_statistics

__all__ = [
    "CARD_CONTENT_FIELDS", "ModelCard",
    "ModelHistory", "ModelRecord",
    "WeightStore",
    "ModelLake",
    "DEFAULT_TRANSFORM_MIX", "GeneratedLake", "LakeGenerator",
    "LakeGroundTruth", "LakeSpec", "generate_lake",
    "CardCorruptor", "CorruptionReport", "CORRUPTIBLE_FIELDS",
    "load_lake", "migrate_lake", "save_lake",
    "ShardLayout",
    "LakeStatistics", "compute_statistics",
]
