"""Lake statistics: the catalog overview a lake operator monitors.

Summarizes a lake's population (families, transforms, documentation
health, lineage shape) — the observability layer for Figure 2's store.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.lake.lake import ModelLake

# VersionGraph is imported lazily inside compute_statistics: the
# versioning package depends on index embedders, which depend on lake
# cards — a module-level import here would close an import cycle.


@dataclass
class LakeStatistics:
    """A snapshot of lake health and composition."""

    num_models: int
    num_datasets: int
    clock: int
    families: Dict[str, int]
    transform_kinds: Dict[str, int]
    num_roots: int
    max_lineage_depth: int
    hidden_history_count: int
    api_only_count: int
    card_completeness_mean: float
    card_completeness_min: float
    undocumented_models: List[str] = field(default_factory=list)

    def to_text(self) -> str:
        lines = [
            f"models:               {self.num_models}",
            f"datasets:             {self.num_datasets}",
            f"logical clock:        {self.clock}",
            f"families:             {dict(sorted(self.families.items()))}",
            f"transforms:           {dict(sorted(self.transform_kinds.items()))}",
            f"lineage roots:        {self.num_roots}",
            f"max lineage depth:    {self.max_lineage_depth}",
            f"hidden histories:     {self.hidden_history_count}",
            f"API-only models:      {self.api_only_count}",
            f"card completeness:    mean {self.card_completeness_mean:.2f}, "
            f"min {self.card_completeness_min:.2f}",
        ]
        if self.undocumented_models:
            lines.append(
                f"poorly documented:    {len(self.undocumented_models)} models "
                f"(completeness < 0.5)"
            )
        return "\n".join(lines)


def _depth_of(graph, node: str) -> int:
    """Longest recorded ancestor chain above ``node``."""
    best = 0
    stack = [(node, 0)]
    seen = set()
    while stack:
        current, depth = stack.pop()
        best = max(best, depth)
        for parent in graph.parents(current):
            if (parent, depth + 1) not in seen:
                seen.add((parent, depth + 1))
                stack.append((parent, depth + 1))
    return best


def compute_statistics(lake: ModelLake) -> LakeStatistics:
    """Compute the full statistics snapshot for a lake."""
    from repro.core.versioning.graph import VersionGraph

    families: Counter = Counter()
    transforms: Counter = Counter()
    completeness: List[float] = []
    undocumented: List[str] = []
    hidden = 0
    api_only = 0
    for record in lake:
        families[record.family] += 1
        value = record.card.completeness()
        completeness.append(value)
        if value < 0.5:
            undocumented.append(record.model_id)
        if record.history is not None and not record.history_public:
            hidden += 1
        if not record.weights_public:
            api_only += 1
        if record.history is not None and record.history.transform is not None:
            transforms[record.history.transform.kind] += 1

    graph = VersionGraph.from_lake_history(lake)
    max_depth = max(
        (_depth_of(graph, record.model_id) for record in lake), default=0
    )
    return LakeStatistics(
        num_models=len(lake),
        num_datasets=len(lake.datasets),
        clock=lake.clock,
        families=dict(families),
        transform_kinds=dict(transforms),
        num_roots=len(graph.roots()),
        max_lineage_depth=max_depth,
        hidden_history_count=hidden,
        api_only_count=api_only,
        card_completeness_mean=float(np.mean(completeness)) if completeness else 1.0,
        card_completeness_min=float(np.min(completeness)) if completeness else 1.0,
        undocumented_models=undocumented,
    )
