"""Shard layout of a persisted lake: digest-prefix partitioning.

A v2 lake partitions its heavy artifacts by the first ``prefix_len``
hex characters of each weight digest:

* weight bundles live at ``weights/<pp>/<digest>.rwb`` (flat
  ``weights/<digest>.rwb`` when unsharded),
* the manifest's per-file integrity entries for weights are split into
  ``shards/<pp>.json`` fragments so the root manifest stays small,
* embedding caches and index builds group by the same prefix, which is
  what lets search open shards lazily and build indexes shard-parallel.

The layout is recorded in the manifest's ``integrity`` section —
*outside* the manifest body digest — so a sharded and an unsharded save
of the same lake commit byte-identical bodies (same records, same
weight digests, same ``manifest_digest``): sharding is pure placement,
never identity.

Because digests are uniform hex, 2-character prefixes give 256 shards
of near-equal size; at the paper's 10k–100k-model scale that is a few
hundred models per shard, small enough to index in one worker and large
enough to amortize per-file costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

__all__ = [
    "LAYOUT_VERSION",
    "WEIGHT_EXT",
    "LEGACY_WEIGHT_EXT",
    "WEIGHTS_DIR",
    "SHARDS_DIR",
    "DEFAULT_PREFIX_LEN",
    "AUTO_SHARD_MIN_MODELS",
    "ShardLayout",
]

#: On-disk layout generation written by the current ``save_lake``.
LAYOUT_VERSION = 2

#: Raw weight-bundle extension (``repro.utils.serialization.pack_arrays``).
WEIGHT_EXT = ".rwb"

#: Pre-shard (v1) lakes stored npz archives.
LEGACY_WEIGHT_EXT = ".npz"

WEIGHTS_DIR = "weights"
SHARDS_DIR = "shards"

DEFAULT_PREFIX_LEN = 2

#: ``save_lake(sharded=None)`` shards automatically at this size: below
#: it, flat directories are simpler and every per-shard file would hold
#: a handful of entries.
AUTO_SHARD_MIN_MODELS = 512


@dataclass(frozen=True)
class ShardLayout:
    """How one persisted lake places weight blobs and integrity data."""

    sharded: bool = False
    prefix_len: int = DEFAULT_PREFIX_LEN
    version: int = LAYOUT_VERSION
    format: str = "rwb"

    def shard_of(self, digest: str) -> str:
        """The shard key of a digest ('' when the layout is flat)."""
        return digest[: self.prefix_len] if self.sharded else ""

    def weight_rel(self, digest: str) -> str:
        """Lake-relative posix path of a digest's weight bundle."""
        if self.sharded:
            return f"{WEIGHTS_DIR}/{digest[: self.prefix_len]}/{digest}{WEIGHT_EXT}"
        return f"{WEIGHTS_DIR}/{digest}{WEIGHT_EXT}"

    def weight_subpath(self, digest: str) -> str:
        """Path relative to the weights directory itself."""
        if self.sharded:
            return f"{digest[: self.prefix_len]}/{digest}{WEIGHT_EXT}"
        return f"{digest}{WEIGHT_EXT}"

    def shard_rel(self, key: str) -> str:
        """Lake-relative path of a shard's integrity fragment."""
        return f"{SHARDS_DIR}/{key}.json"

    def group(self, digests: Iterable[str]) -> Dict[str, List[str]]:
        """Digests grouped by shard key, keys sorted, order preserved."""
        groups: Dict[str, List[str]] = {}
        for digest in digests:
            groups.setdefault(self.shard_of(digest), []).append(digest)
        return {key: groups[key] for key in sorted(groups)}

    def to_manifest(self) -> Dict[str, object]:
        return {
            "version": self.version,
            "format": self.format,
            "sharded": self.sharded,
            "prefix_len": self.prefix_len,
        }

    @classmethod
    def from_manifest(cls, payload: Optional[Dict]) -> Optional["ShardLayout"]:
        """Layout recorded in a manifest's integrity section, or None
        (a pre-shard v1 lake, whose weights are flat npz archives)."""
        if not payload:
            return None
        return cls(
            sharded=bool(payload.get("sharded", False)),
            prefix_len=int(payload.get("prefix_len", DEFAULT_PREFIX_LEN)),
            version=int(payload.get("version", LAYOUT_VERSION)),
            format=str(payload.get("format", "rwb")),
        )
