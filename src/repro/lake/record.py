"""Model records: the lake's unit of registration.

A record ties together the paper's model tuple
``M = (D, A, f*, theta, p_theta)``:

* history ``(D, A)`` -> :class:`ModelHistory` (may be absent/hidden),
* architecture ``f*`` -> the stored architecture spec,
* parameters ``theta`` -> a digest into the content-addressed weight store,
* behavior ``p_theta`` -> observable by rehydrating and running the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lake.card import ModelCard
from repro.transforms.base import TransformRecord


@dataclass
class ModelHistory:
    """The (D, A) viewpoint: where a model's weights came from.

    ``parent_ids`` is empty for models trained from scratch; transforms
    with two parents (merge, stitch) list both.
    """

    parent_ids: Tuple[str, ...] = ()
    transform: Optional[TransformRecord] = None
    dataset_digest: Optional[str] = None
    dataset_name: Optional[str] = None
    algorithm: str = "train_from_scratch"
    seed: int = 0

    def describe(self) -> str:
        if self.transform is not None:
            parents = ",".join(p[:8] for p in self.parent_ids) or "?"
            return f"{self.transform.kind}({parents}) {self.transform.params}"
        return f"{self.algorithm} on {self.dataset_name or 'unknown data'}"


@dataclass
class ModelRecord:
    """One registered model: metadata + pointers into the stores."""

    model_id: str
    name: str
    architecture: Dict
    weights_digest: str
    card: ModelCard
    history: Optional[ModelHistory] = None
    history_public: bool = True
    weights_public: bool = True
    created_at: int = 0
    tags: List[str] = field(default_factory=list)
    eval_metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def family(self) -> str:
        return str(self.architecture.get("family", "unknown"))

    def summary(self) -> str:
        base = self.card.base_model or "-"
        return (
            f"{self.model_id[:8]} {self.name:<28} family={self.family:<24} "
            f"base={base:<20} card_completeness={self.card.completeness():.2f}"
        )
