"""Model cards: semi-structured model documentation (Mitchell et al. 2019).

Cards carry the fields the paper discusses — model details, intended
use, training data, metrics, limitations — plus the base-model field
Hugging Face added for model trees.  Cards can be complete, partially
missing, stale, or adversarially wrong; :mod:`repro.lake.corruption`
produces those degraded variants and
:mod:`repro.core.docgen` regenerates/verifies them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional

from repro.utils.hashing import stable_hash

#: Card fields that count toward completeness (order = render order).
CARD_CONTENT_FIELDS = (
    "description",
    "intended_use",
    "training_data",
    "training_domains",
    "base_model",
    "transform_summary",
    "metrics",
    "limitations",
    "license",
)


@dataclass
class ModelCard:
    """Semi-structured documentation for one model.

    ``None`` / empty values mean "undocumented" — the situation Liang et
    al. found rampant on real hubs and the reason content-based lake
    tasks exist.
    """

    model_name: str
    description: Optional[str] = None
    intended_use: Optional[str] = None
    training_data: Optional[str] = None
    training_domains: List[str] = field(default_factory=list)
    base_model: Optional[str] = None
    transform_summary: Optional[str] = None
    metrics: Dict[str, float] = field(default_factory=dict)
    limitations: Optional[str] = None
    license: Optional[str] = None
    tags: List[str] = field(default_factory=list)

    def completeness(self) -> float:
        """Fraction of content fields that are documented."""
        filled = 0
        for name in CARD_CONTENT_FIELDS:
            value = getattr(self, name)
            if value:
                filled += 1
        return filled / len(CARD_CONTENT_FIELDS)

    def text(self) -> str:
        """Flat text rendering used by keyword (metadata) search."""
        parts: List[str] = [self.model_name]
        for name in ("description", "intended_use", "training_data",
                     "transform_summary", "limitations", "license"):
            value = getattr(self, name)
            if value:
                parts.append(str(value))
        if self.training_domains:
            parts.append("domains: " + " ".join(self.training_domains))
        if self.base_model:
            parts.append(f"base model: {self.base_model}")
        if self.metrics:
            parts.append(" ".join(f"{k} {v:.3f}" for k, v in sorted(self.metrics.items())))
        if self.tags:
            parts.append(" ".join(self.tags))
        return "\n".join(parts)

    def to_markdown(self) -> str:
        """Human-readable markdown rendering (hub-style card)."""
        lines = [f"# {self.model_name}", ""]
        sections = [
            ("Description", self.description),
            ("Intended use", self.intended_use),
            ("Training data", self.training_data),
            ("Training domains", ", ".join(self.training_domains) or None),
            ("Base model", self.base_model),
            ("How it was derived", self.transform_summary),
            ("Limitations", self.limitations),
            ("License", self.license),
        ]
        for title, value in sections:
            lines.append(f"## {title}")
            lines.append(value if value else "*undocumented*")
            lines.append("")
        lines.append("## Metrics")
        if self.metrics:
            for key in sorted(self.metrics):
                lines.append(f"- {key}: {self.metrics[key]:.4f}")
        else:
            lines.append("*undocumented*")
        if self.tags:
            lines.append("")
            lines.append("Tags: " + ", ".join(sorted(self.tags)))
        return "\n".join(lines)

    def digest(self) -> str:
        """Content digest of the card (for citation / change detection)."""
        payload = {
            name.name: getattr(self, name.name) for name in dataclass_fields(self)
        }
        return stable_hash(payload)

    def copy(self) -> "ModelCard":
        return ModelCard(
            model_name=self.model_name,
            description=self.description,
            intended_use=self.intended_use,
            training_data=self.training_data,
            training_domains=list(self.training_domains),
            base_model=self.base_model,
            transform_summary=self.transform_summary,
            metrics=dict(self.metrics),
            limitations=self.limitations,
            license=self.license,
            tags=list(self.tags),
        )
