"""Benchmark-lake generation with verified ground truth.

The paper (§3 Benchmarking, §5) says model-lake research needs shared
benchmark lakes with *verified ground truth*: labeled parameters,
architectures, and detailed transformation records.  This module builds
exactly that: a population of genuinely-trained models related by real
transformations, with every relationship recorded.

Design: foundation-first.  Foundation models are trained on a broad
multi-domain corpus (general features), then derivation chains
specialize them — fine-tunes, LoRA adapters, preference tunes, edits,
pruned/quantized releases, distilled students, merges, stitches —
mirroring how real hubs are populated.

Generation is wave-scheduled (``LakeSpec.workers``): a sequential
*planning* pass makes every shared-RNG decision (chain depths, transform
kinds, edit targets, hidden-history flags, model names) in the exact
order the models will be registered, then the resulting task DAG is
leveled into waves of independent training jobs executed by
:class:`repro.parallel.WaveExecutor`.  Results are registered in
canonical plan order, so a lake built with ``workers=N`` is bit-identical
— same model ids, weight digests, edges, clock values — to ``workers=1``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import TextDataset, make_domain_dataset
from repro.data.derivation import filter_by_domain, sample_dataset
from repro.data.domains import DOMAIN_NAMES
from repro.data.tokenizer import Tokenizer
from repro.data.vocab import build_default_vocabulary
from repro.errors import ConfigError
from repro.lake.card import ModelCard
from repro.lake.lake import ModelLake
from repro.lake.record import ModelHistory, ModelRecord
from repro.lake.waves import (
    ChainStep,
    ChainTask,
    FoundationTask,
    LMChainTask,
    LMFoundationTask,
    MergeTask,
    ModelResult,
    StitchTask,
    WorkerContext,
    domain_accuracy,
    init_context,
    lm_likelihoods,
    run_task,
)
from repro.nn.models import build_model
from repro.nn.module import Module
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import LAKE_GENERATED_MODELS
from repro.obs.logging import get_logger
from repro.obs.tracing import trace
from repro.parallel import WaveExecutor, topological_waves
from repro.reliability.checkpoint import WaveCheckpoint
from repro.transforms import TransformRecord
from repro.utils.hashing import stable_hash
from repro.utils.rng import derive_rng

_log = get_logger("lake.generator")

#: Backwards-compatible aliases; the implementations live with the
#: worker tasks so pool workers can score models without this module.
_domain_accuracy = domain_accuracy
_lm_likelihoods = lm_likelihoods

#: Default probability mix over chain transforms.
DEFAULT_TRANSFORM_MIX: Dict[str, float] = {
    "finetune": 0.35,
    "lora": 0.20,
    "preference": 0.10,
    "edit": 0.10,
    "prune": 0.10,
    "quantize": 0.05,
    "distill": 0.10,
}

#: Chain transforms that train on a specialty dataset.
_DATA_KINDS = ("finetune", "lora", "preference", "distill")

#: Architecture variety cycled across foundations.
_ARCH_CYCLE: Tuple[Tuple[int, Tuple[int, ...]], ...] = (
    (16, (24,)),
    (20, (32,)),
    (24, (16, 16)),
    (16, (32,)),
)


@dataclass
class LakeSpec:
    """Configuration for benchmark-lake generation."""

    num_foundations: int = 3
    chains_per_foundation: int = 4
    max_chain_depth: int = 2
    docs_per_domain: int = 25
    eval_docs_per_domain: int = 8
    seq_len: int = 24
    foundation_epochs: int = 8
    specialize_epochs: int = 6
    num_merges: int = 1
    num_stitches: int = 1
    seed: int = 0
    transform_mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_TRANSFORM_MIX)
    )
    domains: Tuple[str, ...] = DOMAIN_NAMES
    hidden_history_fraction: float = 0.0
    #: Use opaque model names ("model-0007") instead of descriptive ones.
    #: Descriptive names leak training domains to keyword search, which
    #: real hubs only sometimes do; experiments sweep both regimes.
    opaque_names: bool = False
    #: Number of language-model foundations (heterogeneous-modality lake:
    #: the paper requires content-based search to "cover all models in
    #: model lakes, including large language models").  Each LM foundation
    #: gets `lm_chains` fine-tune/release chains.
    num_lm_foundations: int = 0
    lm_chains: int = 2
    lm_epochs: int = 3
    #: Degree of parallelism for model training.  ``1`` runs inline;
    #: ``N > 1`` trains each wave of independent models across N worker
    #: processes.  The generated lake is bit-identical either way.
    workers: int = 1

    def validate(self) -> None:
        if self.num_foundations <= 0:
            raise ConfigError("num_foundations must be positive")
        if not self.transform_mix:
            raise ConfigError("transform_mix must be non-empty")
        if any(w < 0 for w in self.transform_mix.values()):
            raise ConfigError("transform_mix weights must be non-negative")
        if not 0.0 <= self.hidden_history_fraction <= 1.0:
            raise ConfigError("hidden_history_fraction must be in [0, 1]")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")


@dataclass
class LakeGroundTruth:
    """Everything the generator knows about the lake it built.

    This is the "verified ground truth" benchmark lakes require; task
    evaluations score solutions against it, and it is never exposed to
    the solutions themselves.
    """

    #: (parent_ids, child_id, transform) for every derivation edge.
    edges: List[Tuple[Tuple[str, ...], str, TransformRecord]] = field(default_factory=list)
    foundations: List[str] = field(default_factory=list)
    #: Domains whose data contributed to each model (cumulative).
    model_domains: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Primary specialty (None for generalist foundations and releases).
    specialty: Dict[str, Optional[str]] = field(default_factory=dict)
    #: Dataset digest used to create each model (None for data-free ops).
    model_dataset: Dict[str, Optional[str]] = field(default_factory=dict)
    #: Per-domain held-out accuracy of every model.
    domain_accuracy: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def parent_map(self) -> Dict[str, Tuple[str, ...]]:
        return {child: parents for parents, child, _ in self.edges}

    def edge_set(self) -> set:
        """Set of (parent, child) pairs, expanding multi-parent edges."""
        pairs = set()
        for parents, child, _ in self.edges:
            for parent in parents:
                pairs.add((parent, child))
        return pairs

    def transform_of(self, child_id: str) -> Optional[TransformRecord]:
        for _, child, record in self.edges:
            if child == child_id:
                return record
        return None


@dataclass
class GeneratedLake:
    """Bundle returned by :func:`generate_lake`."""

    lake: ModelLake
    truth: LakeGroundTruth
    tokenizer: Tokenizer
    base_dataset: TextDataset
    eval_dataset: TextDataset

    @property
    def num_models(self) -> int:
        return len(self.lake)

    def save(
        self,
        directory: str,
        sharded: Optional[bool] = None,
        prefix_len: Optional[int] = None,
    ) -> None:
        """Persist the generated lake (see :func:`repro.lake.persist.save_lake`).

        ``sharded`` picks the on-disk layout; like ``workers`` it is
        pure physics — the saved manifest digest is identical either
        way, so generation pipelines may re-shard freely.  ``None``
        auto-shards large lakes.
        """
        from repro.lake.persist import save_lake

        kwargs = {} if prefix_len is None else {"prefix_len": prefix_len}
        save_lake(self.lake, directory, sharded=sharded, **kwargs)


@dataclass
class _PlannedModel:
    """Registration metadata for one model slot, fixed at plan time.

    Slots are ordered canonically (foundations, chains, LM models); every
    decision that feeds a model id, name, or hidden flag is made here,
    before any training runs, which is what makes registration
    independent of execution order.
    """

    task_key: Hashable
    result_index: int
    name: str
    domains: Tuple[str, ...]
    dataset: Optional[TextDataset]
    parent_slots: Tuple[int, ...]
    specialty: Optional[str]
    hidden: bool
    is_foundation: bool


@dataclass
class _GenerationPlan:
    """Task DAG plus per-model registration metadata."""

    tasks: Dict[Hashable, object] = field(default_factory=dict)
    dependencies: Dict[Hashable, List[Hashable]] = field(default_factory=dict)
    slots: List[_PlannedModel] = field(default_factory=list)
    #: Chain tasks need their parent's trained weights, which only exist
    #: after the foundation wave; maps task key -> foundation task key.
    parent_of: Dict[Hashable, Hashable] = field(default_factory=dict)


def _truthful_card(
    name: str,
    family: str,
    domains: Sequence[str],
    dataset_name: Optional[str],
    base_model: Optional[str],
    transform: Optional[TransformRecord],
    metrics: Dict[str, float],
    specialty: Optional[str],
) -> ModelCard:
    """Build a complete, accurate card from generation-time knowledge."""
    if specialty:
        description = (
            f"A {family} model specialized for {specialty} text. "
            f"Derived from {base_model} and adapted to the {specialty} domain."
        )
        intended = (
            f"Classify and analyze {specialty} documents; best suited to "
            f"{' and '.join(domains)} content."
        )
    else:
        description = (
            f"A general-purpose {family} model trained across "
            f"{len(domains)} domains."
        )
        intended = "General domain classification across heterogeneous text."
    transform_summary = transform.describe() if transform is not None else None
    return ModelCard(
        model_name=name,
        description=description,
        intended_use=intended,
        training_data=dataset_name,
        training_domains=list(domains),
        base_model=base_model,
        transform_summary=transform_summary,
        metrics=dict(metrics),
        limitations=(
            f"Synthetic-corpus model; unreliable outside its training domains "
            f"({', '.join(domains)})."
        ),
        license="mit",
        tags=[family, "classification", *domains],
    )


def spec_fingerprint(spec: LakeSpec) -> str:
    """Stable digest of everything in a spec that shapes the output.

    ``workers`` is excluded on purpose: parallelism never changes the
    generated bits, so a run checkpointed with ``--workers 4`` may be
    resumed with any worker count.
    """
    payload = asdict(spec)
    payload.pop("workers", None)
    return stable_hash(payload)


class LakeGenerator:
    """Builds a :class:`GeneratedLake` according to a :class:`LakeSpec`.

    With ``checkpoint_dir`` set, every completed wave's results are
    persisted (atomically) as they land; ``resume=True`` then satisfies
    already-completed waves from disk, so a run killed mid-wave
    continues from the last completed wave instead of retraining from
    scratch — and produces a bit-identical lake, because registration
    consumes results in canonical plan order either way.  The caller
    owns the checkpoint's lifetime (``clear_checkpoint()``): clearing
    only after the lake is durably saved means even a crash *during*
    ``save_lake`` stays resumable.
    """

    def __init__(
        self,
        spec: Optional[LakeSpec] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ):
        self.spec = spec or LakeSpec()
        self.spec.validate()
        self._checkpoint: Optional[WaveCheckpoint] = None
        if checkpoint_dir is not None:
            self._checkpoint = WaveCheckpoint(
                checkpoint_dir, spec_fingerprint(self.spec), resume=resume
            )

    def clear_checkpoint(self) -> None:
        """Drop this run's checkpoints (call once the lake is durable)."""
        if self._checkpoint is not None:
            self._checkpoint.clear()

    # -- helpers ---------------------------------------------------------
    def _register(
        self,
        bundle: GeneratedLake,
        model: Module,
        name: str,
        domains: Sequence[str],
        dataset: Optional[TextDataset],
        parents: Tuple[str, ...],
        transform: Optional[TransformRecord],
        specialty: Optional[str],
        hidden: bool,
        accuracy: Optional[Dict[str, float]] = None,
    ) -> ModelRecord:
        if accuracy is None:
            accuracy = domain_accuracy(model, bundle.eval_dataset)
        overall = float(np.mean(list(accuracy.values())))
        metrics = {f"acc_{d}": v for d, v in accuracy.items()}
        metrics["acc_overall"] = overall
        base_name = (
            bundle.lake.get_record(parents[0]).name if parents else None
        )
        card = _truthful_card(
            name=name,
            family=model.architecture_spec()["family"],
            domains=domains,
            dataset_name=dataset.name if dataset is not None else None,
            base_model=base_name,
            transform=transform,
            metrics=metrics,
            specialty=specialty,
        )
        history = ModelHistory(
            parent_ids=parents,
            transform=transform,
            dataset_digest=dataset.content_digest() if dataset is not None else None,
            dataset_name=dataset.name if dataset is not None else None,
            algorithm=transform.kind if transform is not None else "train_from_scratch",
            seed=self.spec.seed,
        )
        record = bundle.lake.add_model(
            model,
            name=name,
            card=card,
            history=history,
            history_public=not hidden,
            tags=list(card.tags),
        )
        for metric, value in metrics.items():
            bundle.lake.record_metric(record.model_id, metric, value)
        truth = bundle.truth
        truth.model_domains[record.model_id] = tuple(domains)
        truth.specialty[record.model_id] = specialty
        truth.model_dataset[record.model_id] = (
            dataset.content_digest() if dataset is not None else None
        )
        truth.domain_accuracy[record.model_id] = accuracy
        if parents:
            assert transform is not None
            truth.edges.append((parents, record.model_id, transform))
        obs_metrics.inc(LAKE_GENERATED_MODELS)
        _log.debug(
            "model.registered",
            name=name,
            model_id=record.model_id,
            transform=transform.kind if transform is not None else "train",
            specialty=specialty,
        )
        return record

    def _pick_name(self, descriptive: str) -> str:
        """Model name: descriptive, or opaque when the spec asks for it."""
        if not self.spec.opaque_names:
            return descriptive
        self._name_counter += 1
        return f"model-{self._name_counter:04d}"

    def _specialty_dataset(
        self,
        bundle: GeneratedLake,
        domains: Sequence[str],
        seed: int,
    ) -> TextDataset:
        """Derive a specialty dataset from the base corpus, with lineage."""
        filtered, derivation = filter_by_domain(bundle.base_dataset, list(domains))
        bundle.lake.datasets.register(filtered, derivation)
        sampled, derivation2 = sample_dataset(filtered, 0.9, seed=seed)
        bundle.lake.datasets.register(sampled, derivation2)
        return sampled

    @staticmethod
    def _model_from(result: ModelResult) -> Module:
        """Live model when inline execution kept it, else rehydrate."""
        if result.model is not None:
            return result.model
        model = build_model(dict(result.architecture))
        model.load_state_dict(result.state)
        model.eval()
        return model

    # -- main ------------------------------------------------------------
    def generate(self) -> GeneratedLake:
        """Generate the lake; deterministic in ``spec.seed``.

        The result does not depend on ``spec.workers``: parallel runs are
        bit-identical to sequential ones.
        """
        with trace("lake.generate", seed=self.spec.seed, workers=self.spec.workers):
            bundle = self._generate()
        _log.info(
            "lake.generated",
            models=bundle.num_models,
            seed=self.spec.seed,
            workers=self.spec.workers,
            foundations=len(bundle.truth.foundations),
        )
        return bundle

    def _generate(self) -> GeneratedLake:
        spec = self.spec
        rng = derive_rng(spec.seed, "lake_generator")
        tokenizer = Tokenizer(build_default_vocabulary())

        base_dataset = make_domain_dataset(
            list(spec.domains),
            spec.docs_per_domain,
            seq_len=spec.seq_len,
            seed=spec.seed,
            tokenizer=tokenizer,
            name=f"multidomain-corpus-v{spec.seed}",
        )
        eval_dataset = make_domain_dataset(
            list(spec.domains),
            spec.eval_docs_per_domain,
            seq_len=spec.seq_len,
            seed=spec.seed + 90_000,
            tokenizer=tokenizer,
            name=f"multidomain-eval-v{spec.seed}",
        )
        lake = ModelLake()
        lake.datasets.register(base_dataset)
        self._name_counter = 0
        bundle = GeneratedLake(
            lake=lake,
            truth=LakeGroundTruth(),
            tokenizer=tokenizer,
            base_dataset=base_dataset,
            eval_dataset=eval_dataset,
        )

        plan = self._plan(bundle, rng)
        context = WorkerContext(
            base_dataset=base_dataset,
            eval_dataset=eval_dataset,
            vocab_size=tokenizer.vocab_size,
            num_classes=len(DOMAIN_NAMES),
            keep_models=spec.workers <= 1,
        )
        with WaveExecutor(
            spec.workers, initializer=init_context, initargs=(context,)
        ) as executor:
            results = self._execute_plan(plan, executor)
            foundation_records = self._register_plan(bundle, plan, results)
            # Merges and stitches are planned adaptively from registered
            # records (merge pairing needs final architectures), so they
            # form their own tail wave after canonical registration.
            self._add_merges(bundle, rng, executor)
            self._add_stitches(bundle, foundation_records, rng, executor)
        return bundle

    # -- planning --------------------------------------------------------
    def _plan(self, bundle: GeneratedLake, rng: np.random.Generator) -> _GenerationPlan:
        """Make every shared-RNG decision, sequentially, before training.

        Draw order here replicates the registration-time order exactly
        (one hidden-history draw per model, chain structure draws between
        them), so the RNG stream — and therefore every downstream id,
        name, and flag — matches a fully sequential build.
        """
        spec = self.spec
        plan = _GenerationPlan()

        # 1. Foundations: broad multi-domain training, varied architectures.
        for i in range(spec.num_foundations):
            dim, hidden_layers = _ARCH_CYCLE[i % len(_ARCH_CYCLE)]
            key = ("foundation", i)
            plan.tasks[key] = FoundationTask(
                index=i, dim=dim, hidden_layers=hidden_layers,
                seed=spec.seed * 100 + i, epochs=spec.foundation_epochs,
            )
            plan.dependencies[key] = []
            hidden = rng.random() < spec.hidden_history_fraction
            plan.slots.append(_PlannedModel(
                task_key=key, result_index=0,
                name=self._pick_name(f"foundation-{i}"),
                domains=tuple(spec.domains), dataset=bundle.base_dataset,
                parent_slots=(), specialty=None, hidden=hidden,
                is_foundation=True,
            ))

        # 2. Derivation chains off each foundation.
        kinds = sorted(spec.transform_mix)
        weights = np.array([spec.transform_mix[k] for k in kinds], dtype=float)
        weights /= weights.sum()
        domain_cycle = list(spec.domains)
        chain_counter = 0
        for f_index in range(spec.num_foundations):
            for c in range(spec.chains_per_foundation):
                specialty = domain_cycle[
                    (f_index * spec.chains_per_foundation + c) % len(domain_cycle)
                ]
                key = ("chain", f_index, c)
                parent_slot = f_index
                parent_name = plan.slots[f_index].name
                parent_domains = plan.slots[f_index].domains
                parent_specialty: Optional[str] = None
                steps: List[ChainStep] = []
                depth = 1 + int(rng.integers(spec.max_chain_depth))
                for level in range(depth):
                    # First hop specializes; later hops are release ops.
                    if level == 0:
                        kind = str(rng.choice(kinds, p=weights))
                    else:
                        kind = str(rng.choice(["prune", "quantize", "finetune"]))
                    chain_counter += 1
                    serial = chain_counter
                    seed = spec.seed * 1000 + serial
                    companion = spec.domains[
                        (list(spec.domains).index(specialty) + 1) % len(spec.domains)
                    ]
                    dataset: Optional[TextDataset] = None
                    if kind in _DATA_KINDS:
                        dataset = self._specialty_dataset(
                            bundle, [specialty, companion], seed
                        )
                    params: Dict[str, object] = {}
                    if kind == "edit":
                        probe_index = int(rng.integers(len(bundle.base_dataset)))
                        target = int(rng.integers(len(DOMAIN_NAMES)))
                        preserve_count = min(40, len(bundle.base_dataset))
                        preserve_idx = rng.choice(
                            len(bundle.base_dataset), size=preserve_count,
                            replace=False,
                        )
                        params = {
                            "probe_tokens": bundle.base_dataset.tokens[probe_index],
                            "target_class": target,
                            "preserve_tokens": bundle.base_dataset.tokens[preserve_idx],
                        }
                    elif kind == "prune":
                        params = {"sparsity": float(rng.uniform(0.3, 0.6))}
                    elif kind == "quantize":
                        params = {"bits": int(rng.choice([4, 6, 8]))}
                    if kind == "distill":
                        child_specialty = parent_specialty or specialty
                        domains = (specialty, companion)
                    elif kind in _DATA_KINDS:
                        child_specialty = specialty
                        domains = (specialty, companion)
                    else:
                        child_specialty = parent_specialty
                        domains = parent_domains
                    hidden = rng.random() < spec.hidden_history_fraction
                    descriptive = (
                        f"{parent_name}--{kind}-"
                        f"{specialty if dataset is not None else 'release'}-{serial}"
                    )
                    name = self._pick_name(descriptive)
                    steps.append(ChainStep(
                        kind=kind, seed=seed, specialty=specialty,
                        epochs=spec.specialize_epochs, dataset=dataset,
                        params=params,
                    ))
                    plan.slots.append(_PlannedModel(
                        task_key=key, result_index=level, name=name,
                        domains=tuple(domains), dataset=dataset,
                        parent_slots=(parent_slot,), specialty=child_specialty,
                        hidden=hidden, is_foundation=False,
                    ))
                    parent_slot = len(plan.slots) - 1
                    parent_name = name
                    parent_domains = tuple(domains)
                    parent_specialty = child_specialty
                plan.tasks[key] = ChainTask(
                    parent_architecture={}, parent_state={}, steps=steps
                )
                plan.dependencies[key] = [("foundation", f_index)]
                plan.parent_of[key] = ("foundation", f_index)

        # 3. Language-model foundations and chains (mixed-modality lake).
        self._plan_lm_models(bundle, plan, rng)
        return plan

    def _plan_lm_models(
        self, bundle: GeneratedLake, plan: _GenerationPlan, rng: np.random.Generator
    ) -> None:
        """Plan LM foundations plus specialization chains.

        LMs train next-token prediction directly on the lake's document
        token matrices, so they share the dataset registry (and lineage)
        with the classifier population.
        """
        spec = self.spec
        domain_cycle = list(spec.domains)
        for i in range(spec.num_lm_foundations):
            key = ("lm_foundation", i)
            plan.tasks[key] = LMFoundationTask(
                index=i, seed=spec.seed * 400 + i, epochs=spec.lm_epochs,
                max_seq_len=max(spec.seq_len, 32),
            )
            plan.dependencies[key] = []
            hidden = rng.random() < spec.hidden_history_fraction
            foundation_name = self._pick_name(f"lm-foundation-{i}")
            foundation_slot = len(plan.slots)
            plan.slots.append(_PlannedModel(
                task_key=key, result_index=0, name=foundation_name,
                domains=tuple(spec.domains), dataset=bundle.base_dataset,
                parent_slots=(), specialty=None, hidden=hidden,
                is_foundation=True,
            ))
            for c in range(spec.lm_chains):
                specialty = domain_cycle[(i * spec.lm_chains + c) % len(domain_cycle)]
                companion = domain_cycle[
                    (domain_cycle.index(specialty) + 1) % len(domain_cycle)
                ]
                seed = spec.seed * 500 + i * 10 + c
                dataset = self._specialty_dataset(
                    bundle, [specialty, companion], seed
                )
                chain_key = ("lm_chain", i, c)
                plan.tasks[chain_key] = LMChainTask(
                    parent_architecture={}, parent_state={}, dataset=dataset,
                    seed=seed, epochs=max(2, spec.lm_epochs),
                )
                plan.dependencies[chain_key] = [key]
                plan.parent_of[chain_key] = key
                hidden = rng.random() < spec.hidden_history_fraction
                name = self._pick_name(
                    f"{foundation_name}--finetune-{specialty}-{c}"
                )
                plan.slots.append(_PlannedModel(
                    task_key=chain_key, result_index=0, name=name,
                    domains=(specialty, companion), dataset=dataset,
                    parent_slots=(foundation_slot,), specialty=specialty,
                    hidden=hidden, is_foundation=False,
                ))

    # -- execution -------------------------------------------------------
    def _run_wave(
        self, executor: WaveExecutor, payloads: List, label: str
    ) -> List[List[ModelResult]]:
        """Run one wave, satisfying it from the checkpoint when possible.

        Completed waves are persisted as they land (with live ``model``
        handles stripped — states rehydrate bit-identically), so a
        killed run resumes from its last completed wave.
        """
        with trace("lake.generate.wave", label=label, tasks=len(payloads)) as span:
            if self._checkpoint is not None:
                cached = self._checkpoint.load(label)
                if cached is not None:
                    if span is not None:
                        span.set_attribute("cached", True)
                    return cached
            if span is not None:
                span.set_attribute("cached", False)
            results = executor.run_wave(run_task, payloads, label=label)
            if self._checkpoint is not None:
                self._checkpoint.store(label, [
                    [replace(result, model=None) for result in task_results]
                    for task_results in results
                ])
            return results

    def _execute_plan(
        self, plan: _GenerationPlan, executor: WaveExecutor
    ) -> Dict[Hashable, List[ModelResult]]:
        """Run the planned task DAG wave by wave."""
        results: Dict[Hashable, List[ModelResult]] = {}
        for wave_index, wave in enumerate(topological_waves(plan.dependencies)):
            payloads = []
            for key in wave:
                task = plan.tasks[key]
                parent_key = plan.parent_of.get(key)
                if parent_key is not None:
                    parent = results[parent_key][0]
                    task.parent_architecture = parent.architecture
                    task.parent_state = parent.state
                payloads.append(task)
            wave_results = self._run_wave(
                executor, payloads, f"generate.wave{wave_index}"
            )
            for key, task_results in zip(wave, wave_results):
                results[key] = task_results
        return results

    # -- registration ----------------------------------------------------
    def _register_plan(
        self,
        bundle: GeneratedLake,
        plan: _GenerationPlan,
        results: Dict[Hashable, List[ModelResult]],
    ) -> List[ModelRecord]:
        """Register all planned models in canonical slot order."""
        with trace("lake.generate.register", slots=len(plan.slots)):
            return self._register_slots(bundle, plan, results)

    def _register_slots(
        self,
        bundle: GeneratedLake,
        plan: _GenerationPlan,
        results: Dict[Hashable, List[ModelResult]],
    ) -> List[ModelRecord]:
        slot_ids: List[str] = []
        foundation_records: List[ModelRecord] = []
        for slot in plan.slots:
            result = results[slot.task_key][slot.result_index]
            model = self._model_from(result)
            parents = tuple(slot_ids[p] for p in slot.parent_slots)
            record = self._register(
                bundle, model, name=slot.name, domains=slot.domains,
                dataset=slot.dataset, parents=parents,
                transform=result.transform, specialty=slot.specialty,
                hidden=slot.hidden, accuracy=result.accuracy,
            )
            slot_ids.append(record.model_id)
            if slot.is_foundation:
                bundle.truth.foundations.append(record.model_id)
                foundation_records.append(record)
        return foundation_records

    # -- adaptive tail: merges and stitches ------------------------------
    def _add_merges(
        self,
        bundle: GeneratedLake,
        rng: np.random.Generator,
        executor: WaveExecutor,
    ) -> None:
        """Merge pairs of same-architecture specialists."""
        spec = self.spec
        records = list(bundle.lake)
        by_arch: Dict[str, List[ModelRecord]] = {}
        for record in records:
            if record.model_id in bundle.truth.foundations:
                continue
            key = str(sorted(record.architecture.items()))
            by_arch.setdefault(key, []).append(record)
        pairs: List[Tuple[ModelRecord, ModelRecord]] = []
        for group in by_arch.values():
            if len(pairs) >= spec.num_merges or len(group) < 2:
                continue
            pairs.append((group[0], group[1]))
        tasks = []
        for first, second in pairs:
            model_a = bundle.lake.get_model(first.model_id, force=True)
            model_b = bundle.lake.get_model(second.model_id, force=True)
            tasks.append(MergeTask(
                first_architecture=model_a.architecture_spec(),
                first_state=model_a.state_dict(),
                second_architecture=model_b.architecture_spec(),
                second_state=model_b.state_dict(),
                alpha=0.5, seed=spec.seed,
            ))
        if not tasks:
            return
        merge_results = self._run_wave(executor, tasks, "merge")
        for (first, second), task_results in zip(pairs, merge_results):
            result = task_results[0]
            domains = tuple(
                dict.fromkeys(
                    bundle.truth.model_domains[first.model_id]
                    + bundle.truth.model_domains[second.model_id]
                )
            )
            hidden = rng.random() < spec.hidden_history_fraction
            self._register(
                bundle, self._model_from(result),
                name=self._pick_name(f"merge-{first.name[:18]}-{second.name[:18]}"),
                domains=domains, dataset=None,
                parents=(first.model_id, second.model_id),
                transform=result.transform, specialty=None,
                hidden=hidden, accuracy=result.accuracy,
            )

    def _add_stitches(
        self,
        bundle: GeneratedLake,
        foundations: List[ModelRecord],
        rng: np.random.Generator,
        executor: WaveExecutor,
    ) -> None:
        spec = self.spec
        text_foundations = [
            r for r in foundations if r.family == "text_classifier"
        ]
        pairs: List[Tuple[ModelRecord, ModelRecord]] = []
        tasks = []
        for i in range(len(text_foundations) - 1):
            if len(pairs) >= spec.num_stitches:
                break
            front_rec, back_rec = text_foundations[i], text_foundations[i + 1]
            front = bundle.lake.get_model(front_rec.model_id, force=True)
            back = bundle.lake.get_model(back_rec.model_id, force=True)
            adapter_data, derivation = sample_dataset(
                bundle.base_dataset, 0.5, seed=spec.seed + 777 + i
            )
            bundle.lake.datasets.register(adapter_data, derivation)
            pairs.append((front_rec, back_rec))
            tasks.append(StitchTask(
                front_architecture=front.architecture_spec(),
                front_state=front.state_dict(),
                back_architecture=back.architecture_spec(),
                back_state=back.state_dict(),
                adapter_data=adapter_data, adapter_epochs=5,
                seed=spec.seed + i,
            ))
        if not tasks:
            return
        stitch_results = self._run_wave(executor, tasks, "stitch")
        for (front_rec, back_rec), task, task_results in zip(
            pairs, tasks, stitch_results
        ):
            result = task_results[0]
            hidden = rng.random() < spec.hidden_history_fraction
            self._register(
                bundle, self._model_from(result),
                name=self._pick_name(f"stitch-{front_rec.name}-{back_rec.name}"),
                domains=spec.domains, dataset=task.adapter_data,
                parents=(front_rec.model_id, back_rec.model_id),
                transform=result.transform, specialty=None,
                hidden=hidden, accuracy=result.accuracy,
            )


def generate_lake(
    spec: Optional[LakeSpec] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> GeneratedLake:
    """Convenience wrapper: build a benchmark lake from a spec.

    ``checkpoint_dir`` enables wave-granular crash recovery;
    ``resume=True`` continues a killed run from its last completed wave
    (the result is bit-identical to an uninterrupted run).  The
    checkpoint is *not* cleared here — callers clear it once the lake is
    durably saved (see :meth:`LakeGenerator.clear_checkpoint`).
    """
    return LakeGenerator(
        spec, checkpoint_dir=checkpoint_dir, resume=resume
    ).generate()
