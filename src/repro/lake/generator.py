"""Benchmark-lake generation with verified ground truth.

The paper (§3 Benchmarking, §5) says model-lake research needs shared
benchmark lakes with *verified ground truth*: labeled parameters,
architectures, and detailed transformation records.  This module builds
exactly that: a population of genuinely-trained models related by real
transformations, with every relationship recorded.

Design: foundation-first.  Foundation models are trained on a broad
multi-domain corpus (general features), then derivation chains
specialize them — fine-tunes, LoRA adapters, preference tunes, edits,
pruned/quantized releases, distilled students, merges, stitches —
mirroring how real hubs are populated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import TextDataset, make_domain_dataset
from repro.data.derivation import filter_by_domain, sample_dataset
from repro.data.domains import DOMAIN_NAMES
from repro.data.tokenizer import Tokenizer
from repro.data.vocab import build_default_vocabulary
from repro.errors import ConfigError
from repro.lake.card import ModelCard
from repro.lake.lake import ModelLake
from repro.lake.record import ModelHistory, ModelRecord
from repro.nn.models import TextClassifier
from repro.nn.module import Module
from repro.nn.train import evaluate_accuracy, train_classifier
from repro.obs import metrics as obs_metrics
from repro.obs.instrument import LAKE_GENERATED_MODELS
from repro.obs.logging import get_logger
from repro.obs.tracing import trace
from repro.transforms import (
    TransformRecord,
    distill_classifier,
    edit_classifier,
    finetune_classifier,
    lora_adapt_classifier,
    merge_models,
    preference_tune,
    prune_model,
    quantize_model,
    stitch_classifiers,
)
from repro.utils.rng import derive_rng

_log = get_logger("lake.generator")

#: Default probability mix over chain transforms.
DEFAULT_TRANSFORM_MIX: Dict[str, float] = {
    "finetune": 0.35,
    "lora": 0.20,
    "preference": 0.10,
    "edit": 0.10,
    "prune": 0.10,
    "quantize": 0.05,
    "distill": 0.10,
}

#: Architecture variety cycled across foundations.
_ARCH_CYCLE: Tuple[Tuple[int, Tuple[int, ...]], ...] = (
    (16, (24,)),
    (20, (32,)),
    (24, (16, 16)),
    (16, (32,)),
)


@dataclass
class LakeSpec:
    """Configuration for benchmark-lake generation."""

    num_foundations: int = 3
    chains_per_foundation: int = 4
    max_chain_depth: int = 2
    docs_per_domain: int = 25
    eval_docs_per_domain: int = 8
    seq_len: int = 24
    foundation_epochs: int = 8
    specialize_epochs: int = 6
    num_merges: int = 1
    num_stitches: int = 1
    seed: int = 0
    transform_mix: Dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_TRANSFORM_MIX)
    )
    domains: Tuple[str, ...] = DOMAIN_NAMES
    hidden_history_fraction: float = 0.0
    #: Use opaque model names ("model-0007") instead of descriptive ones.
    #: Descriptive names leak training domains to keyword search, which
    #: real hubs only sometimes do; experiments sweep both regimes.
    opaque_names: bool = False
    #: Number of language-model foundations (heterogeneous-modality lake:
    #: the paper requires content-based search to "cover all models in
    #: model lakes, including large language models").  Each LM foundation
    #: gets `lm_chains` fine-tune/release chains.
    num_lm_foundations: int = 0
    lm_chains: int = 2
    lm_epochs: int = 3

    def validate(self) -> None:
        if self.num_foundations <= 0:
            raise ConfigError("num_foundations must be positive")
        if not self.transform_mix:
            raise ConfigError("transform_mix must be non-empty")
        if any(w < 0 for w in self.transform_mix.values()):
            raise ConfigError("transform_mix weights must be non-negative")
        if not 0.0 <= self.hidden_history_fraction <= 1.0:
            raise ConfigError("hidden_history_fraction must be in [0, 1]")


@dataclass
class LakeGroundTruth:
    """Everything the generator knows about the lake it built.

    This is the "verified ground truth" benchmark lakes require; task
    evaluations score solutions against it, and it is never exposed to
    the solutions themselves.
    """

    #: (parent_ids, child_id, transform) for every derivation edge.
    edges: List[Tuple[Tuple[str, ...], str, TransformRecord]] = field(default_factory=list)
    foundations: List[str] = field(default_factory=list)
    #: Domains whose data contributed to each model (cumulative).
    model_domains: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: Primary specialty (None for generalist foundations and releases).
    specialty: Dict[str, Optional[str]] = field(default_factory=dict)
    #: Dataset digest used to create each model (None for data-free ops).
    model_dataset: Dict[str, Optional[str]] = field(default_factory=dict)
    #: Per-domain held-out accuracy of every model.
    domain_accuracy: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def parent_map(self) -> Dict[str, Tuple[str, ...]]:
        return {child: parents for parents, child, _ in self.edges}

    def edge_set(self) -> set:
        """Set of (parent, child) pairs, expanding multi-parent edges."""
        pairs = set()
        for parents, child, _ in self.edges:
            for parent in parents:
                pairs.add((parent, child))
        return pairs

    def transform_of(self, child_id: str) -> Optional[TransformRecord]:
        for _, child, record in self.edges:
            if child == child_id:
                return record
        return None


@dataclass
class GeneratedLake:
    """Bundle returned by :func:`generate_lake`."""

    lake: ModelLake
    truth: LakeGroundTruth
    tokenizer: Tokenizer
    base_dataset: TextDataset
    eval_dataset: TextDataset

    @property
    def num_models(self) -> int:
        return len(self.lake)


def _truthful_card(
    name: str,
    family: str,
    domains: Sequence[str],
    dataset_name: Optional[str],
    base_model: Optional[str],
    transform: Optional[TransformRecord],
    metrics: Dict[str, float],
    specialty: Optional[str],
) -> ModelCard:
    """Build a complete, accurate card from generation-time knowledge."""
    if specialty:
        description = (
            f"A {family} model specialized for {specialty} text. "
            f"Derived from {base_model} and adapted to the {specialty} domain."
        )
        intended = (
            f"Classify and analyze {specialty} documents; best suited to "
            f"{' and '.join(domains)} content."
        )
    else:
        description = (
            f"A general-purpose {family} model trained across "
            f"{len(domains)} domains."
        )
        intended = "General domain classification across heterogeneous text."
    transform_summary = transform.describe() if transform is not None else None
    return ModelCard(
        model_name=name,
        description=description,
        intended_use=intended,
        training_data=dataset_name,
        training_domains=list(domains),
        base_model=base_model,
        transform_summary=transform_summary,
        metrics=dict(metrics),
        limitations=(
            f"Synthetic-corpus model; unreliable outside its training domains "
            f"({', '.join(domains)})."
        ),
        license="mit",
        tags=[family, "classification", *domains],
    )


def _domain_accuracy(model: Module, eval_set: TextDataset) -> Dict[str, float]:
    """Held-out per-domain competence score in [0, 1].

    Classifiers: accuracy.  Language models: mean per-token likelihood
    ``exp(-NLL)`` of the domain's held-out documents — the LM analogue of
    "how well does this model handle this domain's text".
    """
    domains = np.asarray(eval_set.domains)
    if hasattr(model, "predict"):
        predictions = model.predict(eval_set.tokens)
        per_example = (predictions == eval_set.labels).astype(np.float64)
    else:
        per_example = _lm_likelihoods(model, eval_set.tokens)
    return {
        domain: float(per_example[domains == domain].mean())
        for domain in sorted(set(eval_set.domains))
    }


def _lm_likelihoods(model: Module, tokens: np.ndarray) -> np.ndarray:
    """Per-document mean next-token likelihood exp(-NLL) for an LM."""
    logits = model(tokens).data
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    scores = np.zeros(len(tokens))
    for i, row in enumerate(tokens):
        positions = np.where(row > 0)[0]
        if len(positions) < 2:
            continue
        steps = positions[:-1]
        nll = -log_probs[i, steps, row[steps + 1]].mean()
        scores[i] = float(np.exp(-nll))
    return scores


class LakeGenerator:
    """Builds a :class:`GeneratedLake` according to a :class:`LakeSpec`."""

    def __init__(self, spec: Optional[LakeSpec] = None):
        self.spec = spec or LakeSpec()
        self.spec.validate()

    # -- helpers ---------------------------------------------------------
    def _register(
        self,
        bundle: GeneratedLake,
        model: Module,
        name: str,
        domains: Sequence[str],
        dataset: Optional[TextDataset],
        parents: Tuple[str, ...],
        transform: Optional[TransformRecord],
        specialty: Optional[str],
        rng: np.random.Generator,
    ) -> ModelRecord:
        accuracy = _domain_accuracy(model, bundle.eval_dataset)
        overall = float(np.mean(list(accuracy.values())))
        metrics = {f"acc_{d}": v for d, v in accuracy.items()}
        metrics["acc_overall"] = overall
        base_name = (
            bundle.lake.get_record(parents[0]).name if parents else None
        )
        card = _truthful_card(
            name=name,
            family=model.architecture_spec()["family"],
            domains=domains,
            dataset_name=dataset.name if dataset is not None else None,
            base_model=base_name,
            transform=transform,
            metrics=metrics,
            specialty=specialty,
        )
        history = ModelHistory(
            parent_ids=parents,
            transform=transform,
            dataset_digest=dataset.content_digest() if dataset is not None else None,
            dataset_name=dataset.name if dataset is not None else None,
            algorithm=transform.kind if transform is not None else "train_from_scratch",
            seed=self.spec.seed,
        )
        hidden = rng.random() < self.spec.hidden_history_fraction
        record = bundle.lake.add_model(
            model,
            name=name,
            card=card,
            history=history,
            history_public=not hidden,
            tags=list(card.tags),
        )
        for metric, value in metrics.items():
            bundle.lake.record_metric(record.model_id, metric, value)
        truth = bundle.truth
        truth.model_domains[record.model_id] = tuple(domains)
        truth.specialty[record.model_id] = specialty
        truth.model_dataset[record.model_id] = (
            dataset.content_digest() if dataset is not None else None
        )
        truth.domain_accuracy[record.model_id] = accuracy
        if parents:
            assert transform is not None
            truth.edges.append((parents, record.model_id, transform))
        obs_metrics.inc(LAKE_GENERATED_MODELS)
        _log.debug(
            "model.registered",
            name=name,
            model_id=record.model_id,
            transform=transform.kind if transform is not None else "train",
            specialty=specialty,
        )
        return record

    def _pick_name(self, descriptive: str) -> str:
        """Model name: descriptive, or opaque when the spec asks for it."""
        if not self.spec.opaque_names:
            return descriptive
        self._name_counter += 1
        return f"model-{self._name_counter:04d}"

    def _specialty_dataset(
        self,
        bundle: GeneratedLake,
        domains: Sequence[str],
        seed: int,
    ) -> TextDataset:
        """Derive a specialty dataset from the base corpus, with lineage."""
        filtered, derivation = filter_by_domain(bundle.base_dataset, list(domains))
        bundle.lake.datasets.register(filtered, derivation)
        sampled, derivation2 = sample_dataset(filtered, 0.9, seed=seed)
        bundle.lake.datasets.register(sampled, derivation2)
        return sampled

    # -- main ------------------------------------------------------------
    def generate(self) -> GeneratedLake:
        """Generate the lake; deterministic in ``spec.seed``."""
        with trace("lake.generate", seed=self.spec.seed):
            bundle = self._generate()
        _log.info(
            "lake.generated",
            models=bundle.num_models,
            seed=self.spec.seed,
            foundations=len(bundle.truth.foundations),
        )
        return bundle

    def _generate(self) -> GeneratedLake:
        spec = self.spec
        rng = derive_rng(spec.seed, "lake_generator")
        tokenizer = Tokenizer(build_default_vocabulary())
        vocab_size = tokenizer.vocab_size
        num_classes = len(DOMAIN_NAMES)

        base_dataset = make_domain_dataset(
            list(spec.domains),
            spec.docs_per_domain,
            seq_len=spec.seq_len,
            seed=spec.seed,
            tokenizer=tokenizer,
            name=f"multidomain-corpus-v{spec.seed}",
        )
        eval_dataset = make_domain_dataset(
            list(spec.domains),
            spec.eval_docs_per_domain,
            seq_len=spec.seq_len,
            seed=spec.seed + 90_000,
            tokenizer=tokenizer,
            name=f"multidomain-eval-v{spec.seed}",
        )
        lake = ModelLake()
        lake.datasets.register(base_dataset)
        self._name_counter = 0
        bundle = GeneratedLake(
            lake=lake,
            truth=LakeGroundTruth(),
            tokenizer=tokenizer,
            base_dataset=base_dataset,
            eval_dataset=eval_dataset,
        )

        # 1. Foundations: broad multi-domain training, varied architectures.
        foundation_records: List[ModelRecord] = []
        for i in range(spec.num_foundations):
            dim, hidden = _ARCH_CYCLE[i % len(_ARCH_CYCLE)]
            model = TextClassifier(
                vocab_size, num_classes, dim=dim, hidden=hidden,
                seed=spec.seed * 100 + i,
            )
            # Train to competence: foundations must be solid generalists,
            # so keep training (bounded) until train accuracy clears 0.97.
            with trace("lake.generate.foundation", index=i, dim=dim):
                for round_index in range(3):
                    train_classifier(
                        model, base_dataset.tokens, base_dataset.labels,
                        epochs=spec.foundation_epochs, lr=5e-3,
                        seed=spec.seed * 100 + i + round_index,
                    )
                    accuracy = evaluate_accuracy(
                        model, base_dataset.tokens, base_dataset.labels
                    )
                    if accuracy >= 0.97:
                        break
            record = self._register(
                bundle, model, name=self._pick_name(f"foundation-{i}"),
                domains=spec.domains, dataset=base_dataset,
                parents=(), transform=None, specialty=None, rng=rng,
            )
            bundle.truth.foundations.append(record.model_id)
            foundation_records.append(record)

        # 2. Derivation chains off each foundation.
        kinds = sorted(spec.transform_mix)
        weights = np.array([spec.transform_mix[k] for k in kinds], dtype=float)
        weights /= weights.sum()
        domain_cycle = list(spec.domains)
        chain_counter = 0
        for f_index, foundation in enumerate(foundation_records):
            for c in range(spec.chains_per_foundation):
                specialty = domain_cycle[(f_index * spec.chains_per_foundation + c) % len(domain_cycle)]
                parent_record = foundation
                parent_model = lake.get_model(foundation.model_id, force=True)
                depth = 1 + int(rng.integers(spec.max_chain_depth))
                for level in range(depth):
                    # First hop specializes; later hops are release ops.
                    if level == 0:
                        kind = str(rng.choice(kinds, p=weights))
                    else:
                        kind = str(rng.choice(["prune", "quantize", "finetune"]))
                    chain_counter += 1
                    with trace(
                        "lake.generate.transform",
                        kind=kind, parent=parent_record.name, level=level,
                    ):
                        child_model, child_record = self._apply_transform(
                            bundle, kind, parent_model, parent_record,
                            specialty, chain_counter, rng,
                        )
                    parent_model, parent_record = child_model, child_record

        # 3. Language-model foundations and chains (mixed-modality lake).
        self._add_lm_models(bundle, rng)
        # 4. Merges between same-foundation specialists.
        self._add_merges(bundle, rng)
        # 5. Stitches between foundations of different widths.
        self._add_stitches(bundle, foundation_records, rng)
        return bundle

    def _apply_transform(
        self,
        bundle: GeneratedLake,
        kind: str,
        parent_model: Module,
        parent_record: ModelRecord,
        specialty: str,
        serial: int,
        rng: np.random.Generator,
    ) -> Tuple[Module, ModelRecord]:
        spec = self.spec
        seed = spec.seed * 1000 + serial
        parent_id = parent_record.model_id
        parent_specialty = bundle.truth.specialty.get(parent_id)
        companion = spec.domains[(list(spec.domains).index(specialty) + 1) % len(spec.domains)]

        if kind in ("finetune", "lora", "preference", "distill"):
            dataset = self._specialty_dataset(bundle, [specialty, companion], seed)
        else:
            dataset = None

        if kind == "finetune":
            child, record = finetune_classifier(
                parent_model, dataset, epochs=spec.specialize_epochs, seed=seed
            )
            child_specialty: Optional[str] = specialty
            domains = (specialty, companion)
        elif kind == "lora":
            child, record = lora_adapt_classifier(
                parent_model, dataset, rank=2,
                epochs=spec.specialize_epochs, lr=1e-2, seed=seed,
            )
            child_specialty = specialty
            domains = (specialty, companion)
        elif kind == "preference":
            child, record = preference_tune(
                parent_model, dataset, (specialty,),
                epochs=max(2, spec.specialize_epochs // 2), seed=seed,
            )
            child_specialty = specialty
            domains = (specialty, companion)
        elif kind == "distill":
            child, record = distill_classifier(
                parent_model, dataset, epochs=spec.specialize_epochs, seed=seed
            )
            child_specialty = parent_specialty or specialty
            domains = (specialty, companion)
        elif kind == "edit":
            probe_index = int(rng.integers(len(bundle.base_dataset)))
            target = int(rng.integers(len(DOMAIN_NAMES)))
            preserve_count = min(40, len(bundle.base_dataset))
            preserve_idx = rng.choice(
                len(bundle.base_dataset), size=preserve_count, replace=False
            )
            child, record = edit_classifier(
                parent_model, bundle.base_dataset.tokens[probe_index],
                target_class=target, seed=seed,
                preserve_tokens=bundle.base_dataset.tokens[preserve_idx],
            )
            child_specialty = parent_specialty
            domains = bundle.truth.model_domains[parent_id]
        elif kind == "prune":
            child, record = prune_model(
                parent_model, sparsity=float(rng.uniform(0.3, 0.6)), seed=seed
            )
            child_specialty = parent_specialty
            domains = bundle.truth.model_domains[parent_id]
        elif kind == "quantize":
            child, record = quantize_model(
                parent_model, bits=int(rng.choice([4, 6, 8])), seed=seed
            )
            child_specialty = parent_specialty
            domains = bundle.truth.model_domains[parent_id]
        else:
            raise ConfigError(f"unknown chain transform kind {kind!r}")

        descriptive = (
            f"{parent_record.name}--{kind}-"
            f"{specialty if dataset is not None else 'release'}-{serial}"
        )
        name = self._pick_name(descriptive)
        child_record = self._register(
            bundle, child, name=name, domains=domains, dataset=dataset,
            parents=(parent_id,), transform=record,
            specialty=child_specialty, rng=rng,
        )
        return child, child_record

    def _add_lm_models(self, bundle: GeneratedLake, rng: np.random.Generator) -> None:
        """Add language-model foundations plus specialization chains.

        LMs train next-token prediction directly on the lake's document
        token matrices, so they share the dataset registry (and lineage)
        with the classifier population.
        """
        from repro.nn.train import train_language_model
        from repro.nn.transformer import TransformerLM
        from repro.transforms.finetune import finetune_language_model

        spec = self.spec
        domain_cycle = list(spec.domains)
        for i in range(spec.num_lm_foundations):
            lm = TransformerLM(
                vocab_size=bundle.tokenizer.vocab_size,
                d_model=24, num_heads=2, num_layers=2,
                max_seq_len=max(spec.seq_len, 32),
                seed=spec.seed * 400 + i,
            )
            train_language_model(
                lm, bundle.base_dataset.tokens,
                epochs=spec.lm_epochs, batch_size=16, seed=spec.seed * 400 + i,
            )
            record = self._register(
                bundle, lm, name=self._pick_name(f"lm-foundation-{i}"),
                domains=spec.domains, dataset=bundle.base_dataset,
                parents=(), transform=None, specialty=None, rng=rng,
            )
            bundle.truth.foundations.append(record.model_id)

            parent_model: Module = lm
            parent_record = record
            for c in range(spec.lm_chains):
                specialty = domain_cycle[(i * spec.lm_chains + c) % len(domain_cycle)]
                companion = domain_cycle[
                    (domain_cycle.index(specialty) + 1) % len(domain_cycle)
                ]
                seed = spec.seed * 500 + i * 10 + c
                dataset = self._specialty_dataset(
                    bundle, [specialty, companion], seed
                )
                child, transform = finetune_language_model(
                    lm, dataset, epochs=max(2, spec.lm_epochs), seed=seed
                )
                name = self._pick_name(
                    f"{record.name}--finetune-{specialty}-{c}"
                )
                self._register(
                    bundle, child, name=name, domains=(specialty, companion),
                    dataset=dataset, parents=(record.model_id,),
                    transform=transform, specialty=specialty, rng=rng,
                )

    def _add_merges(self, bundle: GeneratedLake, rng: np.random.Generator) -> None:
        """Merge pairs of same-architecture specialists."""
        spec = self.spec
        done = 0
        records = list(bundle.lake)
        by_arch: Dict[str, List[ModelRecord]] = {}
        for record in records:
            if record.model_id in bundle.truth.foundations:
                continue
            key = str(sorted(record.architecture.items()))
            by_arch.setdefault(key, []).append(record)
        for group in by_arch.values():
            if done >= spec.num_merges or len(group) < 2:
                continue
            first, second = group[0], group[1]
            model_a = bundle.lake.get_model(first.model_id, force=True)
            model_b = bundle.lake.get_model(second.model_id, force=True)
            child, record = merge_models(model_a, model_b, alpha=0.5, seed=spec.seed)
            domains = tuple(
                dict.fromkeys(
                    bundle.truth.model_domains[first.model_id]
                    + bundle.truth.model_domains[second.model_id]
                )
            )
            self._register(
                bundle, child, name=self._pick_name(f"merge-{first.name[:18]}-{second.name[:18]}"),
                domains=domains, dataset=None,
                parents=(first.model_id, second.model_id),
                transform=record, specialty=None, rng=rng,
            )
            done += 1

    def _add_stitches(
        self,
        bundle: GeneratedLake,
        foundations: List[ModelRecord],
        rng: np.random.Generator,
    ) -> None:
        spec = self.spec
        text_foundations = [
            r for r in foundations if r.family == "text_classifier"
        ]
        done = 0
        for i in range(len(text_foundations) - 1):
            if done >= spec.num_stitches:
                break
            front_rec, back_rec = text_foundations[i], text_foundations[i + 1]
            front = bundle.lake.get_model(front_rec.model_id, force=True)
            back = bundle.lake.get_model(back_rec.model_id, force=True)
            adapter_data, derivation = sample_dataset(
                bundle.base_dataset, 0.5, seed=spec.seed + 777 + i
            )
            bundle.lake.datasets.register(adapter_data, derivation)
            child, record = stitch_classifiers(
                front, back, adapter_data, adapter_epochs=5, seed=spec.seed + i
            )
            self._register(
                bundle, child, name=self._pick_name(f"stitch-{front_rec.name}-{back_rec.name}"),
                domains=spec.domains, dataset=adapter_data,
                parents=(front_rec.model_id, back_rec.model_id),
                transform=record, specialty=None, rng=rng,
            )
            done += 1


def generate_lake(spec: Optional[LakeSpec] = None) -> GeneratedLake:
    """Convenience wrapper: build a benchmark lake from a spec."""
    return LakeGenerator(spec).generate()
