"""Worker-side tasks for wave-scheduled lake generation.

The generator's planning phase (:meth:`LakeGenerator._plan`) turns a
:class:`LakeSpec` into task payloads defined here; a
:class:`repro.parallel.WaveExecutor` runs them — inline for
``workers=1``, in a process pool otherwise.  Every payload is
self-contained (parent weights, datasets, seeds all inside), so a task
computes the same bits no matter which process executes it.

Workers never touch the lake: they return plain
:class:`ModelResult` payloads (state dict, architecture, transform
record, per-domain accuracy) and the coordinator registers them in
canonical plan order, which is what keeps model ids, derivation edges,
and weight digests bit-identical across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.data.datasets import TextDataset
from repro.errors import ConfigError
from repro.nn.models import TextClassifier, build_model
from repro.nn.module import Module
from repro.nn.train import (
    evaluate_accuracy,
    train_classifier,
    train_language_model,
)
from repro.obs.tracing import trace
from repro.transforms import (
    TransformRecord,
    distill_classifier,
    edit_classifier,
    finetune_classifier,
    lora_adapt_classifier,
    merge_models,
    preference_tune,
    prune_model,
    quantize_model,
    stitch_classifiers,
)


@dataclass
class WorkerContext:
    """Shared read-only inputs installed once per worker process."""

    base_dataset: TextDataset
    eval_dataset: TextDataset
    vocab_size: int
    num_classes: int
    #: Inline mode keeps the live Module on each result so the
    #: coordinator can skip a rebuild; pool mode ships state dicts only.
    keep_models: bool = False


_CONTEXT: Optional[WorkerContext] = None


def init_context(context: WorkerContext) -> None:
    """Process-pool initializer: install the shared worker context."""
    global _CONTEXT
    _CONTEXT = context


@dataclass
class ModelResult:
    """One generated model, as returned from a worker."""

    state: Dict[str, np.ndarray]
    architecture: Dict
    transform: Optional[TransformRecord]
    accuracy: Dict[str, float]
    #: Live model object (inline execution only; never pickled back).
    model: Optional[Module] = None


def domain_accuracy(model: Module, eval_set: TextDataset) -> Dict[str, float]:
    """Held-out per-domain competence score in [0, 1].

    Classifiers: accuracy.  Language models: mean per-token likelihood
    ``exp(-NLL)`` of the domain's held-out documents — the LM analogue of
    "how well does this model handle this domain's text".
    """
    domains = np.asarray(eval_set.domains)
    if hasattr(model, "predict"):
        predictions = model.predict(eval_set.tokens)
        per_example = (predictions == eval_set.labels).astype(np.float64)
    else:
        per_example = lm_likelihoods(model, eval_set.tokens)
    return {
        domain: float(per_example[domains == domain].mean())
        for domain in sorted(set(eval_set.domains))
    }


def lm_likelihoods(model: Module, tokens: np.ndarray) -> np.ndarray:
    """Per-document mean next-token likelihood exp(-NLL) for an LM.

    Fully vectorized: a "step" is every valid (>0) token position
    except each row's last one, and the target at step ``p`` is the
    token at position ``p + 1`` — exactly the pairs the old per-row
    loop scored.  Rows with fewer than two valid tokens score 0.
    """
    logits = model(tokens).data
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    valid = tokens > 0
    counts = valid.sum(axis=1)
    seq_len = tokens.shape[1]
    last = np.where(
        counts > 0, seq_len - 1 - np.argmax(valid[:, ::-1], axis=1), -1
    )
    steps = valid & (np.arange(seq_len)[None, :] < last[:, None])
    targets = np.zeros_like(tokens)
    targets[:, :-1] = tokens[:, 1:]
    gathered = np.take_along_axis(log_probs, targets[..., None], axis=2)[..., 0]
    step_counts = np.maximum(steps.sum(axis=1), 1)
    nll = -(gathered * steps).sum(axis=1) / step_counts
    return np.where(counts >= 2, np.exp(-nll), 0.0)


def _rebuild(architecture: Dict, state: Dict[str, np.ndarray]) -> Module:
    """Rehydrate a model exactly like ``ModelLake.get_model`` does."""
    model = build_model(dict(architecture))
    model.load_state_dict(state)
    model.eval()
    return model


def _result(model: Module, transform: Optional[TransformRecord], ctx: WorkerContext) -> ModelResult:
    return ModelResult(
        state=model.state_dict(),
        architecture=model.architecture_spec(),
        transform=transform,
        accuracy=domain_accuracy(model, ctx.eval_dataset),
        model=model if ctx.keep_models else None,
    )


# ----------------------------------------------------------------------
# Task payloads
# ----------------------------------------------------------------------
@dataclass
class FoundationTask:
    """Train one foundation classifier from scratch on the base corpus."""

    index: int
    dim: int
    hidden_layers: Tuple[int, ...]
    seed: int
    epochs: int

    def execute(self, ctx: WorkerContext) -> List[ModelResult]:
        model = TextClassifier(
            ctx.vocab_size, ctx.num_classes,
            dim=self.dim, hidden=self.hidden_layers, seed=self.seed,
        )
        # Train to competence: foundations must be solid generalists,
        # so keep training (bounded) until train accuracy clears 0.97.
        with trace("lake.generate.foundation", index=self.index, dim=self.dim):
            for round_index in range(3):
                train_classifier(
                    model, ctx.base_dataset.tokens, ctx.base_dataset.labels,
                    epochs=self.epochs, lr=5e-3, seed=self.seed + round_index,
                )
                accuracy = evaluate_accuracy(
                    model, ctx.base_dataset.tokens, ctx.base_dataset.labels
                )
                if accuracy >= 0.97:
                    break
        return [_result(model, None, ctx)]


@dataclass
class ChainStep:
    """One planned transform within a derivation chain."""

    kind: str
    seed: int
    specialty: str
    epochs: int
    dataset: Optional[TextDataset] = None
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ChainTask:
    """Run a full derivation chain (all levels) off one parent model.

    Levels within a chain are inherently sequential — each trains on its
    predecessor's live output — so the chain is the unit of parallelism.
    """

    parent_architecture: Dict
    parent_state: Dict[str, np.ndarray]
    steps: List[ChainStep]

    def execute(self, ctx: WorkerContext) -> List[ModelResult]:
        parent = _rebuild(self.parent_architecture, self.parent_state)
        results: List[ModelResult] = []
        for level, step in enumerate(self.steps):
            with trace("lake.generate.transform", kind=step.kind, level=level):
                child, record = _apply_step(parent, step)
            results.append(_result(child, record, ctx))
            parent = child
        return results


def _apply_step(parent: Module, step: ChainStep) -> Tuple[Module, TransformRecord]:
    kind, seed, dataset = step.kind, step.seed, step.dataset
    if kind == "finetune":
        return finetune_classifier(parent, dataset, epochs=step.epochs, seed=seed)
    if kind == "lora":
        return lora_adapt_classifier(
            parent, dataset, rank=2, epochs=step.epochs, lr=1e-2, seed=seed
        )
    if kind == "preference":
        return preference_tune(
            parent, dataset, (step.specialty,),
            epochs=max(2, step.epochs // 2), seed=seed,
        )
    if kind == "distill":
        return distill_classifier(parent, dataset, epochs=step.epochs, seed=seed)
    if kind == "edit":
        return edit_classifier(
            parent, step.params["probe_tokens"],
            target_class=step.params["target_class"], seed=seed,
            preserve_tokens=step.params["preserve_tokens"],
        )
    if kind == "prune":
        return prune_model(parent, sparsity=step.params["sparsity"], seed=seed)
    if kind == "quantize":
        return quantize_model(parent, bits=step.params["bits"], seed=seed)
    raise ConfigError(f"unknown chain transform kind {kind!r}")


@dataclass
class LMFoundationTask:
    """Train one language-model foundation on the base corpus."""

    index: int
    seed: int
    epochs: int
    max_seq_len: int

    def execute(self, ctx: WorkerContext) -> List[ModelResult]:
        from repro.nn.transformer import TransformerLM

        lm = TransformerLM(
            vocab_size=ctx.vocab_size,
            d_model=24, num_heads=2, num_layers=2,
            max_seq_len=self.max_seq_len,
            seed=self.seed,
        )
        with trace("lake.generate.lm_foundation", index=self.index):
            train_language_model(
                lm, ctx.base_dataset.tokens,
                epochs=self.epochs, batch_size=16, seed=self.seed,
            )
        return [_result(lm, None, ctx)]


@dataclass
class LMChainTask:
    """Fine-tune one specialization off a language-model foundation."""

    parent_architecture: Dict
    parent_state: Dict[str, np.ndarray]
    dataset: TextDataset
    seed: int
    epochs: int

    def execute(self, ctx: WorkerContext) -> List[ModelResult]:
        from repro.transforms.finetune import finetune_language_model

        parent = _rebuild(self.parent_architecture, self.parent_state)
        with trace("lake.generate.transform", kind="finetune", level=0):
            child, record = finetune_language_model(
                parent, self.dataset, epochs=self.epochs, seed=self.seed
            )
        return [_result(child, record, ctx)]


@dataclass
class MergeTask:
    """Interpolate two same-architecture specialists."""

    first_architecture: Dict
    first_state: Dict[str, np.ndarray]
    second_architecture: Dict
    second_state: Dict[str, np.ndarray]
    alpha: float
    seed: int

    def execute(self, ctx: WorkerContext) -> List[ModelResult]:
        first = _rebuild(self.first_architecture, self.first_state)
        second = _rebuild(self.second_architecture, self.second_state)
        with trace("lake.generate.transform", kind="merge", level=0):
            child, record = merge_models(first, second, alpha=self.alpha, seed=self.seed)
        return [_result(child, record, ctx)]


@dataclass
class StitchTask:
    """Stitch two foundations of different widths through an adapter."""

    front_architecture: Dict
    front_state: Dict[str, np.ndarray]
    back_architecture: Dict
    back_state: Dict[str, np.ndarray]
    adapter_data: TextDataset
    adapter_epochs: int
    seed: int

    def execute(self, ctx: WorkerContext) -> List[ModelResult]:
        front = _rebuild(self.front_architecture, self.front_state)
        back = _rebuild(self.back_architecture, self.back_state)
        with trace("lake.generate.transform", kind="stitch", level=0):
            child, record = stitch_classifiers(
                front, back, self.adapter_data,
                adapter_epochs=self.adapter_epochs, seed=self.seed,
            )
        return [_result(child, record, ctx)]


def run_task(task) -> List[ModelResult]:
    """Process-pool entry point: execute one task against the context."""
    if _CONTEXT is None:
        raise ConfigError("worker context not initialized (init_context not run)")
    return task.execute(_CONTEXT)
